#!/usr/bin/env bash
# Smoke-test the `sciborq-served` stdio server end to end: issue bounded
# queries, feed it a fixed set of protocol-fuzz seeds (hostile lines that
# must draw typed errors, never a crash or a hang), scrape the `metrics`
# and `trace` introspection commands off the wire, and assert the
# telemetry registry observed the traffic. The final registry snapshot is
# written to crates/bench/BENCH_serving_metrics.json so CI can upload it
# next to the serving bench summary.
set -euo pipefail

cd "$(dirname "$0")/.."
SNAPSHOT="crates/bench/BENCH_serving_metrics.json"
REPLIES="$(mktemp)"
trap 'rm -f "$REPLIES"' EXIT

cargo build --release -p sciborq-serve --bin sciborq-served

{
  for i in 1 2 3 4; do
    printf '{"id":%d,"query":{"table":"photoobj","kind":"count","predicate":{"op":"lt","column":"ra","value":%d.0}},"bounds":{"max_relative_error":0.05}}\n' "$i" "$((i * 45))"
  done
  printf '{"id":5,"query":{"table":"photoobj","kind":"sum","column":"r_mag","predicate":{"op":"between","column":"ra","low":10.0,"high":200.0}},"bounds":{"max_relative_error":0.05}}\n'
  # protocol-fuzz seeds: hostile lines the server must answer with a
  # typed error reply — never a crash, a hang, or a blown stack
  head -c 1100000 /dev/zero | tr '\0' 'x'   # > 1 MiB line -> malformed (too large)
  printf '\n'
  printf '%0.s[' $(seq 1 200)               # 200-deep nesting bomb -> malformed (too deep)
  printf '\n'
  printf '{"id":6,"query":{"table":\n'      # truncated mid-document -> malformed (syntax)
  printf 'plain garbage, not json\n'        # not json at all -> malformed (syntax)
  printf '{"id":7,"hello":"world"}\n'       # valid json, not a request -> invalid-request
  # let the query workers drain so the introspection replies see them
  sleep 2
  printf '{"id":100,"cmd":"metrics"}\n'
  printf '{"id":101,"cmd":"trace","limit":8}\n'
} | ./target/release/sciborq-served \
      --rows 50000 --layers 5000,500 --traces on --log-level info \
      --metrics-out "$SNAPSHOT" > "$REPLIES"

echo "--- server replies ---"
cat "$REPLIES"
echo "--- metrics snapshot ---"
cat "$SNAPSHOT"

fail() { echo "serve_smoke: $1" >&2; exit 1; }

# every request (5 queries + metrics + trace) answered ok
ok_count="$(grep -c '"status":"ok"' "$REPLIES")"
[ "$ok_count" -eq 7 ] || fail "expected 7 ok replies, got $ok_count"

# every fuzz seed drew a typed error reply: 4 malformed (oversized,
# nesting bomb, truncated, garbage) + 1 invalid-request — and none of
# them leaked through as an internal fault
malformed_count="$(grep -c '"code":"malformed"' "$REPLIES")"
[ "$malformed_count" -eq 4 ] || fail "expected 4 malformed replies, got $malformed_count"
invalid_count="$(grep -c '"code":"invalid-request"' "$REPLIES")"
[ "$invalid_count" -eq 1 ] || fail "expected 1 invalid-request reply, got $invalid_count"
if grep -q '"code":"internal-fault"' "$REPLIES"; then
  fail "fuzz seeds triggered an internal fault"
fi

# answers report their admission queue wait and embed escalation traces
grep -q '"queued_micros":' "$REPLIES" || fail "replies lack queued_micros"
grep -q '"trace":{' "$REPLIES" || fail "replies lack embedded traces"

# the metrics command returned live (non-zero) counters over the wire
grep -q '"metrics":{' "$REPLIES" || fail "no metrics reply"
grep -Eq '"engine.queries":[1-9]' "$REPLIES" || fail "engine.queries is zero on the wire"

# the trace command returned per-level traces
grep -q '"traces":\[{' "$REPLIES" || fail "no trace reply"
grep -q '"levels":\[{' "$REPLIES" || fail "traces lack per-level detail"

# the exported snapshot (written after all workers joined) saw all traffic
[ -s "$SNAPSHOT" ] || fail "metrics snapshot missing or empty"
grep -q '"engine.queries":5' "$SNAPSHOT" || fail "snapshot engine.queries != 5"
grep -q '"serve.queries_served":5' "$SNAPSHOT" || fail "snapshot serve.queries_served != 5"
grep -Eq '"engine.rows_scanned":[1-9]' "$SNAPSHOT" || fail "snapshot rows_scanned is zero"
grep -Eq '"engine.query_micros":\{"count":5' "$SNAPSHOT" || fail "latency histogram count != 5"

echo "serve_smoke: ok (7 ok replies, 5 typed fuzz rejections, registry saw 5 queries)"
