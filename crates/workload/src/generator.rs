//! Synthetic SkyServer-style query-workload generator.
//!
//! The paper derives areas of interest from the publicly accessible SkyServer
//! query logs: most queries are cone searches (`fGetNearbyObjEq`) around a
//! handful of sky regions that the astronomers are currently studying, mixed
//! with attribute cuts (magnitude ranges, object classes). Since the real
//! logs are not redistributable, this generator produces a workload with the
//! same statistical structure: a configurable set of *focal clusters* on
//! (`ra`, `dec`), Gaussian scatter of the query centres around them, a
//! long-tail of unfocused "amateur" queries, and an optional focus shift
//! halfway through (used by the adaptation experiments).

use crate::query::{cone_search_predicate, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sciborq_columnar::{AggregateKind, Predicate};
use serde::{Deserialize, Serialize};

/// One cluster of scientific interest on the sky.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FocalCluster {
    /// Right ascension of the cluster centre, degrees.
    pub ra: f64,
    /// Declination of the cluster centre, degrees.
    pub dec: f64,
    /// Standard deviation of query centres around the cluster, degrees.
    pub spread: f64,
    /// Relative probability of a query targeting this cluster.
    pub weight: f64,
}

impl FocalCluster {
    /// Convenience constructor.
    pub fn new(ra: f64, dec: f64, spread: f64, weight: f64) -> Self {
        FocalCluster {
            ra,
            dec,
            spread,
            weight,
        }
    }
}

/// Configuration of the synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Fact table name queries will reference.
    pub table: String,
    /// Column holding right ascension.
    pub ra_column: String,
    /// Column holding declination.
    pub dec_column: String,
    /// The clusters of interest.
    pub clusters: Vec<FocalCluster>,
    /// Fraction of queries that ignore the clusters entirely (amateur /
    /// exploratory traffic scanning random sky positions).
    pub background_fraction: f64,
    /// Search radius range (degrees) for the cone searches.
    pub radius_range: (f64, f64),
    /// Fraction of queries that are aggregates rather than SELECTs.
    pub aggregate_fraction: f64,
    /// Column used by aggregate queries (e.g. the r-band magnitude).
    pub measure_column: String,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            table: "photoobj".to_owned(),
            ra_column: "ra".to_owned(),
            dec_column: "dec".to_owned(),
            clusters: vec![
                FocalCluster::new(185.0, 0.0, 2.0, 0.6),
                FocalCluster::new(160.0, 25.0, 3.0, 0.3),
                FocalCluster::new(230.0, 45.0, 1.5, 0.1),
            ],
            background_fraction: 0.1,
            radius_range: (0.5, 3.0),
            aggregate_fraction: 0.5,
            measure_column: "r_mag".to_owned(),
        }
    }
}

/// A deterministic generator of SkyServer-like queries.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    generated: u64,
}

impl WorkloadGenerator {
    /// Create a generator with the given configuration and seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        WorkloadGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            generated: 0,
        }
    }

    /// Create a generator with the default SkyServer-like configuration.
    pub fn default_sky(seed: u64) -> Self {
        Self::new(WorkloadConfig::default(), seed)
    }

    /// The active configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Number of queries generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Replace the focal clusters (a workload *focus shift*), keeping the
    /// rest of the configuration.
    pub fn shift_focus(&mut self, clusters: Vec<FocalCluster>) {
        self.config.clusters = clusters;
    }

    fn sample_normal(&mut self, mean: f64, sd: f64) -> f64 {
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    fn pick_cluster(&mut self) -> Option<FocalCluster> {
        if self.config.clusters.is_empty() {
            return None;
        }
        let total: f64 = self.config.clusters.iter().map(|c| c.weight).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.rng.gen_range(0.0..total);
        for c in &self.config.clusters {
            if target < c.weight {
                return Some(*c);
            }
            target -= c.weight;
        }
        self.config.clusters.last().copied()
    }

    /// Generate the next query of the workload.
    pub fn next_query(&mut self) -> Query {
        self.generated += 1;
        let background = self
            .rng
            .gen_bool(self.config.background_fraction.clamp(0.0, 1.0));
        let (ra, dec) = if background {
            (
                self.rng.gen_range(0.0..360.0),
                self.rng.gen_range(-90.0..90.0),
            )
        } else if let Some(cluster) = self.pick_cluster() {
            (
                self.sample_normal(cluster.ra, cluster.spread)
                    .rem_euclid(360.0),
                self.sample_normal(cluster.dec, cluster.spread)
                    .clamp(-90.0, 90.0),
            )
        } else {
            (
                self.rng.gen_range(0.0..360.0),
                self.rng.gen_range(-90.0..90.0),
            )
        };
        let radius = self
            .rng
            .gen_range(self.config.radius_range.0..=self.config.radius_range.1);
        let predicate = cone_search_predicate(
            &self.config.ra_column,
            &self.config.dec_column,
            ra,
            dec,
            radius,
        );

        if self
            .rng
            .gen_bool(self.config.aggregate_fraction.clamp(0.0, 1.0))
        {
            let kind = match self.rng.gen_range(0..3) {
                0 => AggregateKind::Count,
                1 => AggregateKind::Avg,
                _ => AggregateKind::Sum,
            };
            if kind == AggregateKind::Count {
                Query::count(&self.config.table, predicate)
            } else {
                Query::aggregate(
                    &self.config.table,
                    predicate,
                    kind,
                    &self.config.measure_column,
                )
            }
        } else {
            let limit = 100 * self.rng.gen_range(1usize..=5);
            Query::select(&self.config.table, predicate).with_limit(limit)
        }
    }

    /// Generate a batch of queries.
    pub fn generate(&mut self, count: usize) -> Vec<Query> {
        (0..count).map(|_| self.next_query()).collect()
    }
}

/// Helper for experiments: build a predicate selecting one cluster's core
/// region (±2σ box around the centre), useful as a "ground truth" focal
/// region when measuring enrichment.
pub fn cluster_core_predicate(config: &WorkloadConfig, cluster: &FocalCluster) -> Predicate {
    cone_search_predicate(
        &config.ra_column,
        &config.dec_column,
        cluster.ra,
        cluster.dec,
        2.0 * cluster.spread,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate_set::{AttributeDomain, PredicateSet};

    #[test]
    fn default_config_is_sane() {
        let c = WorkloadConfig::default();
        assert_eq!(c.table, "photoobj");
        assert_eq!(c.clusters.len(), 3);
        assert!(c.background_fraction < 0.5);
        assert!(c.radius_range.0 < c.radius_range.1);
    }

    #[test]
    fn generator_is_deterministic() {
        let q1: Vec<String> = WorkloadGenerator::default_sky(3)
            .generate(20)
            .iter()
            .map(|q| q.to_string())
            .collect();
        let q2: Vec<String> = WorkloadGenerator::default_sky(3)
            .generate(20)
            .iter()
            .map(|q| q.to_string())
            .collect();
        assert_eq!(q1, q2);
        let q3: Vec<String> = WorkloadGenerator::default_sky(4)
            .generate(20)
            .iter()
            .map(|q| q.to_string())
            .collect();
        assert_ne!(q1, q3);
    }

    #[test]
    fn queries_reference_configured_table_and_columns() {
        let mut g = WorkloadGenerator::default_sky(7);
        for q in g.generate(50) {
            assert_eq!(q.table, "photoobj");
            let cols = q.referenced_columns();
            assert!(cols.contains(&"ra".to_owned()));
            assert!(cols.contains(&"dec".to_owned()));
        }
        assert_eq!(g.generated(), 50);
    }

    #[test]
    fn workload_concentrates_on_focal_clusters() {
        let mut g = WorkloadGenerator::default_sky(11);
        let mut ps = PredicateSet::new(&[
            ("ra", AttributeDomain::new(0.0, 360.0, 72)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 36)),
        ])
        .unwrap();
        for q in g.generate(400) {
            ps.log_query(&q);
        }
        let kde = ps.interest_estimator("ra").unwrap();
        // the dominant cluster is at ra=185; a random off-focus position
        // should have much lower workload density
        assert!(kde.density(185.0) > 5.0 * kde.density(90.0));
        let dec_kde = ps.interest_estimator("dec").unwrap();
        assert!(dec_kde.density(0.0) > dec_kde.density(-70.0));
    }

    #[test]
    fn background_only_workload_is_spread_out() {
        let config = WorkloadConfig {
            background_fraction: 1.0,
            ..WorkloadConfig::default()
        };
        let mut g = WorkloadGenerator::new(config, 5);
        let mut ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        for q in g.generate(500) {
            ps.log_query(&q);
        }
        let hist = ps.histogram("ra").unwrap();
        let occupied = hist.counts().iter().filter(|&&c| c > 0).count();
        assert!(
            occupied > 30,
            "background queries should cover most bins, got {occupied}"
        );
    }

    #[test]
    fn shift_focus_changes_generated_centres() {
        let mut g = WorkloadGenerator::default_sky(13);
        let before_kde = {
            let mut ps =
                PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 72))]).unwrap();
            for q in g.generate(300) {
                ps.log_query(&q);
            }
            ps.interest_estimator("ra").unwrap()
        };
        g.shift_focus(vec![FocalCluster::new(40.0, -10.0, 2.0, 1.0)]);
        let after_kde = {
            let mut ps =
                PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 72))]).unwrap();
            for q in g.generate(300) {
                ps.log_query(&q);
            }
            ps.interest_estimator("ra").unwrap()
        };
        assert!(before_kde.density(185.0) > before_kde.density(40.0));
        assert!(after_kde.density(40.0) > after_kde.density(185.0));
    }

    #[test]
    fn aggregate_fraction_respected_at_extremes() {
        let config = WorkloadConfig {
            aggregate_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        let mut g = WorkloadGenerator::new(config, 17);
        assert!(g
            .generate(50)
            .iter()
            .all(|q| matches!(q.kind, crate::query::QueryKind::Select)));

        let config = WorkloadConfig {
            aggregate_fraction: 1.0,
            ..WorkloadConfig::default()
        };
        let mut g = WorkloadGenerator::new(config, 17);
        assert!(g
            .generate(50)
            .iter()
            .all(|q| matches!(q.kind, crate::query::QueryKind::Aggregate { .. })));
    }

    #[test]
    fn empty_cluster_list_falls_back_to_background() {
        let config = WorkloadConfig {
            clusters: vec![],
            background_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        let mut g = WorkloadGenerator::new(config, 19);
        // must not panic, still generates valid queries
        let qs = g.generate(10);
        assert_eq!(qs.len(), 10);
    }

    #[test]
    fn cluster_core_predicate_selects_center() {
        let config = WorkloadConfig::default();
        let cluster = config.clusters[0];
        let p = cluster_core_predicate(&config, &cluster);
        let s = p.to_string();
        assert!(s.contains("ra BETWEEN 181 AND 189"));
    }
}
