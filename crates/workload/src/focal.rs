//! Focal-point extraction.
//!
//! "The focal point of an impression is defined to be exactly this area of
//! interest" (§3.1). SciBORQ derives focal points from the predicate set: the
//! bins of the workload histogram whose density stands out form contiguous
//! intervals of interest. The maintenance machinery uses the extracted focal
//! points to decide when the exploration focus has shifted far enough that an
//! impression should be rebuilt.

use sciborq_stats::EquiWidthHistogram;
use serde::{Deserialize, Serialize};

/// A contiguous region of interest on one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FocalRegion {
    /// The attribute the region refers to.
    pub attribute: String,
    /// Lower bound of the region.
    pub low: f64,
    /// Upper bound of the region.
    pub high: f64,
    /// Fraction of the attribute's predicate-set values that fall inside the
    /// region (its workload share).
    pub share: f64,
}

impl FocalRegion {
    /// The centre of the region.
    pub fn center(&self) -> f64 {
        (self.low + self.high) / 2.0
    }

    /// The width of the region.
    pub fn width(&self) -> f64 {
        self.high - self.low
    }

    /// Whether a value falls inside the region.
    pub fn contains(&self, value: f64) -> bool {
        self.low <= value && value <= self.high
    }
}

/// Extract the focal regions of an attribute from its predicate-set
/// histogram.
///
/// A bin is "hot" when its relative frequency exceeds `threshold` times the
/// uniform frequency `1/β`; adjacent hot bins are merged into one region.
/// Returns regions ordered by descending workload share.
pub fn extract_focal_regions(
    attribute: &str,
    histogram: &EquiWidthHistogram,
    threshold: f64,
) -> Vec<FocalRegion> {
    if histogram.total() == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / histogram.bin_count() as f64;
    let cutoff = threshold * uniform;
    let mut regions: Vec<FocalRegion> = Vec::new();
    let mut current: Option<(usize, usize, f64)> = None; // (start, end, share)

    for i in 0..histogram.bin_count() {
        let freq = histogram.frequency(i);
        if freq >= cutoff && freq > 0.0 {
            current = match current {
                Some((start, _, share)) => Some((start, i, share + freq)),
                None => Some((i, i, freq)),
            };
        } else if let Some((start, end, share)) = current.take() {
            regions.push(region_from_bins(attribute, histogram, start, end, share));
        }
    }
    if let Some((start, end, share)) = current {
        regions.push(region_from_bins(attribute, histogram, start, end, share));
    }
    regions.sort_by(|a, b| b.share.partial_cmp(&a.share).expect("finite shares"));
    regions
}

fn region_from_bins(
    attribute: &str,
    histogram: &EquiWidthHistogram,
    start: usize,
    end: usize,
    share: f64,
) -> FocalRegion {
    let (low, _) = histogram.bin_range(start);
    let (_, high) = histogram.bin_range(end);
    FocalRegion {
        attribute: attribute.to_owned(),
        low,
        high,
        share,
    }
}

/// A coarse distance between two sets of focal regions for the same
/// attribute, in [0, 1]: the workload share of `current` that is *not*
/// covered by any region of `reference`.
///
/// Maintenance uses this to detect focus shifts: a value near 0 means the new
/// workload still targets the old regions; a value near 1 means the focus has
/// moved entirely.
pub fn focal_shift(reference: &[FocalRegion], current: &[FocalRegion]) -> f64 {
    if current.is_empty() {
        return 0.0;
    }
    let total_share: f64 = current.iter().map(|r| r.share).sum();
    if total_share <= 0.0 {
        return 0.0;
    }
    let uncovered: f64 = current
        .iter()
        .filter(|c| {
            !reference
                .iter()
                .any(|r| r.contains(c.center()) || c.contains(r.center()))
        })
        .map(|c| c.share)
        .sum();
    (uncovered / total_share).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_with_clusters() -> EquiWidthHistogram {
        let mut h = EquiWidthHistogram::new(0.0, 360.0, 36).unwrap();
        // cluster around 180-190 (bin 18) and a smaller one around 300 (bin 30)
        for _ in 0..300 {
            h.observe(185.0);
        }
        for _ in 0..100 {
            h.observe(301.0);
        }
        // background noise
        for i in 0..36 {
            h.observe(i as f64 * 10.0 + 5.0);
        }
        h
    }

    #[test]
    fn empty_histogram_has_no_focal_regions() {
        let h = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        assert!(extract_focal_regions("ra", &h, 2.0).is_empty());
    }

    #[test]
    fn extracts_clusters_ordered_by_share() {
        let h = histogram_with_clusters();
        let regions = extract_focal_regions("ra", &h, 2.0);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].attribute, "ra");
        assert!(regions[0].share > regions[1].share);
        assert!(regions[0].contains(185.0));
        assert!(regions[1].contains(301.0));
        assert!(!regions[0].contains(301.0));
        assert!(regions[0].width() > 0.0);
        assert!((regions[0].center() - 185.0).abs() < 10.0);
    }

    #[test]
    fn threshold_controls_sensitivity() {
        let h = histogram_with_clusters();
        // a very high threshold keeps only the dominant cluster
        let strict = extract_focal_regions("ra", &h, 10.0);
        assert_eq!(strict.len(), 1);
        assert!(strict[0].contains(185.0));
        // threshold 0 marks every non-empty bin as focal
        let loose = extract_focal_regions("ra", &h, 0.0);
        assert!(!loose.is_empty());
        let covered: f64 = loose.iter().map(|r| r.share).sum();
        assert!((covered - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_hot_bins_merge() {
        let mut h = EquiWidthHistogram::new(0.0, 100.0, 10).unwrap();
        for _ in 0..50 {
            h.observe(42.0); // bin 4
            h.observe(52.0); // bin 5
        }
        let regions = extract_focal_regions("x", &h, 1.5);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].low, 40.0);
        assert_eq!(regions[0].high, 60.0);
        assert!((regions[0].share - 1.0).abs() < 1e-9);
    }

    #[test]
    fn focal_shift_zero_when_focus_unchanged() {
        let h = histogram_with_clusters();
        let regions = extract_focal_regions("ra", &h, 2.0);
        assert_eq!(focal_shift(&regions, &regions), 0.0);
        assert_eq!(focal_shift(&regions, &[]), 0.0);
    }

    #[test]
    fn focal_shift_one_when_focus_moves_completely() {
        let old = vec![FocalRegion {
            attribute: "ra".into(),
            low: 180.0,
            high: 190.0,
            share: 1.0,
        }];
        let new = vec![FocalRegion {
            attribute: "ra".into(),
            low: 20.0,
            high: 30.0,
            share: 1.0,
        }];
        assert_eq!(focal_shift(&old, &new), 1.0);
        // no reference at all: everything is new
        assert_eq!(focal_shift(&[], &new), 1.0);
    }

    #[test]
    fn focal_shift_partial_overlap() {
        let old = vec![FocalRegion {
            attribute: "ra".into(),
            low: 180.0,
            high: 190.0,
            share: 1.0,
        }];
        let new = vec![
            FocalRegion {
                attribute: "ra".into(),
                low: 182.0,
                high: 188.0,
                share: 0.5,
            },
            FocalRegion {
                attribute: "ra".into(),
                low: 300.0,
                high: 310.0,
                share: 0.5,
            },
        ];
        let shift = focal_shift(&old, &new);
        assert!((shift - 0.5).abs() < 1e-9);
    }
}
