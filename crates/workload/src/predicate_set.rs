//! Predicate-set logging (Section 4 of the paper).
//!
//! "Given a query workload — which is defined over a period of time or over a
//! predefined number of queries — the *predicate set* is the set of all
//! values of the interesting attributes that are requested by the queries."
//!
//! SciBORQ keeps one equi-width histogram (count + mean per bin, Figure 5)
//! per interesting attribute; the binned KDE f̆ derived from it drives the
//! biased sampling of newly ingested tuples.

use crate::query::Query;
use sciborq_stats::{BinnedKde, EquiWidthHistogram, Result as StatsResult, StatsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of one tracked attribute: its value domain and histogram
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttributeDomain {
    /// Lower bound of the attribute's domain.
    pub min: f64,
    /// Upper bound of the attribute's domain.
    pub max: f64,
    /// Number of equi-width bins (`β`).
    pub bins: usize,
}

impl AttributeDomain {
    /// Create a domain descriptor.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        AttributeDomain { min, max, bins }
    }
}

/// The predicate set of a workload: per-attribute streaming histograms of the
/// values requested by queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredicateSet {
    attributes: BTreeMap<String, EquiWidthHistogram>,
    /// Raw logged values, kept only when `retain_raw` is enabled (used by the
    /// Figure 4 experiment to compare f̆ against the full f̂).
    raw: BTreeMap<String, Vec<f64>>,
    retain_raw: bool,
    queries_observed: u64,
}

impl PredicateSet {
    /// Create a predicate set tracking the given attributes.
    pub fn new(attributes: &[(&str, AttributeDomain)]) -> StatsResult<Self> {
        let mut map = BTreeMap::new();
        for (name, domain) in attributes {
            map.insert(
                (*name).to_owned(),
                EquiWidthHistogram::new(domain.min, domain.max, domain.bins)?,
            );
        }
        Ok(PredicateSet {
            attributes: map,
            raw: BTreeMap::new(),
            retain_raw: false,
            queries_observed: 0,
        })
    }

    /// Also keep the raw requested values (needed only when the full KDE f̂
    /// must be computed, e.g. for the Figure 4 comparison; SciBORQ proper
    /// only needs the histograms).
    pub fn with_raw_values(mut self) -> Self {
        self.retain_raw = true;
        self
    }

    /// The tracked attribute names.
    pub fn attributes(&self) -> Vec<&str> {
        self.attributes.keys().map(String::as_str).collect()
    }

    /// Whether an attribute is tracked.
    pub fn tracks(&self, attribute: &str) -> bool {
        self.attributes.contains_key(attribute)
    }

    /// Number of queries observed so far.
    pub fn queries_observed(&self) -> u64 {
        self.queries_observed
    }

    /// Total number of values logged for an attribute (`N` in the paper).
    pub fn observed_values(&self, attribute: &str) -> u64 {
        self.attributes
            .get(attribute)
            .map(|h| h.total())
            .unwrap_or(0)
    }

    /// Log a single requested value for an attribute. Unknown attributes are
    /// silently ignored — the paper only tracks "attributes of interest".
    pub fn log_value(&mut self, attribute: &str, value: f64) {
        if let Some(hist) = self.attributes.get_mut(attribute) {
            hist.observe(value);
            if self.retain_raw {
                self.raw
                    .entry(attribute.to_owned())
                    .or_default()
                    .push(value);
            }
        }
    }

    /// Log every requested value of a query (its contribution to the
    /// predicate set) and count the query as observed.
    pub fn log_query(&mut self, query: &Query) {
        self.queries_observed += 1;
        for (attribute, value) in query.requested_values() {
            self.log_value(&attribute, value);
        }
    }

    /// The maintained histogram of an attribute.
    pub fn histogram(&self, attribute: &str) -> Option<&EquiWidthHistogram> {
        self.attributes.get(attribute)
    }

    /// The raw logged values of an attribute (only when raw retention is on).
    pub fn raw_values(&self, attribute: &str) -> Option<&[f64]> {
        self.raw.get(attribute).map(Vec::as_slice)
    }

    /// Build the binned density estimator f̆ for an attribute.
    ///
    /// Fails when no values have been logged for the attribute yet.
    pub fn interest_estimator(&self, attribute: &str) -> StatsResult<BinnedKde> {
        let hist = self
            .attributes
            .get(attribute)
            .ok_or(StatsError::EmptyInput("attribute not tracked"))?;
        BinnedKde::from_histogram(hist)
    }

    /// Combined interest weight of a multi-attribute tuple: the product of
    /// the per-attribute interest weights `f̆(x)·N`, matching the paper's
    /// footnote 4 combine function `c(t) = f̆(t.att1) ∘ … ∘ f̆(t.attm)`.
    ///
    /// Attributes with no logged values contribute a neutral factor of 1.
    pub fn combined_weight(&self, tuple: &[(&str, f64)]) -> f64 {
        let mut weight = 1.0;
        for (attribute, value) in tuple {
            if let Some(hist) = self.attributes.get(*attribute) {
                if hist.total() > 0 {
                    if let Ok(kde) = BinnedKde::from_histogram(hist) {
                        weight *= kde.interest_weight(*value);
                    }
                }
            }
        }
        weight
    }

    /// Reset the logged statistics (e.g. when the exploration focus is
    /// declared stale), keeping the attribute configuration.
    pub fn reset(&mut self) {
        let configs: Vec<(String, f64, f64, usize)> = self
            .attributes
            .iter()
            .map(|(name, h)| (name.clone(), h.min(), h.max(), h.bin_count()))
            .collect();
        self.attributes.clear();
        for (name, min, max, bins) in configs {
            self.attributes.insert(
                name,
                EquiWidthHistogram::new(min, max, bins).expect("previously valid layout"),
            );
        }
        self.raw.clear();
        self.queries_observed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::cone_search_predicate;
    use sciborq_columnar::Predicate;

    fn sky_predicate_set() -> PredicateSet {
        PredicateSet::new(&[
            ("ra", AttributeDomain::new(0.0, 360.0, 36)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 18)),
        ])
        .unwrap()
    }

    #[test]
    fn tracks_configured_attributes_only() {
        let ps = sky_predicate_set();
        assert_eq!(ps.attributes(), vec!["dec", "ra"]);
        assert!(ps.tracks("ra"));
        assert!(!ps.tracks("r_mag"));
        assert_eq!(ps.observed_values("ra"), 0);
        assert_eq!(ps.observed_values("nope"), 0);
    }

    #[test]
    fn invalid_domain_is_rejected() {
        assert!(PredicateSet::new(&[("x", AttributeDomain::new(1.0, 1.0, 4))]).is_err());
        assert!(PredicateSet::new(&[("x", AttributeDomain::new(0.0, 1.0, 0))]).is_err());
    }

    #[test]
    fn log_query_collects_requested_values() {
        let mut ps = sky_predicate_set();
        let q = Query::count(
            "photoobj",
            cone_search_predicate("ra", "dec", 185.0, 0.0, 3.0),
        );
        ps.log_query(&q);
        assert_eq!(ps.queries_observed(), 1);
        assert_eq!(ps.observed_values("ra"), 3);
        assert_eq!(ps.observed_values("dec"), 3);
        let hist = ps.histogram("ra").unwrap();
        assert_eq!(hist.total(), 3);
    }

    #[test]
    fn untracked_attributes_in_queries_are_ignored() {
        let mut ps = sky_predicate_set();
        let q = Query::select("photoobj", Predicate::gt("r_mag", 17.0));
        ps.log_query(&q);
        assert_eq!(ps.queries_observed(), 1);
        assert_eq!(ps.observed_values("ra"), 0);
    }

    #[test]
    fn interest_estimator_requires_observations() {
        let mut ps = sky_predicate_set();
        assert!(ps.interest_estimator("ra").is_err());
        assert!(ps.interest_estimator("unknown").is_err());
        ps.log_value("ra", 185.0);
        let kde = ps.interest_estimator("ra").unwrap();
        assert!(kde.density(185.0) > kde.density(20.0));
    }

    #[test]
    fn interest_concentrates_around_logged_values() {
        let mut ps = sky_predicate_set();
        for _ in 0..100 {
            ps.log_value("ra", 185.0);
            ps.log_value("ra", 186.0);
            ps.log_value("ra", 210.0);
        }
        let kde = ps.interest_estimator("ra").unwrap();
        assert!(kde.interest_weight(185.5) > kde.interest_weight(150.0) * 10.0);
        assert!(kde.interest_weight(210.0) > kde.interest_weight(150.0));
    }

    #[test]
    fn combined_weight_multiplies_attributes() {
        let mut ps = sky_predicate_set();
        for _ in 0..50 {
            ps.log_value("ra", 185.0);
            ps.log_value("dec", 0.0);
        }
        let focal = ps.combined_weight(&[("ra", 185.0), ("dec", 0.0)]);
        let off = ps.combined_weight(&[("ra", 30.0), ("dec", -60.0)]);
        assert!(focal > off);
        // untracked attributes contribute a neutral factor
        let with_unknown = ps.combined_weight(&[("ra", 185.0), ("r_mag", 17.0)]);
        let ra_only = ps.combined_weight(&[("ra", 185.0)]);
        assert!((with_unknown - ra_only).abs() < 1e-9);
        // an empty tuple weighs 1
        assert_eq!(ps.combined_weight(&[]), 1.0);
    }

    #[test]
    fn raw_values_only_kept_when_requested() {
        let mut ps = sky_predicate_set();
        ps.log_value("ra", 185.0);
        assert!(ps.raw_values("ra").is_none());
        let mut ps = sky_predicate_set().with_raw_values();
        ps.log_value("ra", 185.0);
        ps.log_value("ra", 190.0);
        assert_eq!(ps.raw_values("ra").unwrap(), &[185.0, 190.0]);
    }

    #[test]
    fn reset_clears_statistics_but_keeps_layout() {
        let mut ps = sky_predicate_set().with_raw_values();
        ps.log_value("ra", 185.0);
        ps.log_query(&Query::count(
            "photoobj",
            cone_search_predicate("ra", "dec", 185.0, 0.0, 3.0),
        ));
        ps.reset();
        assert_eq!(ps.queries_observed(), 0);
        assert_eq!(ps.observed_values("ra"), 0);
        assert!(ps.tracks("ra"));
        assert_eq!(ps.histogram("ra").unwrap().bin_count(), 36);
        assert!(ps.raw_values("ra").is_none_or(|v| v.is_empty()));
    }

    #[test]
    fn n_matches_paper_definition() {
        // N is the total number of values observed in the predicate set for
        // that attribute, not the number of queries.
        let mut ps = sky_predicate_set();
        for i in 0..10 {
            let q = Query::count(
                "photoobj",
                cone_search_predicate("ra", "dec", 180.0 + i as f64, 0.0, 1.0),
            );
            ps.log_query(&q);
        }
        assert_eq!(ps.queries_observed(), 10);
        assert_eq!(ps.observed_values("ra"), 30);
        let kde = ps.interest_estimator("ra").unwrap();
        assert_eq!(kde.total(), 30.0);
    }
}
