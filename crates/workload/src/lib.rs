//! # sciborq-workload
//!
//! Queries, query logging, predicate sets and workload generation for the
//! SciBORQ reproduction.
//!
//! SciBORQ steers its impressions by *observing the workload*: the values
//! requested by query predicates form the predicate set (§4), whose density
//! — estimated by the binned KDE f̆ — biases the samples towards the focal
//! points of the current exploration. This crate provides:
//!
//! * [`Query`] / [`QueryKind`] — declarative query descriptions, including
//!   the cone-search shape of the SkyServer workload (Figure 1).
//! * [`PredicateSet`] — per-attribute streaming histograms of the requested
//!   values plus the derived interest estimator.
//! * [`FocalRegion`] extraction and focus-shift detection.
//! * [`QueryLog`] — a bounded log with windowed replay.
//! * [`WorkloadGenerator`] — a synthetic SkyServer-like query generator with
//!   configurable focal clusters and focus shifts (substitute for the public
//!   SkyServer query logs, see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod focal;
pub mod generator;
pub mod log;
pub mod predicate_set;
pub mod query;

pub use focal::{extract_focal_regions, focal_shift, FocalRegion};
pub use generator::{cluster_core_predicate, FocalCluster, WorkloadConfig, WorkloadGenerator};
pub use log::{LogEntry, QueryLog};
pub use predicate_set::{AttributeDomain, PredicateSet};
pub use query::{cone_search_predicate, Query, QueryKind};
