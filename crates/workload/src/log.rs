//! Query-log recording and replay.
//!
//! The paper's second construction strategy "is based on a more complex
//! infrastructure of query logging" (§3.3): every query run against the
//! warehouse is recorded, and the predicate set / focal points are derived
//! from a window of that log. This module provides a simple in-memory query
//! log with logical timestamps and windowed replay.

use crate::query::Query;
use serde::{Deserialize, Serialize};

/// One recorded query together with its logical timestamp (sequence number).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Monotonically increasing sequence number, starting at 0.
    pub sequence: u64,
    /// The recorded query.
    pub query: Query,
}

/// An append-only, bounded query log.
///
/// The log retains at most `capacity` entries; older entries are evicted
/// first, which matches the paper's "workload defined over a period of time
/// or over a predefined number of queries".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryLog {
    entries: std::collections::VecDeque<LogEntry>,
    capacity: usize,
    next_sequence: u64,
}

impl QueryLog {
    /// Create a log retaining at most `capacity` queries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "query log capacity must be positive");
        QueryLog {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            next_sequence: 0,
        }
    }

    /// Record a query, evicting the oldest entry if the log is full.
    /// Returns the sequence number assigned to the query.
    pub fn record(&mut self, query: Query) -> u64 {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(LogEntry { sequence, query });
        sequence
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of queries ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_sequence
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// The retained queries, oldest first.
    pub fn queries(&self) -> impl Iterator<Item = &Query> {
        self.entries.iter().map(|e| &e.query)
    }

    /// The last `n` recorded queries (most recent window), oldest first.
    pub fn recent(&self, n: usize) -> Vec<&Query> {
        let start = self.entries.len().saturating_sub(n);
        self.entries.iter().skip(start).map(|e| &e.query).collect()
    }

    /// Entries recorded at or after the given sequence number.
    pub fn since(&self, sequence: u64) -> Vec<&LogEntry> {
        self.entries
            .iter()
            .filter(|e| e.sequence >= sequence)
            .collect()
    }

    /// Clear the log (but keep the sequence counter monotone).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::Predicate;

    fn q(i: i64) -> Query {
        Query::count("photoobj", Predicate::eq("objid", i))
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = QueryLog::new(0);
    }

    #[test]
    fn record_and_read_back() {
        let mut log = QueryLog::new(10);
        assert!(log.is_empty());
        assert_eq!(log.record(q(1)), 0);
        assert_eq!(log.record(q(2)), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_recorded(), 2);
        let recorded: Vec<i64> = log
            .queries()
            .map(|query| match &query.predicate {
                Predicate::Compare { value, .. } => value.as_i64().unwrap(),
                _ => panic!("unexpected predicate"),
            })
            .collect();
        assert_eq!(recorded, vec![1, 2]);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut log = QueryLog::new(3);
        for i in 0..10 {
            log.record(q(i));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_recorded(), 10);
        let seqs: Vec<u64> = log.entries().map(|e| e.sequence).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn recent_window() {
        let mut log = QueryLog::new(100);
        for i in 0..20 {
            log.record(q(i));
        }
        let recent = log.recent(5);
        assert_eq!(recent.len(), 5);
        // asking for more than retained returns everything
        assert_eq!(log.recent(1000).len(), 20);
        assert_eq!(QueryLog::new(5).recent(3).len(), 0);
    }

    #[test]
    fn since_filters_by_sequence() {
        let mut log = QueryLog::new(100);
        for i in 0..10 {
            log.record(q(i));
        }
        assert_eq!(log.since(7).len(), 3);
        assert_eq!(log.since(0).len(), 10);
        assert_eq!(log.since(100).len(), 0);
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let mut log = QueryLog::new(10);
        log.record(q(1));
        log.record(q(2));
        log.clear();
        assert!(log.is_empty());
        let seq = log.record(q(3));
        assert_eq!(seq, 2, "sequence numbers must not be reused after clear");
        assert_eq!(log.total_recorded(), 3);
    }
}
