//! Query descriptions.
//!
//! SciBORQ queries are the ad-hoc exploration queries of the SkyServer
//! workload: a predicate over a fact table (typically a cone search on
//! `ra`/`dec` plus attribute cuts), an optional aggregate, and an optional
//! LIMIT. The struct below is deliberately declarative — the bounded query
//! engine decides *where* (which impression layer) to evaluate it.

use sciborq_columnar::{AggregateKind, Predicate, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a query computes over the qualifying rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryKind {
    /// Return the qualifying rows themselves (optionally limited).
    Select,
    /// Compute a single aggregate over the qualifying rows.
    Aggregate {
        /// The aggregate function.
        kind: AggregateKind,
        /// The aggregated column (`None` only for COUNT).
        column: Option<String>,
    },
}

/// A declarative query against one table of the warehouse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The fact table the query targets.
    pub table: String,
    /// The row predicate.
    pub predicate: Predicate,
    /// What to compute over the qualifying rows.
    pub kind: QueryKind,
    /// Optional LIMIT: in SciBORQ semantics this limits the rows *of the
    /// impression*, not "the first N rows of the base table" (§3.2).
    pub limit: Option<usize>,
}

impl Query {
    /// A SELECT query returning qualifying rows.
    pub fn select(table: impl Into<String>, predicate: Predicate) -> Self {
        Query {
            table: table.into(),
            predicate,
            kind: QueryKind::Select,
            limit: None,
        }
    }

    /// A COUNT(*) query.
    pub fn count(table: impl Into<String>, predicate: Predicate) -> Self {
        Query {
            table: table.into(),
            predicate,
            kind: QueryKind::Aggregate {
                kind: AggregateKind::Count,
                column: None,
            },
            limit: None,
        }
    }

    /// An aggregate query over a column.
    pub fn aggregate(
        table: impl Into<String>,
        predicate: Predicate,
        kind: AggregateKind,
        column: impl Into<String>,
    ) -> Self {
        Query {
            table: table.into(),
            predicate,
            kind: QueryKind::Aggregate {
                kind,
                column: Some(column.into()),
            },
            limit: None,
        }
    }

    /// Attach a LIMIT clause.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// The columns referenced anywhere in the query (predicate + aggregate).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self
            .predicate
            .referenced_columns()
            .into_iter()
            .map(str::to_owned)
            .collect();
        if let QueryKind::Aggregate {
            column: Some(c), ..
        } = &self.kind
        {
            cols.push(c.clone());
        }
        cols.sort();
        cols.dedup();
        cols
    }

    /// Extract the numeric values this query "requests" per attribute — the
    /// raw material of the predicate set (§4).
    ///
    /// For an equality or one-sided comparison the literal is logged; for a
    /// BETWEEN both endpoints and the midpoint are logged, which is how a
    /// cone-search `fGetNearbyObjEq(ra, dec, r)` manifests after rewriting.
    pub fn requested_values(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        collect_requested(&self.predicate, &mut out);
        out
    }
}

fn collect_requested(p: &Predicate, out: &mut Vec<(String, f64)>) {
    match p {
        Predicate::Compare { column, value, .. } => {
            if let Some(v) = value.as_f64() {
                out.push((column.clone(), v));
            }
        }
        Predicate::Between { column, low, high } => {
            if let (Some(lo), Some(hi)) = (low.as_f64(), high.as_f64()) {
                out.push((column.clone(), lo));
                out.push((column.clone(), (lo + hi) / 2.0));
                out.push((column.clone(), hi));
            }
        }
        Predicate::And(ps) | Predicate::Or(ps) => {
            for p in ps {
                collect_requested(p, out);
            }
        }
        Predicate::Not(p) => collect_requested(p, out),
        Predicate::True | Predicate::False | Predicate::IsNull(_) | Predicate::IsNotNull(_) => {}
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            QueryKind::Select => {
                write!(f, "SELECT * FROM {} WHERE {}", self.table, self.predicate)?
            }
            QueryKind::Aggregate { kind, column } => write!(
                f,
                "SELECT {kind}({}) FROM {} WHERE {}",
                column.as_deref().unwrap_or("*"),
                self.table,
                self.predicate
            )?,
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

/// Build the predicate of a cone search: the rewritten form of the
/// SkyServer `fGetNearbyObjEq(ra, dec, radius)` table function used in the
/// paper's example query (Figure 1).
///
/// The cone is approximated by the bounding box
/// `ra ∈ [ra−r, ra+r] ∧ dec ∈ [dec−r, dec+r]`, which is what the SkyServer
/// rewrite produces before the exact great-circle filter; the experiments use
/// the box consistently for base data and impressions so comparisons remain
/// apples-to-apples.
pub fn cone_search_predicate(
    ra_column: &str,
    dec_column: &str,
    ra: f64,
    dec: f64,
    radius: f64,
) -> Predicate {
    Predicate::Between {
        column: ra_column.to_owned(),
        low: Value::Float64(ra - radius),
        high: Value::Float64(ra + radius),
    }
    .and(Predicate::Between {
        column: dec_column.to_owned(),
        low: Value::Float64(dec - radius),
        high: Value::Float64(dec + radius),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_and_count_constructors() {
        let q = Query::select("photoobj", Predicate::gt("ra", 180.0));
        assert_eq!(q.table, "photoobj");
        assert_eq!(q.kind, QueryKind::Select);
        assert_eq!(q.limit, None);

        let q = Query::count("photoobj", Predicate::True).with_limit(10);
        assert!(matches!(
            q.kind,
            QueryKind::Aggregate {
                kind: AggregateKind::Count,
                column: None
            }
        ));
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn aggregate_constructor() {
        let q = Query::aggregate(
            "photoobj",
            Predicate::eq("class", "GALAXY"),
            AggregateKind::Avg,
            "r_mag",
        );
        match &q.kind {
            QueryKind::Aggregate { kind, column } => {
                assert_eq!(*kind, AggregateKind::Avg);
                assert_eq!(column.as_deref(), Some("r_mag"));
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn referenced_columns_include_aggregate_column() {
        let q = Query::aggregate(
            "photoobj",
            cone_search_predicate("ra", "dec", 185.0, 0.0, 3.0),
            AggregateKind::Avg,
            "r_mag",
        );
        assert_eq!(q.referenced_columns(), vec!["dec", "r_mag", "ra"]);
    }

    #[test]
    fn requested_values_from_between() {
        let q = Query::count(
            "photoobj",
            cone_search_predicate("ra", "dec", 185.0, 0.0, 3.0),
        );
        let vals = q.requested_values();
        let ra_vals: Vec<f64> = vals
            .iter()
            .filter(|(c, _)| c == "ra")
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(ra_vals, vec![182.0, 185.0, 188.0]);
        let dec_vals: Vec<f64> = vals
            .iter()
            .filter(|(c, _)| c == "dec")
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(dec_vals, vec![-3.0, 0.0, 3.0]);
    }

    #[test]
    fn requested_values_from_comparisons_and_not() {
        let q = Query::select(
            "photoobj",
            Predicate::gt("r_mag", 17.5).and(Predicate::eq("class", "GALAXY").negate()),
        );
        let vals = q.requested_values();
        // the string literal contributes nothing, the numeric comparison does
        assert_eq!(vals, vec![("r_mag".to_owned(), 17.5)]);
    }

    #[test]
    fn requested_values_ignore_null_checks() {
        let q = Query::select("t", Predicate::IsNull("x".into()));
        assert!(q.requested_values().is_empty());
    }

    #[test]
    fn display_renders_sqlish() {
        let q = Query::aggregate(
            "photoobj",
            Predicate::between("ra", 180.0, 190.0),
            AggregateKind::Count,
            "objid",
        )
        .with_limit(5);
        let s = q.to_string();
        assert!(s.contains("SELECT COUNT(objid) FROM photoobj"));
        assert!(s.contains("LIMIT 5"));
        let sel = Query::select("photoobj", Predicate::True).to_string();
        assert!(sel.starts_with("SELECT * FROM photoobj"));
    }

    #[test]
    fn cone_search_predicate_is_bounding_box() {
        let p = cone_search_predicate("ra", "dec", 185.0, 0.0, 3.0);
        let cols = p.referenced_columns();
        assert_eq!(cols, vec!["dec", "ra"]);
        let s = p.to_string();
        assert!(s.contains("ra BETWEEN 182 AND 188"));
        assert!(s.contains("dec BETWEEN -3 AND 3"));
    }
}
