//! The concurrent query server: admission, shared-scan batching, replies.

use crate::admission::{Admission, AdmissionController, Overloaded};
use crate::config::ServeConfig;
use sciborq_core::{
    AdmissionTrace, ApproximateAnswer, ExplorationSession, MetricsRegistry, MetricsSnapshot,
    QueryBounds, QueryOutcome, QueryTrace, SciborqError, SelectAnswer,
};
use sciborq_telemetry::{Counter, Gauge, Histogram};
use sciborq_workload::{Query, QueryKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a query submitted to the server comes back as.
#[derive(Debug, Clone)]
pub enum ServerReply {
    /// A bounded aggregate answer. `downgraded` is true when admission
    /// tightened the query's row budget to fit the global budget.
    Aggregate {
        /// The engine's answer, with its measured honesty flags.
        answer: ApproximateAnswer,
        /// Whether the row budget was tightened by admission control.
        downgraded: bool,
        /// Time the query spent blocked on the admission queue.
        queued: Duration,
    },
    /// A row-returning answer.
    Rows {
        /// The engine's answer.
        answer: SelectAnswer,
        /// Whether the row budget was tightened by admission control.
        downgraded: bool,
        /// Time the query spent blocked on the admission queue.
        queued: Duration,
    },
    /// The server shed the query; the payload says exactly why.
    Overloaded(Overloaded),
    /// The engine rejected or failed the query.
    Failed(SciborqError),
}

impl ServerReply {
    /// The aggregate answer, if this reply carries one.
    pub fn as_aggregate(&self) -> Option<&ApproximateAnswer> {
        match self {
            ServerReply::Aggregate { answer, .. } => Some(answer),
            _ => None,
        }
    }

    /// Whether this reply is a typed overload rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServerReply::Overloaded(_))
    }

    /// Whether admission control downgraded the query behind this reply.
    pub fn downgraded(&self) -> bool {
        match self {
            ServerReply::Aggregate { downgraded, .. } | ServerReply::Rows { downgraded, .. } => {
                *downgraded
            }
            _ => false,
        }
    }

    /// Time the query behind this reply spent blocked on the admission
    /// queue (zero for shed and failed-before-admission queries).
    pub fn queued(&self) -> Duration {
        match self {
            ServerReply::Aggregate { queued, .. } | ServerReply::Rows { queued, .. } => *queued,
            _ => Duration::ZERO,
        }
    }
}

/// Cumulative serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Queries answered by the engine (including engine-level errors).
    pub served: u64,
    /// Queries shed with a typed overload reply.
    pub rejected: u64,
    /// Served queries whose row budget admission control tightened.
    pub downgraded: u64,
    /// Shared scan passes executed (each covers one drained batch).
    pub shared_batches: u64,
}

struct PendingQuery {
    query: Query,
    bounds: QueryBounds,
    downgraded: bool,
    queued: Duration,
    admission: AdmissionTrace,
    reply: mpsc::Sender<ServerReply>,
}

#[derive(Default)]
struct BatchQueue {
    items: Vec<PendingQuery>,
    shutdown: bool,
}

/// The server's registered metric handles — the serving-side half of the
/// process-wide registry the session owns (cached `Arc`s, one relaxed
/// atomic per event).
#[derive(Debug)]
struct ServeMetrics {
    /// `serve.queries_served` — queries answered by the engine (including
    /// engine-level errors).
    queries_served: Arc<Counter>,
    /// `serve.queries_shed` — queries refused with a typed overload.
    queries_shed: Arc<Counter>,
    /// `serve.queries_downgraded` — served queries whose row budget
    /// admission tightened.
    queries_downgraded: Arc<Counter>,
    /// `serve.shared_batches` — shared scan passes executed.
    shared_batches: Arc<Counter>,
    /// `serve.batch_size` — queries coalesced per shared pass.
    batch_size: Arc<Histogram>,
    /// `serve.batch_queue_depth` — aggregate queries awaiting the scheduler.
    batch_queue_depth: Arc<Gauge>,
    /// `serve.reply_micros` — submit-to-reply wall time (queue wait
    /// included).
    reply_micros: Arc<Histogram>,
    /// `serve.scheduler_restarts` — times the shared-scan scheduler thread
    /// was restarted after a caught panic.
    scheduler_restarts: Arc<Counter>,
    /// `serve.batch_faults` — shared passes lost to a caught panic; their
    /// members were replayed individually, so no client was stranded.
    batch_faults: Arc<Counter>,
    /// `serve.admission_faults` — admissions lost to a caught panic (typed
    /// `Internal` replies; nothing was reserved against the budget).
    admission_faults: Arc<Counter>,
}

impl ServeMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            queries_served: registry.counter("serve.queries_served"),
            queries_shed: registry.counter("serve.queries_shed"),
            queries_downgraded: registry.counter("serve.queries_downgraded"),
            shared_batches: registry.counter("serve.shared_batches"),
            batch_size: registry.histogram("serve.batch_size"),
            batch_queue_depth: registry.gauge("serve.batch_queue_depth"),
            reply_micros: registry.histogram("serve.reply_micros"),
            scheduler_restarts: registry.counter("serve.scheduler_restarts"),
            batch_faults: registry.counter("serve.batch_faults"),
            admission_faults: registry.counter("serve.admission_faults"),
        }
    }
}

struct ServerInner {
    session: ExplorationSession,
    config: ServeConfig,
    admission: AdmissionController,
    queue: Mutex<BatchQueue>,
    pending: Condvar,
    metrics: ServeMetrics,
}

/// A long-lived front end serving concurrent bounded queries from one
/// exploration session.
///
/// `submit` is blocking and thread-safe: call it from as many client
/// threads as you like. Aggregate queries are (when enabled) coalesced by
/// a background scheduler thread into shared scan passes via
/// [`ExplorationSession::execute_batch`]; answers are bit-identical to
/// serial execution either way.
pub struct QueryServer {
    inner: Arc<ServerInner>,
    scheduler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryServer {
    /// Start a server over a session. Spawns the shared-scan scheduler
    /// thread when shared scans are enabled.
    pub fn new(session: ExplorationSession, config: ServeConfig) -> Result<Self, SciborqError> {
        config.validate().map_err(SciborqError::InvalidConfig)?;
        // One registry for the whole process: the session already owns it
        // and registered the engine metrics; admission and the server add
        // theirs, so one snapshot covers every layer.
        let registry = Arc::clone(session.metrics());
        let admission = AdmissionController::new(
            config.global_row_budget,
            config.max_waiting,
            config.allow_downgrade,
            config.admission_timeout,
        )
        .with_metrics(&registry);
        let metrics = ServeMetrics::register(&registry);
        let inner = Arc::new(ServerInner {
            session,
            config,
            admission,
            queue: Mutex::new(BatchQueue::default()),
            pending: Condvar::new(),
            metrics,
        });
        let scheduler = if inner.config.shared_scans {
            let worker = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("sciborq-batcher".to_owned())
                    // Watchdog wrapper: a scheduler lost to a panic is
                    // restarted, not silently dead (a dead scheduler would
                    // strand every future shared-scan client). Members of
                    // the batch that was in flight get a typed reply via
                    // the dispatch fallback; the restart is counted.
                    .spawn(move || loop {
                        match catch_unwind(AssertUnwindSafe(|| worker.run_scheduler())) {
                            Ok(()) => break,
                            Err(_) => worker.metrics.scheduler_restarts.inc(),
                        }
                    })
                    .map_err(|err| {
                        SciborqError::InvalidConfig(format!(
                            "failed to spawn scheduler thread: {err}"
                        ))
                    })?,
            )
        } else {
            None
        };
        Ok(QueryServer { inner, scheduler })
    }

    /// The wrapped session (for loads, adaptation, impression management).
    pub fn session(&self) -> &ExplorationSession {
        &self.inner.session
    }

    /// Cumulative serving counters (read from the metrics registry — one
    /// implementation behind both this accessor and the `metrics` command).
    pub fn stats(&self) -> ServeStats {
        let m = &self.inner.metrics;
        ServeStats {
            served: m.queries_served.get(),
            rejected: m.queries_shed.get(),
            downgraded: m.queries_downgraded.get(),
            shared_batches: m.shared_batches.get(),
        }
    }

    /// A point-in-time freeze of every metric the engine, admission
    /// controller and server registered.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.session.metrics_snapshot()
    }

    /// The most recent `limit` query traces, newest first (empty unless the
    /// session config's `collect_traces` knob is on).
    pub fn recent_traces(&self, limit: usize) -> Vec<QueryTrace> {
        self.inner.session.recent_traces(limit)
    }

    /// Submit a bounded query and block until its reply.
    pub fn submit(&self, query: Query, bounds: QueryBounds) -> ServerReply {
        let inner = &self.inner;
        let started = Instant::now();

        // Price the query. When no hierarchy (or table) exists the direct
        // execution path produces the same typed error the pricing did —
        // and logs the query, like serial execution would.
        let profile = match inner.session.scan_profile(&query.table) {
            Ok(profile) => profile,
            Err(_) => {
                let reply = Self::direct_reply(
                    inner.session.execute(&query, &bounds),
                    false,
                    Duration::ZERO,
                );
                inner.metrics.queries_served.inc();
                return reply;
            }
        };

        // Admission runs on the client's thread; isolate it so a panic (or
        // an injected `serve.admission` fault) becomes a typed reply rather
        // than tearing the whole connection handler down. The fault point
        // fires before anything is reserved, so nothing leaks.
        let admitted = catch_unwind(AssertUnwindSafe(|| {
            inner.admission.admit(&query.table, &profile, &bounds)
        }));
        let admission = match admitted {
            Ok(Ok(admission)) => admission,
            Ok(Err(overloaded)) => {
                inner.metrics.queries_shed.inc();
                return ServerReply::Overloaded(overloaded);
            }
            Err(_) => {
                inner.metrics.admission_faults.inc();
                return ServerReply::Failed(SciborqError::Internal {
                    site: "serve.admission".to_owned(),
                });
            }
        };

        let reply = self.dispatch(query, &admission);
        inner.admission.release(admission.cost_rows);
        inner.metrics.queries_served.inc();
        if reply.downgraded() {
            inner.metrics.queries_downgraded.inc();
        }
        inner
            .metrics
            .reply_micros
            .observe(u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX));
        reply
    }

    /// The admission verdict as the engine's traces record it.
    fn admission_trace(admission: &Admission) -> AdmissionTrace {
        AdmissionTrace {
            outcome: if admission.downgraded {
                "downgraded".to_owned()
            } else {
                "admitted".to_owned()
            },
            queue_wait: admission.queued,
            cost_rows: admission.cost_rows,
        }
    }

    fn dispatch(&self, query: Query, admission: &Admission) -> ServerReply {
        let inner = &self.inner;
        let shared = inner.config.shared_scans
            && matches!(query.kind, QueryKind::Aggregate { .. })
            && self.scheduler.is_some();
        if !shared {
            return Self::direct_reply(
                inner.session.execute_with_admission(
                    &query,
                    &admission.bounds,
                    Some(Self::admission_trace(admission)),
                ),
                admission.downgraded,
                admission.queued,
            );
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.items.push(PendingQuery {
                query,
                bounds: admission.bounds,
                downgraded: admission.downgraded,
                queued: admission.queued,
                admission: Self::admission_trace(admission),
                reply: tx,
            });
            inner
                .metrics
                .batch_queue_depth
                .set(queue.items.len() as i64);
        }
        inner.pending.notify_one();
        // A dropped sender means the scheduler lost this query mid-batch
        // (it panicked between draining and replying, and was restarted by
        // the watchdog): a typed internal-fault reply, never a hang.
        rx.recv().unwrap_or_else(|_| {
            ServerReply::Failed(SciborqError::Internal {
                site: "serve.scheduler".to_owned(),
            })
        })
    }

    fn direct_reply(
        result: Result<QueryOutcome, SciborqError>,
        downgraded: bool,
        queued: Duration,
    ) -> ServerReply {
        match result {
            Ok(QueryOutcome::Aggregate(answer)) => ServerReply::Aggregate {
                answer,
                downgraded,
                queued,
            },
            Ok(QueryOutcome::Rows(answer)) => ServerReply::Rows {
                answer,
                downgraded,
                queued,
            },
            Err(err) => ServerReply::Failed(err),
        }
    }
}

impl ServerInner {
    fn run_scheduler(&self) {
        loop {
            let drained = {
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                while queue.items.is_empty() && !queue.shutdown {
                    queue = self
                        .pending
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                if queue.items.is_empty() && queue.shutdown {
                    return;
                }
                drop(queue);
                // Let same-impression stragglers pile into this pass.
                std::thread::sleep(self.config.batch_window);
                let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                let take = queue.items.len().min(self.config.max_batch);
                let drained = queue.items.drain(..take).collect::<Vec<_>>();
                self.metrics.batch_queue_depth.set(queue.items.len() as i64);
                drained
            };
            if drained.is_empty() {
                continue;
            }
            self.metrics.shared_batches.inc();
            self.metrics.batch_size.observe(drained.len() as u64);
            let requests: Vec<(Query, QueryBounds)> = drained
                .iter()
                .map(|p| (p.query.clone(), p.bounds))
                .collect();
            let admissions: Vec<Option<AdmissionTrace>> =
                drained.iter().map(|p| Some(p.admission.clone())).collect();
            // Isolate the shared pass: a panic (or an injected
            // `serve.scheduler` fault) loses only this pass, and every
            // member is replayed through the per-query path — which has its
            // own isolation — so no client is stranded and no batch is
            // silently dropped.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                sciborq_telemetry::fault_point!("serve.scheduler");
                self.session
                    .execute_batch_with_admission(&requests, &admissions)
            }));
            match attempt {
                Ok(results) => {
                    for (pending, result) in drained.into_iter().zip(results) {
                        let reply =
                            QueryServer::direct_reply(result, pending.downgraded, pending.queued);
                        // a client that gave up is not an error
                        let _ = pending.reply.send(reply);
                    }
                }
                Err(_) => {
                    self.metrics.batch_faults.inc();
                    for pending in drained {
                        let result = self.session.execute_with_admission(
                            &pending.query,
                            &pending.bounds,
                            Some(pending.admission.clone()),
                        );
                        let reply =
                            QueryServer::direct_reply(result, pending.downgraded, pending.queued);
                        let _ = pending.reply.send(reply);
                    }
                }
            }
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .shutdown = true;
            self.inner.pending.notify_all();
            let _ = handle.join();
        }
    }
}
