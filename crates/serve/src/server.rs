//! The concurrent query server: admission, shared-scan batching, replies.

use crate::admission::{Admission, AdmissionController, Overloaded};
use crate::config::ServeConfig;
use sciborq_core::{
    ApproximateAnswer, ExplorationSession, QueryBounds, QueryOutcome, SciborqError, SelectAnswer,
};
use sciborq_workload::{Query, QueryKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// What a query submitted to the server comes back as.
#[derive(Debug, Clone)]
pub enum ServerReply {
    /// A bounded aggregate answer. `downgraded` is true when admission
    /// tightened the query's row budget to fit the global budget.
    Aggregate {
        /// The engine's answer, with its measured honesty flags.
        answer: ApproximateAnswer,
        /// Whether the row budget was tightened by admission control.
        downgraded: bool,
    },
    /// A row-returning answer.
    Rows {
        /// The engine's answer.
        answer: SelectAnswer,
        /// Whether the row budget was tightened by admission control.
        downgraded: bool,
    },
    /// The server shed the query; the payload says exactly why.
    Overloaded(Overloaded),
    /// The engine rejected or failed the query.
    Failed(SciborqError),
}

impl ServerReply {
    /// The aggregate answer, if this reply carries one.
    pub fn as_aggregate(&self) -> Option<&ApproximateAnswer> {
        match self {
            ServerReply::Aggregate { answer, .. } => Some(answer),
            _ => None,
        }
    }

    /// Whether this reply is a typed overload rejection.
    pub fn is_overloaded(&self) -> bool {
        matches!(self, ServerReply::Overloaded(_))
    }

    /// Whether admission control downgraded the query behind this reply.
    pub fn downgraded(&self) -> bool {
        match self {
            ServerReply::Aggregate { downgraded, .. } | ServerReply::Rows { downgraded, .. } => {
                *downgraded
            }
            _ => false,
        }
    }
}

/// Cumulative serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Queries answered by the engine (including engine-level errors).
    pub served: u64,
    /// Queries shed with a typed overload reply.
    pub rejected: u64,
    /// Served queries whose row budget admission control tightened.
    pub downgraded: u64,
    /// Shared scan passes executed (each covers one drained batch).
    pub shared_batches: u64,
}

struct PendingQuery {
    query: Query,
    bounds: QueryBounds,
    downgraded: bool,
    reply: mpsc::Sender<ServerReply>,
}

#[derive(Default)]
struct BatchQueue {
    items: Vec<PendingQuery>,
    shutdown: bool,
}

struct ServerInner {
    session: ExplorationSession,
    config: ServeConfig,
    admission: AdmissionController,
    queue: Mutex<BatchQueue>,
    pending: Condvar,
    served: AtomicU64,
    rejected: AtomicU64,
    downgraded: AtomicU64,
    shared_batches: AtomicU64,
}

/// A long-lived front end serving concurrent bounded queries from one
/// exploration session.
///
/// `submit` is blocking and thread-safe: call it from as many client
/// threads as you like. Aggregate queries are (when enabled) coalesced by
/// a background scheduler thread into shared scan passes via
/// [`ExplorationSession::execute_batch`]; answers are bit-identical to
/// serial execution either way.
pub struct QueryServer {
    inner: Arc<ServerInner>,
    scheduler: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl QueryServer {
    /// Start a server over a session. Spawns the shared-scan scheduler
    /// thread when shared scans are enabled.
    pub fn new(session: ExplorationSession, config: ServeConfig) -> Result<Self, SciborqError> {
        config.validate().map_err(SciborqError::InvalidConfig)?;
        let admission = AdmissionController::new(
            config.global_row_budget,
            config.max_waiting,
            config.allow_downgrade,
        );
        let inner = Arc::new(ServerInner {
            session,
            config,
            admission,
            queue: Mutex::new(BatchQueue::default()),
            pending: Condvar::new(),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            downgraded: AtomicU64::new(0),
            shared_batches: AtomicU64::new(0),
        });
        let scheduler = if inner.config.shared_scans {
            let worker = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("sciborq-batcher".to_owned())
                    .spawn(move || worker.run_scheduler())
                    .expect("spawn scheduler thread"),
            )
        } else {
            None
        };
        Ok(QueryServer { inner, scheduler })
    }

    /// The wrapped session (for loads, adaptation, impression management).
    pub fn session(&self) -> &ExplorationSession {
        &self.inner.session
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.inner.served.load(Ordering::Relaxed),
            rejected: self.inner.rejected.load(Ordering::Relaxed),
            downgraded: self.inner.downgraded.load(Ordering::Relaxed),
            shared_batches: self.inner.shared_batches.load(Ordering::Relaxed),
        }
    }

    /// Submit a bounded query and block until its reply.
    pub fn submit(&self, query: Query, bounds: QueryBounds) -> ServerReply {
        let inner = &self.inner;

        // Price the query. When no hierarchy (or table) exists the direct
        // execution path produces the same typed error the pricing did —
        // and logs the query, like serial execution would.
        let profile = match inner.session.scan_profile(&query.table) {
            Ok(profile) => profile,
            Err(_) => {
                let reply = Self::direct_reply(inner.session.execute(&query, &bounds), false);
                inner.served.fetch_add(1, Ordering::Relaxed);
                return reply;
            }
        };

        let admission = match inner.admission.admit(&query.table, &profile, &bounds) {
            Ok(admission) => admission,
            Err(overloaded) => {
                inner.rejected.fetch_add(1, Ordering::Relaxed);
                return ServerReply::Overloaded(overloaded);
            }
        };

        let reply = self.dispatch(query, &admission);
        inner.admission.release(admission.cost_rows);
        inner.served.fetch_add(1, Ordering::Relaxed);
        if reply.downgraded() {
            inner.downgraded.fetch_add(1, Ordering::Relaxed);
        }
        reply
    }

    fn dispatch(&self, query: Query, admission: &Admission) -> ServerReply {
        let inner = &self.inner;
        let shared = inner.config.shared_scans
            && matches!(query.kind, QueryKind::Aggregate { .. })
            && self.scheduler.is_some();
        if !shared {
            return Self::direct_reply(
                inner.session.execute(&query, &admission.bounds),
                admission.downgraded,
            );
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = inner.queue.lock().unwrap();
            queue.items.push(PendingQuery {
                query,
                bounds: admission.bounds,
                downgraded: admission.downgraded,
                reply: tx,
            });
        }
        inner.pending.notify_one();
        rx.recv().unwrap_or_else(|_| {
            ServerReply::Failed(SciborqError::InvalidConfig(
                "serving scheduler exited before answering".to_owned(),
            ))
        })
    }

    fn direct_reply(result: Result<QueryOutcome, SciborqError>, downgraded: bool) -> ServerReply {
        match result {
            Ok(QueryOutcome::Aggregate(answer)) => ServerReply::Aggregate { answer, downgraded },
            Ok(QueryOutcome::Rows(answer)) => ServerReply::Rows { answer, downgraded },
            Err(err) => ServerReply::Failed(err),
        }
    }
}

impl ServerInner {
    fn run_scheduler(&self) {
        loop {
            let drained = {
                let mut queue = self.queue.lock().unwrap();
                while queue.items.is_empty() && !queue.shutdown {
                    queue = self.pending.wait(queue).unwrap();
                }
                if queue.items.is_empty() && queue.shutdown {
                    return;
                }
                drop(queue);
                // Let same-impression stragglers pile into this pass.
                std::thread::sleep(self.config.batch_window);
                let mut queue = self.queue.lock().unwrap();
                let take = queue.items.len().min(self.config.max_batch);
                queue.items.drain(..take).collect::<Vec<_>>()
            };
            if drained.is_empty() {
                continue;
            }
            self.shared_batches.fetch_add(1, Ordering::Relaxed);
            let requests: Vec<(Query, QueryBounds)> = drained
                .iter()
                .map(|p| (p.query.clone(), p.bounds))
                .collect();
            let results = self.session.execute_batch(&requests);
            for (pending, result) in drained.into_iter().zip(results) {
                let reply = QueryServer::direct_reply(result, pending.downgraded);
                // a client that gave up is not an error
                let _ = pending.reply.send(reply);
            }
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            self.inner.queue.lock().unwrap().shutdown = true;
            self.inner.pending.notify_all();
            let _ = handle.join();
        }
    }
}
