//! Admission control under a global runtime budget.
//!
//! Every query is priced *before* it reaches the engine: its cost is the
//! row count of the worst (most detailed) escalation level its own bounds
//! admit — the most the engine could legally scan for it in a single
//! evaluation. The controller keeps the total priced cost in flight below
//! the global budget, makes transient overloads wait (up to a bounded
//! queue), and sheds the rest with a typed [`Overloaded`] answer. A query
//! is never silently given a bound it did not keep: when the budget can
//! only fund a cheaper level, the query is either *downgraded* — its own
//! row budget tightened to that level, and the reply flagged — or
//! rejected.
//!
//! Uses `std::sync` primitives (the waiting queue needs a condition
//! variable).

use sciborq_core::{MetricsRegistry, QueryBounds, ScanProfile};
use sciborq_telemetry::{Counter, Gauge, Histogram};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Why a query was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The budget is currently consumed by in-flight queries and the
    /// controller is configured to shed rather than queue.
    BudgetExceeded,
    /// The waiting queue is at capacity.
    QueueFull,
    /// The query's cost can *never* fit the global budget (even its
    /// cheapest admissible level costs more than the whole budget, or
    /// downgrading is disabled).
    CostExceedsBudget,
    /// The query waited for budget until its deadline — the smaller of its
    /// own wall-clock budget and the server's admission timeout — and the
    /// budget never drained. A bounded wait, never a hang: queries used to
    /// block on the queue indefinitely here.
    AdmissionTimeout,
}

impl fmt::Display for OverloadReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverloadReason::BudgetExceeded => write!(f, "budget-exceeded"),
            OverloadReason::QueueFull => write!(f, "queue-full"),
            OverloadReason::CostExceedsBudget => write!(f, "cost-exceeds-budget"),
            OverloadReason::AdmissionTimeout => write!(f, "admission-timeout"),
        }
    }
}

/// A typed load-shedding answer: the server refused the query and says
/// exactly why, instead of returning a degraded answer it never promised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overloaded {
    /// The table the query targeted.
    pub table: String,
    /// The priced scan cost of the rejected query, in rows.
    pub cost_rows: u64,
    /// The configured global budget, in rows.
    pub budget_rows: u64,
    /// Total priced cost in flight at rejection time.
    pub in_flight_rows: u64,
    /// Queries waiting for budget at rejection time.
    pub waiting: usize,
    /// Why the query was shed.
    pub reason: OverloadReason,
}

/// A successfully admitted query: the cost reserved against the global
/// budget and the (possibly tightened) bounds to execute under.
#[derive(Debug, Clone)]
pub struct Admission {
    /// Rows reserved against the global budget. Must be given back with
    /// [`AdmissionController::release`] once the query finishes.
    pub cost_rows: u64,
    /// The bounds the query will actually run under. Identical to the
    /// submitted bounds unless the query was downgraded.
    pub bounds: QueryBounds,
    /// Whether the row budget was tightened to fit the global budget.
    pub downgraded: bool,
    /// Time the query spent blocked on the admission queue before its cost
    /// was reserved (zero when admitted immediately).
    pub queued: Duration,
}

/// The admission controller's registered metric handles.
#[derive(Debug)]
struct AdmissionMetrics {
    /// `serve.queue_depth` — queries currently blocked waiting for budget.
    queue_depth: Arc<Gauge>,
    /// `serve.queue_wait_micros` — measured waits of queued queries.
    queue_wait_micros: Arc<Histogram>,
    /// `serve.queued` — queries that had to wait at all.
    queued: Arc<Counter>,
    /// `serve.admission_timeouts` — waits that hit their deadline and were
    /// shed with [`OverloadReason::AdmissionTimeout`].
    admission_timeouts: Arc<Counter>,
}

#[derive(Debug, Default)]
struct State {
    in_flight_rows: u64,
    waiting: usize,
}

/// Global-budget admission control with bounded waiting and load shedding.
#[derive(Debug)]
pub struct AdmissionController {
    budget: Option<u64>,
    max_waiting: usize,
    allow_downgrade: bool,
    max_wait: Duration,
    state: Mutex<State>,
    available: Condvar,
    metrics: Option<AdmissionMetrics>,
}

impl AdmissionController {
    /// A controller enforcing `budget` total in-flight rows (`None`
    /// disables enforcement), queueing at most `max_waiting` queries, and
    /// optionally downgrading queries that can never fit. A queued query
    /// waits at most `max_wait` (or its own wall-clock budget, whichever is
    /// smaller) before it is shed with
    /// [`OverloadReason::AdmissionTimeout`].
    pub fn new(
        budget: Option<u64>,
        max_waiting: usize,
        allow_downgrade: bool,
        max_wait: Duration,
    ) -> Self {
        AdmissionController {
            budget,
            max_waiting,
            allow_downgrade,
            max_wait,
            state: Mutex::new(State::default()),
            available: Condvar::new(),
            metrics: None,
        }
    }

    /// Register this controller's queue metrics (`serve.queue_depth`,
    /// `serve.queue_wait_micros`, `serve.queued`) in `registry` and record
    /// into them from now on.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(AdmissionMetrics {
            queue_depth: registry.gauge("serve.queue_depth"),
            queue_wait_micros: registry.histogram("serve.queue_wait_micros"),
            queued: registry.counter("serve.queued"),
            admission_timeouts: registry.counter("serve.admission_timeouts"),
        });
        self
    }

    /// Total priced cost currently in flight.
    pub fn in_flight_rows(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_flight_rows
    }

    /// Price a query and reserve its cost against the global budget,
    /// blocking while transient pressure drains. Returns the admission
    /// (with possibly tightened bounds) or a typed overload.
    pub fn admit(
        &self,
        table: &str,
        profile: &ScanProfile,
        bounds: &QueryBounds,
    ) -> Result<Admission, Overloaded> {
        #[cfg(feature = "fault-injection")]
        sciborq_telemetry::fault_point!("serve.admission");
        // Price at the worst level the query's own bounds admit. A query
        // no level fits (worst_admissible = None) costs nothing: the
        // engine will answer it with BoundsUnsatisfiable without scanning.
        let worst = profile.worst_admissible(bounds).unwrap_or(0);
        let Some(budget) = self.budget else {
            self.reserve_unchecked(worst);
            return Ok(Admission {
                cost_rows: worst,
                bounds: *bounds,
                downgraded: false,
                queued: Duration::ZERO,
            });
        };

        let (cost, bounds, downgraded) = if worst > budget {
            // This query can never run at its requested worst level. Either
            // downgrade it to the cheapest level it admits — tightening its
            // own row budget so the engine cannot exceed what we priced —
            // or shed it honestly.
            let cheapest = profile.cheapest_admissible(bounds).unwrap_or(0);
            if !self.allow_downgrade || cheapest > budget {
                let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                return Err(Overloaded {
                    table: table.to_owned(),
                    cost_rows: worst,
                    budget_rows: budget,
                    in_flight_rows: state.in_flight_rows,
                    waiting: state.waiting,
                    reason: OverloadReason::CostExceedsBudget,
                });
            }
            let mut tightened = *bounds;
            tightened.max_rows_scanned = Some(match tightened.max_rows_scanned {
                Some(existing) => existing.min(cheapest),
                None => cheapest,
            });
            (cheapest, tightened, true)
        } else {
            (worst, *bounds, false)
        };

        let mut queued = Duration::ZERO;
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.in_flight_rows + cost > budget {
            if state.waiting >= self.max_waiting {
                return Err(Overloaded {
                    table: table.to_owned(),
                    cost_rows: cost,
                    budget_rows: budget,
                    in_flight_rows: state.in_flight_rows,
                    waiting: state.waiting,
                    reason: if self.max_waiting == 0 {
                        OverloadReason::BudgetExceeded
                    } else {
                        OverloadReason::QueueFull
                    },
                });
            }
            let wait_started = Instant::now();
            state.waiting += 1;
            if let Some(m) = &self.metrics {
                m.queued.inc();
                m.queue_depth.add(1);
            }
            // Deadline-aware wait: a queued query blocks at most for the
            // smaller of its own wall-clock budget and the server's
            // admission timeout, then is shed typed. (This used to be an
            // untimed `Condvar::wait` — under a stuck or slow-draining
            // budget, queued clients hung forever.)
            let max_wait = match bounds.time_budget {
                Some(time_budget) => time_budget.min(self.max_wait),
                None => self.max_wait,
            };
            let deadline = wait_started + max_wait;
            while state.in_flight_rows + cost > budget {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    state.waiting -= 1;
                    let timed_out = Overloaded {
                        table: table.to_owned(),
                        cost_rows: cost,
                        budget_rows: budget,
                        in_flight_rows: state.in_flight_rows,
                        waiting: state.waiting,
                        reason: OverloadReason::AdmissionTimeout,
                    };
                    drop(state);
                    if let Some(m) = &self.metrics {
                        m.queue_depth.sub(1);
                        m.admission_timeouts.inc();
                        m.queue_wait_micros.observe(
                            u64::try_from(wait_started.elapsed().as_micros()).unwrap_or(u64::MAX),
                        );
                    }
                    return Err(timed_out);
                };
                let (guard, _timeout) = self
                    .available
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
            state.waiting -= 1;
            queued = wait_started.elapsed();
            if let Some(m) = &self.metrics {
                m.queue_depth.sub(1);
                m.queue_wait_micros
                    .observe(u64::try_from(queued.as_micros()).unwrap_or(u64::MAX));
            }
        }
        state.in_flight_rows += cost;
        Ok(Admission {
            cost_rows: cost,
            bounds,
            downgraded,
            queued,
        })
    }

    fn reserve_unchecked(&self, cost: u64) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .in_flight_rows += cost;
    }

    /// Return a finished query's reserved cost to the budget and wake
    /// waiters.
    pub fn release(&self, cost_rows: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.in_flight_rows = state.in_flight_rows.saturating_sub(cost_rows);
        drop(state);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_core::ScanProfile;

    fn profile() -> ScanProfile {
        ScanProfile {
            layer_rows: vec![200, 2_000],
            base_rows: Some(20_000),
        }
    }

    #[test]
    fn admits_within_budget_and_prices_at_worst_level() {
        let ctl = AdmissionController::new(Some(25_000), 0, true, Duration::from_secs(2));
        let adm = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        // no per-query row budget: base data is the worst admissible level
        assert_eq!(adm.cost_rows, 20_000);
        assert!(!adm.downgraded);
        assert_eq!(ctl.in_flight_rows(), 20_000);
        ctl.release(adm.cost_rows);
        assert_eq!(ctl.in_flight_rows(), 0);
    }

    #[test]
    fn sheds_when_budget_is_full_and_queue_disabled() {
        let ctl = AdmissionController::new(Some(25_000), 0, true, Duration::from_secs(2));
        let first = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        let err = ctl
            .admit("t", &profile(), &QueryBounds::default())
            .unwrap_err();
        assert_eq!(err.reason, OverloadReason::BudgetExceeded);
        assert_eq!(err.in_flight_rows, 20_000);
        assert_eq!(err.cost_rows, 20_000);
        ctl.release(first.cost_rows);
        // budget drained: admissible again
        assert!(ctl.admit("t", &profile(), &QueryBounds::default()).is_ok());
    }

    #[test]
    fn downgrades_query_that_can_never_fit() {
        let ctl = AdmissionController::new(Some(1_500), 4, true, Duration::from_secs(2));
        let adm = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        assert!(adm.downgraded);
        assert_eq!(adm.cost_rows, 200);
        assert_eq!(adm.bounds.max_rows_scanned, Some(200));
    }

    #[test]
    fn rejects_unfittable_query_when_downgrade_disabled() {
        let ctl = AdmissionController::new(Some(1_500), 4, false, Duration::from_secs(2));
        let err = ctl
            .admit("t", &profile(), &QueryBounds::default())
            .unwrap_err();
        assert_eq!(err.reason, OverloadReason::CostExceedsBudget);
    }

    #[test]
    fn rejects_when_even_cheapest_level_exceeds_budget() {
        let ctl = AdmissionController::new(Some(100), 4, true, Duration::from_secs(2));
        let err = ctl
            .admit("t", &profile(), &QueryBounds::default())
            .unwrap_err();
        assert_eq!(err.reason, OverloadReason::CostExceedsBudget);
    }

    #[test]
    fn unsatisfiable_query_costs_nothing() {
        let ctl = AdmissionController::new(Some(1_000), 0, true, Duration::from_secs(2));
        // a 10-row budget admits no level: the engine will reject it
        // without scanning, so admission charges zero
        let adm = ctl
            .admit("t", &profile(), &QueryBounds::row_budget(10))
            .unwrap();
        assert_eq!(adm.cost_rows, 0);
        assert!(!adm.downgraded);
    }

    #[test]
    fn queued_wait_is_measured_and_recorded() {
        let registry = Arc::new(MetricsRegistry::new());
        let ctl = Arc::new(
            AdmissionController::new(Some(25_000), 4, true, Duration::from_secs(2))
                .with_metrics(&registry),
        );
        // immediate admission reports a zero queue wait and records nothing
        let first = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        assert_eq!(first.queued, Duration::ZERO);
        assert_eq!(registry.snapshot().counter("serve.queued"), Some(0));

        let waiter = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                let adm = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
                ctl.release(adm.cost_rows);
                adm.queued
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        ctl.release(first.cost_rows);
        let queued = waiter.join().unwrap();
        assert!(
            queued >= Duration::from_millis(10),
            "the waiter blocked ~20ms, measured {queued:?}"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.queued"), Some(1));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
        let hist = snap.histogram("serve.queue_wait_micros").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.sum >= 10_000, "wait histogram sum {}", hist.sum);
    }

    #[test]
    fn stuck_budget_sheds_the_waiter_with_a_typed_timeout() {
        let registry = Arc::new(MetricsRegistry::new());
        let ctl = AdmissionController::new(Some(25_000), 4, true, Duration::from_millis(30))
            .with_metrics(&registry);
        // Fill the budget and never release: the second query must come
        // back shed, not hang.
        let _held = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        let started = Instant::now();
        let err = ctl
            .admit("t", &profile(), &QueryBounds::default())
            .unwrap_err();
        assert_eq!(err.reason, OverloadReason::AdmissionTimeout);
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "the wait must run its full deadline before shedding"
        );
        assert_eq!(err.waiting, 0, "the waiter removed itself from the queue");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.admission_timeouts"), Some(1));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(0));
    }

    #[test]
    fn query_time_budget_tightens_the_admission_deadline() {
        let ctl = AdmissionController::new(Some(25_000), 4, true, Duration::from_secs(30));
        let _held = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        // The query's own 20ms wall-clock budget caps the wait, far below
        // the controller's 30s ceiling.
        let bounds = QueryBounds {
            time_budget: Some(Duration::from_millis(20)),
            ..QueryBounds::default()
        };
        let started = Instant::now();
        let err = ctl.admit("t", &profile(), &bounds).unwrap_err();
        assert_eq!(err.reason, OverloadReason::AdmissionTimeout);
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn waiting_query_proceeds_once_budget_drains() {
        use std::sync::Arc;
        let ctl = Arc::new(AdmissionController::new(
            Some(25_000),
            4,
            true,
            Duration::from_secs(2),
        ));
        let first = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
        let waiter = {
            let ctl = Arc::clone(&ctl);
            std::thread::spawn(move || {
                let adm = ctl.admit("t", &profile(), &QueryBounds::default()).unwrap();
                ctl.release(adm.cost_rows);
                adm.cost_rows
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        ctl.release(first.cost_rows);
        assert_eq!(waiter.join().unwrap(), 20_000);
        assert_eq!(ctl.in_flight_rows(), 0);
    }
}
