//! # sciborq-serve
//!
//! A concurrent serving front end for SciBORQ exploration sessions.
//!
//! The core crate answers one bounded query at a time; a data-exploration
//! deployment faces many scientists at once. This crate wraps an
//! [`ExplorationSession`](sciborq_core::ExplorationSession) behind a
//! long-lived [`QueryServer`](server::QueryServer) that:
//!
//! * accepts many concurrent bounded queries through a blocking
//!   [`submit`](server::QueryServer::submit) call;
//! * schedules them under a **global** runtime budget (total rows in
//!   flight) with admission control and load shedding — a query whose
//!   worst admissible escalation level the global budget can never cover
//!   is *downgraded* to its cheapest admissible level (when permitted) or
//!   rejected with a typed [`Overloaded`](admission::Overloaded) answer.
//!   It is never silently handed a bound it did not keep;
//! * batches same-table aggregate queries into **shared scan passes**: one
//!   pass per escalation level evaluates every batched query's compiled
//!   predicate against each row batch, feeding per-query sinks. Answers
//!   remain bit-identical to serial execution.
//!
//! The [`protocol`] module defines a line-delimited JSON wire format
//! (hand-rolled in [`json`]; no external JSON dependency) used by the
//! `sciborq-served` binary for stdio serving. The same wire carries the
//! introspection commands `metrics` (live registry snapshot) and `trace`
//! (recent per-query escalation traces); replies report the admission
//! queue wait as `queued_micros` and, when trace collection is on, embed
//! the full [`QueryTrace`](sciborq_core::QueryTrace).
//!
//! ## Lock acquisition order
//!
//! The serving layer shares one `ExplorationSession` across worker
//! threads, so every lock in the stack lives in a single global acquisition
//! order, verified statically by the `lock_order` lint of
//! `sciborq-analyzer` (the lint builds the inter-procedural acquisition
//! graph and rejects any cycle). The canonical order, outermost first:
//!
//! 1. `ExplorationSession` table registry (`table`)
//! 2. impression `hierarchies`
//! 3. `predicate_set` (workload histograms; also reached from `query_log`
//!    maintenance, which therefore never holds a hierarchy lock)
//! 4. `maintainer` (adaptive rebuild state)
//!
//! The serve-side locks — the scheduler `queue` and the admission
//! controller `state` — are **leaf locks**: nothing else is ever acquired
//! while one of them is held (condvar waits on them drop the guard by
//! construction). New code must acquire locks in this order and release
//! before calling into an earlier layer; the analyzer turns violations
//! into CI failures rather than deadlocks in production.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod config;
pub mod json;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionController, OverloadReason, Overloaded};
pub use config::ServeConfig;
pub use server::{QueryServer, ServeStats, ServerReply};
