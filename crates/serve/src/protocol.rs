//! The line-delimited JSON wire protocol of `sciborq-served`.
//!
//! One request object per line:
//!
//! ```json
//! {"id": 7,
//!  "query": {"table": "photoobj", "kind": "count",
//!            "predicate": {"op": "lt", "column": "ra", "value": 90.0}},
//!  "bounds": {"max_relative_error": 0.05, "max_rows_scanned": 100000,
//!             "confidence": 0.95, "time_budget_ms": 50}}
//! ```
//!
//! `kind` is one of `select | count | sum | avg | min | max | var`
//! (aggregates other than `count` need `"column"`; `select` accepts
//! `"limit"`). Predicate `op`s: `true`, `false`, `lt`, `le`, `gt`, `ge`,
//! `eq`, `ne`, `between` (`low`/`high`), `is_null`, `is_not_null`, `and` /
//! `or` (`args` array), `not` (`arg`). All bounds fields are optional.
//!
//! Besides queries, two introspection commands share the wire:
//!
//! * `{"id":8,"cmd":"metrics"}` — a snapshot of the server's metrics
//!   registry: `{"id":8,"status":"ok","metrics":{"engine.queries":3,...}}`
//!   (histograms render as `{count,sum,p50,p90,p99}` objects).
//! * `{"id":9,"cmd":"trace","limit":4}` — the most recent per-query
//!   escalation traces, newest first (`limit` defaults to 16):
//!   `{"id":9,"status":"ok","traces":[{...}]}`.
//!
//! One response object per line, `id` echoed:
//!
//! * `{"id":7,"status":"ok","answer":{...}}` — value, interval, level,
//!   measured `rows_scanned` / `elapsed_us` / `queued_micros` and the
//!   honesty flags `error_bound_met` / `time_bound_met` / `downgraded` /
//!   `degraded` (the answer survived an isolated internal fault by skipping
//!   part of the layer hierarchy; bounds are re-measured on what actually
//!   ran). When the server collects traces, the answer also carries a
//!   `trace` object (admission verdict, per-level scans, bound verdicts,
//!   fault events).
//! * `{"id":7,"status":"overloaded","reason":"cost-exceeds-budget",...}` —
//!   the typed load-shedding answer (`reason` may also be
//!   `admission-timeout` when the bounded admission wait expired).
//! * `{"id":7,"status":"error","code":"...","message":"..."}` — `code` is
//!   `malformed` (bytes that are not JSON within the parser's size/depth
//!   bounds), `invalid-request` (JSON that is not a request),
//!   `internal-fault` (an isolated fault consumed every rung of the
//!   degradation ladder) or `query-error` (anything else typed).

use crate::admission::Overloaded;
use crate::json::{Json, JsonError};
use crate::server::ServerReply;
use sciborq_columnar::{AggregateKind, Predicate, Value};
use sciborq_core::{
    ApproximateAnswer, EvaluationLevel, MetricsSnapshot, QueryBounds, QueryTrace, SelectAnswer,
};
use sciborq_workload::Query;
use std::time::Duration;

/// A parsed request line: a bounded query or an introspection command.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute a bounded query (boxed: queries dwarf the other variants).
    Query {
        /// The client's correlation id, echoed verbatim in the response.
        id: Json,
        /// The query to execute.
        query: Box<Query>,
        /// The requested bounds.
        bounds: QueryBounds,
    },
    /// Snapshot the server's metrics registry.
    Metrics {
        /// The client's correlation id, echoed verbatim in the response.
        id: Json,
    },
    /// Fetch the most recent per-query escalation traces.
    Trace {
        /// The client's correlation id, echoed verbatim in the response.
        id: Json,
        /// Maximum number of traces to return, newest first.
        limit: usize,
    },
}

/// A typed request-parse failure. The discriminator travels on the wire as
/// a `code` field so clients can distinguish garbage bytes (`malformed`,
/// including oversized and over-nested input) from well-formed JSON that is
/// not a valid request (`invalid-request`).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The line is not valid JSON within the parser's size/depth bounds.
    Malformed(JsonError),
    /// Valid JSON, but not a valid request object.
    Invalid(String),
}

impl ProtocolError {
    /// Stable machine-readable discriminator for the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::Malformed(_) => "malformed",
            ProtocolError::Invalid(_) => "invalid-request",
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Malformed(err) => write!(f, "malformed JSON: {err}"),
            ProtocolError::Invalid(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let doc = Json::parse(line).map_err(ProtocolError::Malformed)?;
    parse_request_doc(&doc).map_err(ProtocolError::Invalid)
}

fn parse_request_doc(doc: &Json) -> Result<Request, String> {
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    if let Some(cmd) = doc.get("cmd") {
        let cmd = cmd.as_str().ok_or("'cmd' must be a string")?;
        return match cmd {
            "metrics" => Ok(Request::Metrics { id }),
            "trace" => {
                let limit = match doc.get("limit").and_then(Json::as_f64) {
                    Some(n) if n >= 1.0 => n as usize,
                    Some(_) => return Err("'limit' must be a positive number".to_owned()),
                    None => 16,
                };
                Ok(Request::Trace { id, limit })
            }
            other => Err(format!("unknown command '{other}'")),
        };
    }
    let query_doc = doc.get("query").ok_or("missing 'query'")?;
    let query = parse_query(query_doc)?;
    let bounds = match doc.get("bounds") {
        Some(bounds_doc) => parse_bounds(bounds_doc)?,
        None => QueryBounds::default(),
    };
    Ok(Request::Query {
        id,
        query: Box::new(query),
        bounds,
    })
}

fn parse_query(doc: &Json) -> Result<Query, String> {
    let table = doc
        .get("table")
        .and_then(Json::as_str)
        .ok_or("query needs a 'table' string")?;
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("query needs a 'kind' string")?;
    let predicate = match doc.get("predicate") {
        Some(p) => parse_predicate(p)?,
        None => Predicate::True,
    };
    let column = || {
        doc.get("column")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("aggregate '{kind}' needs a 'column' string"))
    };
    let query = match kind {
        "select" => {
            let q = Query::select(table, predicate);
            match doc.get("limit").and_then(Json::as_f64) {
                Some(limit) if limit >= 1.0 => q.with_limit(limit as usize),
                Some(_) => return Err("'limit' must be a positive number".to_owned()),
                None => q,
            }
        }
        "count" => Query::count(table, predicate),
        "sum" => Query::aggregate(table, predicate, AggregateKind::Sum, column()?),
        "avg" => Query::aggregate(table, predicate, AggregateKind::Avg, column()?),
        "min" => Query::aggregate(table, predicate, AggregateKind::Min, column()?),
        "max" => Query::aggregate(table, predicate, AggregateKind::Max, column()?),
        "var" => Query::aggregate(table, predicate, AggregateKind::Variance, column()?),
        other => return Err(format!("unknown query kind '{other}'")),
    };
    Ok(query)
}

fn parse_value(doc: &Json) -> Result<Value, String> {
    match doc {
        Json::Num(n) => Ok(Value::Float64(*n)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::Utf8(s.clone())),
        Json::Null => Ok(Value::Null),
        _ => Err("predicate literals must be scalars".to_owned()),
    }
}

fn parse_predicate(doc: &Json) -> Result<Predicate, String> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("predicate needs an 'op' string")?;
    let column = || {
        doc.get("column")
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("predicate op '{op}' needs a 'column' string"))
    };
    let value = || {
        doc.get("value")
            .ok_or_else(|| format!("predicate op '{op}' needs a 'value'"))
            .and_then(parse_value)
    };
    let args = || -> Result<Vec<Predicate>, String> {
        doc.get("args")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("predicate op '{op}' needs an 'args' array"))?
            .iter()
            .map(parse_predicate)
            .collect()
    };
    Ok(match op {
        "true" => Predicate::True,
        "false" => Predicate::False,
        "lt" => Predicate::lt(column()?, value()?),
        "le" => Predicate::lt_eq(column()?, value()?),
        "gt" => Predicate::gt(column()?, value()?),
        "ge" => Predicate::gt_eq(column()?, value()?),
        "eq" => Predicate::eq(column()?, value()?),
        "ne" => Predicate::Compare {
            column: column()?,
            op: sciborq_columnar::CompareOp::NotEq,
            value: value()?,
        },
        "between" => {
            let low = parse_value(doc.get("low").ok_or("'between' needs 'low'")?)?;
            let high = parse_value(doc.get("high").ok_or("'between' needs 'high'")?)?;
            Predicate::Between {
                column: column()?,
                low,
                high,
            }
        }
        "is_null" => Predicate::IsNull(column()?),
        "is_not_null" => Predicate::IsNotNull(column()?),
        "and" => Predicate::And(args()?),
        "or" => Predicate::Or(args()?),
        "not" => {
            let arg = doc.get("arg").ok_or("'not' needs an 'arg' predicate")?;
            Predicate::Not(Box::new(parse_predicate(arg)?))
        }
        other => return Err(format!("unknown predicate op '{other}'")),
    })
}

fn parse_bounds(doc: &Json) -> Result<QueryBounds, String> {
    let mut bounds = QueryBounds::default();
    if let Some(e) = doc.get("max_relative_error").and_then(Json::as_f64) {
        bounds.max_relative_error = Some(e);
    }
    if let Some(c) = doc.get("confidence").and_then(Json::as_f64) {
        bounds.confidence = c;
    }
    if let Some(r) = doc.get("max_rows_scanned").and_then(Json::as_f64) {
        if r < 0.0 {
            return Err("'max_rows_scanned' must be non-negative".to_owned());
        }
        bounds.max_rows_scanned = Some(r as u64);
    }
    if let Some(ms) = doc.get("time_budget_ms").and_then(Json::as_f64) {
        if !(ms >= 0.0) {
            return Err("'time_budget_ms' must be non-negative".to_owned());
        }
        bounds.time_budget = Some(Duration::from_secs_f64(ms / 1_000.0));
    }
    if let Some(n) = doc.get("min_result_rows").and_then(Json::as_f64) {
        bounds.min_result_rows = Some(n as usize);
    }
    Ok(bounds)
}

fn level_json(level: EvaluationLevel) -> Json {
    match level {
        EvaluationLevel::Layer(n) => Json::Str(format!("layer-{n}")),
        EvaluationLevel::BaseData => Json::Str("base".to_owned()),
    }
}

/// Re-parse a telemetry-rendered JSON document into the serve codec so it
/// embeds structurally (telemetry renders strings; it owns the schema).
fn embed_telemetry_json(rendered: &str) -> Json {
    Json::parse(rendered).unwrap_or(Json::Null)
}

fn trace_json(trace: &QueryTrace) -> Json {
    embed_telemetry_json(&trace.to_json())
}

fn aggregate_json(answer: &ApproximateAnswer, downgraded: bool, queued: Duration) -> Json {
    let mut fields = vec![
        ("query".to_owned(), Json::Str(answer.query.clone())),
        (
            "value".to_owned(),
            answer.value.map_or(Json::Null, Json::Num),
        ),
    ];
    match &answer.interval {
        Some(ci) => {
            fields.push(("ci_lower".to_owned(), Json::Num(ci.lower)));
            fields.push(("ci_upper".to_owned(), Json::Num(ci.upper)));
            fields.push(("confidence".to_owned(), Json::Num(ci.confidence)));
        }
        None => {
            fields.push(("ci_lower".to_owned(), Json::Null));
            fields.push(("ci_upper".to_owned(), Json::Null));
        }
    }
    fields.extend([
        ("level".to_owned(), level_json(answer.level)),
        (
            "rows_scanned".to_owned(),
            Json::Num(answer.rows_scanned as f64),
        ),
        (
            "escalations".to_owned(),
            Json::Num(answer.escalations as f64),
        ),
        (
            "elapsed_us".to_owned(),
            Json::Num(answer.elapsed.as_micros() as f64),
        ),
        (
            "error_bound_met".to_owned(),
            Json::Bool(answer.error_bound_met),
        ),
        (
            "time_bound_met".to_owned(),
            Json::Bool(answer.time_bound_met),
        ),
        ("downgraded".to_owned(), Json::Bool(downgraded)),
        ("degraded".to_owned(), Json::Bool(answer.degraded)),
        (
            "queued_micros".to_owned(),
            Json::Num(queued.as_micros() as f64),
        ),
    ]);
    if let Some(trace) = &answer.trace {
        fields.push(("trace".to_owned(), trace_json(trace)));
    }
    Json::Obj(fields)
}

fn rows_json(answer: &SelectAnswer, downgraded: bool, queued: Duration) -> Json {
    let mut fields = vec![
        ("query".to_owned(), Json::Str(answer.query.clone())),
        (
            "rows_returned".to_owned(),
            Json::Num(answer.returned_rows() as f64),
        ),
        (
            "estimated_total_matches".to_owned(),
            Json::Num(answer.estimated_total_matches),
        ),
        ("level".to_owned(), level_json(answer.level)),
        (
            "rows_scanned".to_owned(),
            Json::Num(answer.rows_scanned as f64),
        ),
        (
            "escalations".to_owned(),
            Json::Num(answer.escalations as f64),
        ),
        (
            "elapsed_us".to_owned(),
            Json::Num(answer.elapsed.as_micros() as f64),
        ),
        ("downgraded".to_owned(), Json::Bool(downgraded)),
        ("degraded".to_owned(), Json::Bool(answer.degraded)),
        (
            "queued_micros".to_owned(),
            Json::Num(queued.as_micros() as f64),
        ),
    ];
    if let Some(trace) = &answer.trace {
        fields.push(("trace".to_owned(), trace_json(trace)));
    }
    Json::Obj(fields)
}

fn overloaded_json(o: &Overloaded) -> Vec<(String, Json)> {
    vec![
        ("reason".to_owned(), Json::Str(o.reason.to_string())),
        ("table".to_owned(), Json::Str(o.table.clone())),
        ("cost_rows".to_owned(), Json::Num(o.cost_rows as f64)),
        ("budget_rows".to_owned(), Json::Num(o.budget_rows as f64)),
        (
            "in_flight_rows".to_owned(),
            Json::Num(o.in_flight_rows as f64),
        ),
        ("waiting".to_owned(), Json::Num(o.waiting as f64)),
    ]
}

/// Render one response line (without trailing newline) for a reply.
pub fn render_reply(id: &Json, reply: &ServerReply) -> String {
    let mut fields = vec![("id".to_owned(), id.clone())];
    match reply {
        ServerReply::Aggregate {
            answer,
            downgraded,
            queued,
        } => {
            fields.push(("status".to_owned(), Json::Str("ok".to_owned())));
            fields.push((
                "answer".to_owned(),
                aggregate_json(answer, *downgraded, *queued),
            ));
        }
        ServerReply::Rows {
            answer,
            downgraded,
            queued,
        } => {
            fields.push(("status".to_owned(), Json::Str("ok".to_owned())));
            fields.push(("answer".to_owned(), rows_json(answer, *downgraded, *queued)));
        }
        ServerReply::Overloaded(o) => {
            fields.push(("status".to_owned(), Json::Str("overloaded".to_owned())));
            fields.extend(overloaded_json(o));
        }
        ServerReply::Failed(err) => {
            let code = match err {
                sciborq_core::SciborqError::Internal { .. } => "internal-fault",
                _ => "query-error",
            };
            fields.push(("status".to_owned(), Json::Str("error".to_owned())));
            fields.push(("code".to_owned(), Json::Str(code.to_owned())));
            fields.push(("message".to_owned(), Json::Str(err.to_string())));
        }
    }
    Json::Obj(fields).render()
}

/// Render a `metrics` command response: the live registry snapshot.
pub fn render_metrics(id: &Json, snapshot: &MetricsSnapshot) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("status".to_owned(), Json::Str("ok".to_owned())),
        (
            "metrics".to_owned(),
            embed_telemetry_json(&snapshot.to_json()),
        ),
    ])
    .render()
}

/// Render a `trace` command response: recent traces, newest first.
pub fn render_traces(id: &Json, traces: &[QueryTrace]) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("status".to_owned(), Json::Str("ok".to_owned())),
        (
            "traces".to_owned(),
            Json::Arr(traces.iter().map(trace_json).collect()),
        ),
    ])
    .render()
}

/// Render a parse/protocol error as a response line. `code` distinguishes
/// `malformed` (bytes that were never JSON) from `invalid-request` (JSON
/// that was not a request) so clients and fuzzers can assert typed replies.
pub fn render_protocol_error(id: &Json, error: &ProtocolError) -> String {
    Json::Obj(vec![
        ("id".to_owned(), id.clone()),
        ("status".to_owned(), Json::Str("error".to_owned())),
        ("code".to_owned(), Json::Str(error.code().to_owned())),
        ("message".to_owned(), Json::Str(error.to_string())),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_workload::QueryKind;

    #[test]
    fn parses_a_full_request() {
        let line = r#"{"id": 3, "query": {"table": "photoobj", "kind": "sum", "column": "r_mag",
            "predicate": {"op": "and", "args": [
                {"op": "between", "column": "ra", "low": 10.0, "high": 20.0},
                {"op": "not", "arg": {"op": "is_null", "column": "dec"}}]}},
            "bounds": {"max_relative_error": 0.05, "max_rows_scanned": 5000, "time_budget_ms": 2.5}}"#;
        let Request::Query { id, query, bounds } = parse_request(line).unwrap() else {
            panic!("expected a query request");
        };
        assert_eq!(id, Json::Num(3.0));
        assert_eq!(query.table, "photoobj");
        assert!(matches!(
            query.kind,
            QueryKind::Aggregate {
                kind: AggregateKind::Sum,
                ..
            }
        ));
        assert!(matches!(&query.predicate, Predicate::And(parts) if parts.len() == 2));
        assert_eq!(bounds.max_relative_error, Some(0.05));
        assert_eq!(bounds.max_rows_scanned, Some(5_000));
        assert_eq!(bounds.time_budget, Some(Duration::from_micros(2_500)));
    }

    #[test]
    fn bounds_default_when_absent() {
        let Request::Query { id, query, bounds } =
            parse_request(r#"{"query": {"table": "t", "kind": "count"}}"#).unwrap()
        else {
            panic!("expected a query request");
        };
        assert_eq!(id, Json::Null);
        assert_eq!(bounds.max_rows_scanned, None);
        assert!(matches!(query.predicate, Predicate::True));
    }

    #[test]
    fn parses_introspection_commands() {
        assert!(matches!(
            parse_request(r#"{"id": 1, "cmd": "metrics"}"#).unwrap(),
            Request::Metrics { .. }
        ));
        let Request::Trace { limit, .. } = parse_request(r#"{"cmd": "trace"}"#).unwrap() else {
            panic!("expected a trace request");
        };
        assert_eq!(limit, 16);
        let Request::Trace { limit, .. } =
            parse_request(r#"{"cmd": "trace", "limit": 3}"#).unwrap()
        else {
            panic!("expected a trace request");
        };
        assert_eq!(limit, 3);
        assert!(parse_request(r#"{"cmd": "trace", "limit": 0}"#).is_err());
        assert!(parse_request(r#"{"cmd": "flush"}"#).is_err());
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"query": {"table": "t", "kind": "median"}}"#).is_err());
        assert!(parse_request(r#"{"query": {"table": "t", "kind": "sum"}}"#).is_err());
        assert!(parse_request(
            r#"{"query": {"table": "t", "kind": "count", "predicate": {"op": "near"}}}"#
        )
        .is_err());
    }

    #[test]
    fn renders_overload_and_error_lines() {
        let overload = ServerReply::Overloaded(Overloaded {
            table: "photoobj".to_owned(),
            cost_rows: 100,
            budget_rows: 50,
            in_flight_rows: 40,
            waiting: 2,
            reason: crate::admission::OverloadReason::QueueFull,
        });
        let line = render_reply(&Json::Num(9.0), &overload);
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("overloaded"));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("queue-full"));
        assert_eq!(doc.get("id").unwrap().as_f64(), Some(9.0));

        let err =
            render_protocol_error(&Json::Null, &ProtocolError::Invalid("bad line".to_owned()));
        let doc = Json::parse(&err).unwrap();
        assert_eq!(doc.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(doc.get("code").unwrap().as_str(), Some("invalid-request"));
    }

    #[test]
    fn garbage_bytes_are_malformed_and_bad_requests_are_invalid() {
        // Not JSON at all → malformed.
        let err = parse_request("{\"id\": 3,").unwrap_err();
        assert_eq!(err.code(), "malformed");
        assert!(matches!(
            err,
            ProtocolError::Malformed(JsonError::Syntax { .. })
        ));
        // A nesting bomb → malformed (typed, no stack overflow).
        let bomb = "[".repeat(1 << 16);
        let err = parse_request(&bomb).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Malformed(JsonError::TooDeep { .. })
        ));
        // Valid JSON, bogus request → invalid-request.
        let err = parse_request(r#"{"query": {"table": "t", "kind": "median"}}"#).unwrap_err();
        assert_eq!(err.code(), "invalid-request");
        // The rendered line carries the code.
        let doc = Json::parse(&render_protocol_error(&Json::Null, &err)).unwrap();
        assert_eq!(doc.get("code").unwrap().as_str(), Some("invalid-request"));
    }

    #[test]
    fn ok_replies_carry_the_degraded_flag() {
        use sciborq_core::ApproximateAnswer;
        let answer = ApproximateAnswer {
            query: "count(photoobj)".to_owned(),
            value: Some(10.0),
            interval: None,
            level: EvaluationLevel::Layer(1),
            rows_scanned: 100,
            escalations: 0,
            elapsed: Duration::from_micros(50),
            error_bound_met: true,
            time_bound_met: true,
            degraded: true,
            fault_events: Vec::new(),
            level_scans: Vec::new(),
            trace: None,
        };
        let reply = ServerReply::Aggregate {
            answer,
            downgraded: false,
            queued: Duration::ZERO,
        };
        let doc = Json::parse(&render_reply(&Json::Num(1.0), &reply)).unwrap();
        let body = doc.get("answer").unwrap();
        assert_eq!(body.get("degraded").unwrap().as_bool(), Some(true));
        assert_eq!(body.get("downgraded").unwrap().as_bool(), Some(false));
    }
}
