//! `sciborq-served`: a line-delimited JSON query server over stdio.
//!
//! Builds a synthetic `photoobj` table, creates an impression hierarchy,
//! then answers one JSON request per stdin line with one JSON response per
//! stdout line (see [`sciborq_serve::protocol`] for the wire format,
//! including the `metrics` and `trace` introspection commands).
//! Requests are served concurrently — each line is handed to a worker
//! thread, so responses may interleave; match them by `id`.
//!
//! Diagnostics go to stderr as structured `key=value` lines
//! (`ts=… level=… event=… …`); tune verbosity with `--log-level`.
//!
//! ```text
//! sciborq-served [--rows N] [--layers A,B,...] [--policy uniform|biased]
//!                [--parallelism N] [--shared-scans on|off]
//!                [--global-budget N] [--queue N] [--downgrade on|off]
//!                [--batch-window-us N] [--traces on|off]
//!                [--log-level error|warn|info|debug] [--metrics-out PATH]
//! ```

use sciborq_columnar::{Catalog, DataType, Field, Schema, Table, Value};
use sciborq_core::{ExplorationSession, SamplingPolicy, SciborqConfig};
use sciborq_serve::json::Json;
use sciborq_serve::{protocol, QueryServer, ServeConfig};
use sciborq_telemetry::{LogLevel, Logger};
use sciborq_workload::AttributeDomain;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Options {
    rows: usize,
    layers: Vec<usize>,
    policy: SamplingPolicy,
    parallelism: usize,
    traces: bool,
    log_level: LogLevel,
    metrics_out: Option<String>,
    serve: ServeConfig,
}

fn parse_options() -> Result<Options, String> {
    let mut opts = Options {
        rows: 200_000,
        layers: vec![20_000, 2_000],
        policy: SamplingPolicy::Uniform,
        parallelism: 1,
        traces: true,
        log_level: LogLevel::Info,
        metrics_out: None,
        serve: ServeConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--rows" => opts.rows = value()?.parse().map_err(|e| format!("--rows: {e}"))?,
            "--layers" => {
                opts.layers = value()?
                    .split(',')
                    .map(|part| part.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("--layers: {e}"))?;
            }
            "--policy" => {
                opts.policy = match value()?.as_str() {
                    "uniform" => SamplingPolicy::Uniform,
                    "biased" => SamplingPolicy::biased(["ra", "dec"]),
                    other => return Err(format!("unknown policy '{other}'")),
                };
            }
            "--parallelism" => {
                opts.parallelism = value()?
                    .parse()
                    .map_err(|e| format!("--parallelism: {e}"))?;
            }
            "--shared-scans" => opts.serve.shared_scans = on_off(&value()?)?,
            "--downgrade" => opts.serve.allow_downgrade = on_off(&value()?)?,
            "--traces" => opts.traces = on_off(&value()?)?,
            "--log-level" => opts.log_level = value()?.parse()?,
            "--metrics-out" => opts.metrics_out = Some(value()?),
            "--global-budget" => {
                opts.serve.global_row_budget = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--global-budget: {e}"))?,
                );
            }
            "--queue" => {
                opts.serve.max_waiting = value()?.parse().map_err(|e| format!("--queue: {e}"))?;
            }
            "--batch-window-us" => {
                let us: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--batch-window-us: {e}"))?;
                opts.serve.batch_window = Duration::from_micros(us);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn on_off(value: &str) -> Result<bool, String> {
    match value {
        "on" => Ok(true),
        "off" => Ok(false),
        other => Err(format!("expected on|off, got '{other}'")),
    }
}

fn synthetic_photoobj(rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("dec", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .expect("schema");
    let mut table = Table::new("photoobj", schema);
    for i in 0..rows as i64 {
        // a deterministic low-discrepancy sky: fine for serving demos
        let ra = (i as f64 * 137.507_764).rem_euclid(360.0);
        let dec = (i as f64 * 57.295_779).rem_euclid(180.0) - 90.0;
        let r_mag = 14.0 + (i % 1_000) as f64 / 125.0;
        table
            .append_row(&[
                Value::Int64(i),
                Value::Float64(ra),
                Value::Float64(dec),
                Value::Float64(r_mag),
            ])
            .expect("append");
    }
    table
}

fn build_server(opts: &Options) -> Result<QueryServer, String> {
    let catalog = Catalog::new();
    catalog
        .register(synthetic_photoobj(opts.rows))
        .map_err(|e| e.to_string())?;
    let config = SciborqConfig::with_layers(opts.layers.clone())
        .with_parallelism(opts.parallelism)
        .with_collect_traces(opts.traces);
    let session = ExplorationSession::new(
        catalog,
        config,
        &[
            ("ra", AttributeDomain::new(0.0, 360.0, 72)),
            ("dec", AttributeDomain::new(-90.0, 90.0, 36)),
        ],
    )
    .map_err(|e| e.to_string())?;
    session
        .create_impressions("photoobj", opts.policy.clone())
        .map_err(|e| e.to_string())?;
    QueryServer::new(session, opts.serve.clone()).map_err(|e| e.to_string())
}

fn main() {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(message) => {
            Logger::new(LogLevel::Info).error("bad_flags", &[("message", message)]);
            std::process::exit(2);
        }
    };
    let logger = Logger::new(opts.log_level);
    let server = match build_server(&opts) {
        Ok(server) => Arc::new(server),
        Err(message) => {
            logger.error("startup_failed", &[("message", message)]);
            std::process::exit(1);
        }
    };
    logger.info(
        "ready",
        &[
            ("table", "photoobj".to_owned()),
            ("rows", opts.rows.to_string()),
            ("layers", format!("{:?}", opts.layers)),
            ("traces", if opts.traces { "on" } else { "off" }.to_owned()),
        ],
    );

    let stdout = Arc::new(Mutex::new(std::io::stdout()));
    let mut workers = Vec::new();
    for line in std::io::stdin().lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let server = Arc::clone(&server);
        let stdout = Arc::clone(&stdout);
        workers.push(std::thread::spawn(move || {
            let response = match protocol::parse_request(&line) {
                Ok(protocol::Request::Query { id, query, bounds }) => {
                    logger.debug(
                        "query",
                        &[("table", query.table.clone()), ("id", id.render())],
                    );
                    let reply = server.submit(*query, bounds);
                    protocol::render_reply(&id, &reply)
                }
                Ok(protocol::Request::Metrics { id }) => {
                    logger.debug("metrics", &[("id", id.render())]);
                    protocol::render_metrics(&id, &server.metrics_snapshot())
                }
                Ok(protocol::Request::Trace { id, limit }) => {
                    logger.debug(
                        "trace",
                        &[("id", id.render()), ("limit", limit.to_string())],
                    );
                    protocol::render_traces(&id, &server.recent_traces(limit))
                }
                Err(error) => {
                    logger.warn(
                        "bad_request",
                        &[
                            ("code", error.code().to_owned()),
                            ("message", error.to_string()),
                        ],
                    );
                    protocol::render_protocol_error(&Json::Null, &error)
                }
            };
            let mut out = stdout.lock().unwrap();
            let _ = writeln!(out, "{response}");
            let _ = out.flush();
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
    if let Some(path) = &opts.metrics_out {
        let snapshot = server.metrics_snapshot().to_json();
        match std::fs::write(path, snapshot + "\n") {
            Ok(()) => logger.info("metrics_written", &[("path", path.clone())]),
            Err(err) => logger.error(
                "metrics_write_failed",
                &[("path", path.clone()), ("message", err.to_string())],
            ),
        }
    }
    let stats = server.stats();
    logger.info(
        "shutdown",
        &[
            ("served", stats.served.to_string()),
            ("rejected", stats.rejected.to_string()),
            ("downgraded", stats.downgraded.to_string()),
            ("shared_batches", stats.shared_batches.to_string()),
        ],
    );
}
