//! Serving-layer configuration.

use std::time::Duration;

/// Configuration of a [`QueryServer`](crate::server::QueryServer).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Global runtime budget: the maximum total scan cost (in rows, priced
    /// by each query's worst admissible escalation level) that may be in
    /// flight at once. `None` disables admission control entirely.
    pub global_row_budget: Option<u64>,
    /// How many admitted-but-unscheduled queries may wait for in-flight
    /// cost to drain before further arrivals are shed with a typed
    /// overload answer. `0` sheds immediately whenever the budget is full.
    pub max_waiting: usize,
    /// Whether a query whose worst admissible level exceeds the global
    /// budget may be downgraded to its cheapest admissible level (with the
    /// reply flagged `downgraded`) instead of being rejected outright.
    pub allow_downgrade: bool,
    /// Whether same-table aggregate queries are coalesced into shared scan
    /// passes. Off means every query runs its own scans (useful as a
    /// baseline; answers are identical either way).
    pub shared_scans: bool,
    /// How long the batcher waits after the first enqueued query for
    /// stragglers to coalesce into the same shared pass.
    pub batch_window: Duration,
    /// Upper bound on the number of queries fused into one shared pass.
    pub max_batch: usize,
    /// Upper bound on how long an admitted query may block waiting for
    /// global budget to drain. A query with its own wall-clock budget waits
    /// at most that budget; either way the wait is bounded and a timeout is
    /// shed with a typed `admission-timeout` overload, never a hang.
    pub admission_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            global_row_budget: None,
            max_waiting: 64,
            allow_downgrade: true,
            shared_scans: true,
            batch_window: Duration::from_micros(200),
            max_batch: 32,
            admission_timeout: Duration::from_secs(2),
        }
    }
}

impl ServeConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_batch == 0 {
            return Err("max_batch must be positive".to_owned());
        }
        if self.global_row_budget == Some(0) {
            return Err("global_row_budget must be positive when set".to_owned());
        }
        if self.admission_timeout.is_zero() {
            return Err("admission_timeout must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_batch_rejected() {
        let cfg = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_budget_rejected() {
        let cfg = ServeConfig {
            global_row_budget: Some(0),
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_admission_timeout_rejected() {
        let cfg = ServeConfig {
            admission_timeout: Duration::ZERO,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
