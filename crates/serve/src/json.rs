//! A minimal self-contained JSON value, parser and writer.
//!
//! The build environment has no `serde_json`, so the wire protocol is
//! hand-rolled: enough of RFC 8259 for line-delimited request/response
//! objects. Non-finite numbers (which legal JSON cannot carry) are written
//! as `null`; the protocol layer never needs to round-trip them.

use std::fmt::Write as _;

/// Maximum accepted input size for [`Json::parse`]: one request line. The
/// server reads untrusted bytes off a socket/pipe; anything larger than this
/// is rejected before a single byte is parsed.
pub const MAX_INPUT_BYTES: usize = 1 << 20;

/// Maximum accepted nesting depth (arrays + objects combined). The parser
/// is recursive-descent, so unbounded nesting is unbounded stack; a hostile
/// line of `[[[[…` must fail typed, not blow the stack.
pub const MAX_DEPTH: usize = 64;

/// A typed parse failure from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The input exceeds [`MAX_INPUT_BYTES`]; nothing was parsed.
    TooLarge {
        /// The offered input length in bytes.
        len: usize,
        /// The limit that was exceeded.
        max: usize,
    },
    /// Nesting exceeded [`MAX_DEPTH`] arrays/objects.
    TooDeep {
        /// The limit that was exceeded.
        max: usize,
    },
    /// Any other syntax violation.
    Syntax {
        /// Byte offset where parsing failed.
        at: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::TooLarge { len, max } => {
                write!(f, "input of {len} bytes exceeds the {max}-byte limit")
            }
            JsonError::TooDeep { max } => {
                write!(f, "nesting exceeds the maximum depth of {max}")
            }
            JsonError::Syntax { at, message } => write!(f, "{message} at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input). Input larger
    /// than [`MAX_INPUT_BYTES`] or nested deeper than [`MAX_DEPTH`] is
    /// rejected with a typed error before it can exhaust memory or stack.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        if input.len() > MAX_INPUT_BYTES {
            return Err(JsonError::TooLarge {
                len: input.len(),
                max: MAX_INPUT_BYTES,
            });
        }
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.syntax("trailing input"));
        }
        Ok(value)
    }

    /// Render as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // shortest round-trip form Rust produces
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn syntax(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            at: self.pos,
            message: message.into(),
        }
    }

    fn descend(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::TooDeep { max: MAX_DEPTH });
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.syntax(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.syntax("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.syntax("unexpected input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.syntax("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.syntax("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.syntax("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.syntax("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.syntax("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.syntax("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.syntax("invalid \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are out of scope for this protocol
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.syntax("unsupported \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.syntax(format!("unknown escape '\\{}'", other as char))
                            );
                        }
                    }
                }
                _ => return Err(self.syntax("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.syntax("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.syntax(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = r#"{"id":7,"query":{"kind":"count","predicate":{"op":"and","args":[{"op":"lt","column":"ra","value":90.5},{"op":"is_not_null","column":"dec"}]}},"flag":true,"note":null}"#;
        let parsed = Json::parse(doc).unwrap();
        assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed);
        assert_eq!(parsed.get("id").unwrap().as_f64(), Some(7.0));
        let kind = parsed.get("query").unwrap().get("kind").unwrap();
        assert_eq!(kind.as_str(), Some("count"));
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::Str("a\"b\\c\nd\te\u{0001}".to_owned());
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert!(rendered.contains("\\u0001"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(2.5).render(), "2.5");
    }

    #[test]
    fn parses_numbers_and_arrays() {
        let v = Json::parse("[-1.5e3, 0, 42]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_f64(), Some(-1500.0));
        assert_eq!(items[2].as_f64(), Some(42.0));
    }

    #[test]
    fn oversized_input_rejected_before_parsing() {
        let mut line = String::from("[");
        line.push_str(&"1,".repeat(MAX_INPUT_BYTES / 2));
        line.push_str("1]");
        assert_eq!(
            Json::parse(&line),
            Err(JsonError::TooLarge {
                len: line.len(),
                max: MAX_INPUT_BYTES,
            })
        );
    }

    #[test]
    fn hostile_nesting_fails_typed_not_with_a_blown_stack() {
        let bomb = "[".repeat(100_000);
        assert_eq!(
            Json::parse(&bomb),
            Err(JsonError::TooDeep { max: MAX_DEPTH })
        );
        let bomb = "{\"k\":".repeat(80_000) + "null";
        assert_eq!(
            Json::parse(&bomb),
            Err(JsonError::TooDeep { max: MAX_DEPTH })
        );
    }

    #[test]
    fn depth_at_the_limit_is_accepted() {
        // MAX_DEPTH nested arrays exactly: legal.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        // One deeper: typed rejection.
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert_eq!(
            Json::parse(&deep),
            Err(JsonError::TooDeep { max: MAX_DEPTH })
        );
        // Siblings do not accumulate depth.
        let wide = format!("[{}]", "[],".repeat(500) + "[]");
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn syntax_errors_carry_the_offset() {
        let Err(JsonError::Syntax { at, .. }) = Json::parse("[1,  !]") else {
            panic!("expected a syntax error");
        };
        assert_eq!(at, 5);
    }
}
