//! Serving-layer integration tests: concurrent bit-identity, admission
//! control under bursts, and honest downgrades.

use sciborq_columnar::{AggregateKind, Catalog, DataType, Field, Predicate, Schema, Table, Value};
use sciborq_core::{
    ExplorationSession, QueryBounds, QueryOutcome, SamplingPolicy, SciborqConfig, SciborqError,
};
use sciborq_serve::{OverloadReason, QueryServer, ServeConfig, ServerReply};
use sciborq_workload::{AttributeDomain, Query};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn photoobj(rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .unwrap();
    let mut table = Table::new("photoobj", schema);
    for i in 0..rows as i64 {
        let ra = (i as f64 * 137.507_764).rem_euclid(360.0);
        table
            .append_row(&[
                Value::Int64(i),
                Value::Float64(ra),
                Value::Float64(14.0 + (i % 1_000) as f64 / 125.0),
            ])
            .unwrap();
    }
    table
}

fn session(rows: usize, layers: Vec<usize>) -> ExplorationSession {
    let catalog = Catalog::new();
    catalog.register(photoobj(rows)).unwrap();
    let session = ExplorationSession::new(
        catalog,
        SciborqConfig::with_layers(layers),
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap();
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    session
}

/// The mixed workload used by the bit-identity tests: escalating
/// aggregates, an exact base-data query, an unsatisfiable budget, and a
/// SELECT. No time budgets — wall-clock may not influence answers.
fn workload() -> Vec<(Query, QueryBounds)> {
    vec![
        (
            Query::count("photoobj", Predicate::lt("ra", 90.0)),
            QueryBounds::max_error(0.1),
        ),
        (
            Query::count("photoobj", Predicate::lt("ra", 90.0)),
            QueryBounds::max_error(0.02),
        ),
        (
            Query::aggregate(
                "photoobj",
                Predicate::lt("ra", 180.0),
                AggregateKind::Sum,
                "r_mag",
            ),
            QueryBounds::max_error(0.05),
        ),
        (
            Query::aggregate("photoobj", Predicate::True, AggregateKind::Avg, "r_mag"),
            QueryBounds::max_error(0.05),
        ),
        (
            Query::count("photoobj", Predicate::lt("objid", 101.0)),
            QueryBounds::max_error(1e-9),
        ),
        (
            Query::count("photoobj", Predicate::True),
            QueryBounds::row_budget(10),
        ),
        (
            Query::select("photoobj", Predicate::lt("ra", 180.0)).with_limit(5),
            QueryBounds::default(),
        ),
    ]
}

fn assert_reply_matches_serial(
    reply: &ServerReply,
    serial: &Result<QueryOutcome, SciborqError>,
    query: &Query,
) {
    match (reply, serial) {
        (ServerReply::Aggregate { answer: b, .. }, Ok(QueryOutcome::Aggregate(a))) => {
            assert_eq!(
                a.value.map(f64::to_bits),
                b.value.map(f64::to_bits),
                "value bits for {query}"
            );
            let bits = |ci: &Option<sciborq_stats::ConfidenceInterval>| {
                ci.map(|ci| (ci.lower.to_bits(), ci.upper.to_bits()))
            };
            assert_eq!(bits(&a.interval), bits(&b.interval), "interval for {query}");
            assert_eq!(a.level, b.level, "level for {query}");
            assert_eq!(a.rows_scanned, b.rows_scanned, "rows_scanned for {query}");
            assert_eq!(a.escalations, b.escalations, "escalations for {query}");
            assert_eq!(
                a.error_bound_met, b.error_bound_met,
                "error_bound_met for {query}"
            );
        }
        (ServerReply::Rows { answer: b, .. }, Ok(QueryOutcome::Rows(a))) => {
            assert_eq!(a.returned_rows(), b.returned_rows(), "rows for {query}");
            assert_eq!(a.level, b.level, "level for {query}");
        }
        (ServerReply::Failed(b), Err(a)) => assert_eq!(a, b, "error for {query}"),
        (reply, serial) => panic!("reply shape diverged for {query}: {serial:?} vs {reply:?}"),
    }
}

fn bit_identity_under_concurrency(shared_scans: bool) {
    // Two identically-built sessions produce identical impressions
    // (deterministic seeded sampling): one is driven serially as the
    // reference, the other concurrently through the server.
    let reference = session(50_000, vec![2_000, 200]);
    let serving = session(50_000, vec![2_000, 200]);
    let server = Arc::new(
        QueryServer::new(
            serving,
            ServeConfig {
                shared_scans,
                batch_window: Duration::from_millis(2),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    let workload = workload();
    let serial: Vec<_> = workload
        .iter()
        .map(|(q, b)| reference.execute(q, b))
        .collect();

    let clients = 6;
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for _ in 0..clients {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        let workload = workload.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            workload
                .into_iter()
                .map(|(query, bounds)| server.submit(query, bounds))
                .collect::<Vec<_>>()
        }));
    }
    for handle in handles {
        let replies = handle.join().unwrap();
        for (reply, ((query, _), serial)) in replies.iter().zip(workload.iter().zip(&serial)) {
            assert_reply_matches_serial(reply, serial, query);
        }
    }
    let stats = server.stats();
    assert_eq!(stats.served, (clients * workload.len()) as u64);
    assert_eq!(stats.rejected, 0);
    if shared_scans {
        assert!(stats.shared_batches > 0, "batcher never ran");
    } else {
        assert_eq!(stats.shared_batches, 0);
    }
}

#[test]
fn shared_scan_answers_are_bit_identical_to_serial() {
    bit_identity_under_concurrency(true);
}

#[test]
fn unshared_answers_are_bit_identical_to_serial() {
    bit_identity_under_concurrency(false);
}

#[test]
fn over_budget_burst_sheds_typed_rejections_and_keeps_answers_honest() {
    let serving = session(20_000, vec![2_000, 200]);
    // Each unbounded query prices at the 20k-row base table; a 25k global
    // budget fits one at a time. No waiting queue: overlap must shed.
    let server = Arc::new(
        QueryServer::new(
            serving,
            ServeConfig {
                global_row_budget: Some(25_000),
                max_waiting: 0,
                allow_downgrade: false,
                shared_scans: true,
                batch_window: Duration::from_millis(5),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );

    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let mut handles = Vec::new();
    for c in 0..clients {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let query = Query::count("photoobj", Predicate::lt("ra", 1.0 + c as f64));
            // an aggressive error bound with a time budget: the engine
            // reports honestly whether it held
            let bounds = QueryBounds {
                time_budget: Some(Duration::from_millis(250)),
                ..QueryBounds::max_error(0.01)
            };
            server.submit(query, bounds)
        }));
    }

    let mut served = 0u64;
    let mut rejected = 0u64;
    for handle in handles {
        match handle.join().unwrap() {
            ServerReply::Aggregate { answer, .. } => {
                served += 1;
                // honesty: an answer claiming the time bound held must
                // actually have held it
                if answer.time_bound_met {
                    assert!(
                        answer.elapsed <= Duration::from_millis(250),
                        "time_bound_met claimed but elapsed {:?}",
                        answer.elapsed
                    );
                }
            }
            ServerReply::Overloaded(o) => {
                rejected += 1;
                assert_eq!(o.reason, OverloadReason::BudgetExceeded);
                assert_eq!(o.budget_rows, 25_000);
                assert!(o.cost_rows + o.in_flight_rows > o.budget_rows);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(served + rejected, clients as u64);
    assert!(
        rejected >= 1,
        "an 8-client burst against a one-query budget must shed"
    );
    assert!(served >= 1, "admission must not shed everything");
    let stats = server.stats();
    assert_eq!(stats.served, served);
    assert_eq!(stats.rejected, rejected);
    // the budget fully drains once the burst is done
    assert_eq!(server.session().query_log().len() as u64, served);
}

#[test]
fn unfittable_queries_downgrade_with_a_flag_or_shed_typed() {
    // worst admissible level (base, 20k rows) can never fit a 1.5k budget;
    // the cheapest layer (200 rows) can.
    let serving = session(20_000, vec![2_000, 200]);
    let server = QueryServer::new(
        serving,
        ServeConfig {
            global_row_budget: Some(1_500),
            allow_downgrade: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let reply = server.submit(
        Query::count("photoobj", Predicate::lt("ra", 90.0)),
        QueryBounds::max_error(0.5),
    );
    match &reply {
        ServerReply::Aggregate {
            answer, downgraded, ..
        } => {
            assert!(*downgraded, "tightened bounds must be flagged");
            // the 200-row layer is escalation level 1 (least detailed);
            // with a 200-row budget the engine cannot go deeper
            assert!(answer.rows_scanned <= 200, "rows {}", answer.rows_scanned);
            assert!(answer.time_bound_met);
        }
        other => panic!("expected a downgraded answer, got {other:?}"),
    }
    assert_eq!(server.stats().downgraded, 1);

    // with downgrading disabled the same query is shed, typed
    let serving = session(20_000, vec![2_000, 200]);
    let server = QueryServer::new(
        serving,
        ServeConfig {
            global_row_budget: Some(1_500),
            allow_downgrade: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let reply = server.submit(
        Query::count("photoobj", Predicate::lt("ra", 90.0)),
        QueryBounds::max_error(0.5),
    );
    match reply {
        ServerReply::Overloaded(o) => {
            assert_eq!(o.reason, OverloadReason::CostExceedsBudget);
            assert_eq!(o.cost_rows, 20_000);
            assert_eq!(o.budget_rows, 1_500);
        }
        other => panic!("expected typed overload, got {other:?}"),
    }
}

#[test]
fn queries_for_missing_hierarchies_fail_typed_through_the_server() {
    let catalog = Catalog::new();
    catalog.register(photoobj(1_000)).unwrap();
    let session = ExplorationSession::new(
        catalog,
        SciborqConfig::with_layers(vec![200, 50]),
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap();
    let server = QueryServer::new(session, ServeConfig::default()).unwrap();
    let reply = server.submit(
        Query::count("photoobj", Predicate::True),
        QueryBounds::default(),
    );
    assert!(
        matches!(&reply, ServerReply::Failed(SciborqError::NoImpressions { table }) if table == "photoobj"),
        "got {reply:?}"
    );
    let reply = server.submit(
        Query::count("missing", Predicate::True),
        QueryBounds::default(),
    );
    assert!(matches!(
        reply,
        ServerReply::Failed(SciborqError::UnknownTable(_))
    ));
}
