//! End-to-end introspection: the `metrics` and `trace` protocol commands
//! reflect live registry contents and complete per-level traces, and served
//! replies carry `queued_micros`.

use sciborq_columnar::{Catalog, DataType, Field, Predicate, Schema, Table, Value};
use sciborq_core::{ExplorationSession, QueryBounds, SamplingPolicy, SciborqConfig};
use sciborq_serve::json::Json;
use sciborq_serve::{protocol, QueryServer, ServeConfig, ServerReply};
use sciborq_workload::{AttributeDomain, Query};

fn photoobj(rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
    ])
    .unwrap();
    let mut table = Table::new("photoobj", schema);
    for i in 0..rows as i64 {
        let ra = (i as f64 * 137.507_764).rem_euclid(360.0);
        table
            .append_row(&[Value::Int64(i), Value::Float64(ra)])
            .unwrap();
    }
    table
}

fn server(traces: bool) -> QueryServer {
    let catalog = Catalog::new();
    catalog.register(photoobj(20_000)).unwrap();
    let config = SciborqConfig::with_layers(vec![2_000, 200]).with_collect_traces(traces);
    let session = ExplorationSession::new(
        catalog,
        config,
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap();
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    QueryServer::new(session, ServeConfig::default()).unwrap()
}

/// Drive a parsed protocol request against the server the way the binary's
/// worker loop does, returning the rendered response line.
fn roundtrip(server: &QueryServer, line: &str) -> Json {
    let rendered = match protocol::parse_request(line).unwrap() {
        protocol::Request::Query { id, query, bounds } => {
            let reply = server.submit(*query, bounds);
            protocol::render_reply(&id, &reply)
        }
        protocol::Request::Metrics { id } => {
            protocol::render_metrics(&id, &server.metrics_snapshot())
        }
        protocol::Request::Trace { id, limit } => {
            protocol::render_traces(&id, &server.recent_traces(limit))
        }
    };
    Json::parse(&rendered).unwrap()
}

#[test]
fn metrics_command_reports_live_registry_contents() {
    let server = server(true);
    for _ in 0..3 {
        let reply = server.submit(
            Query::count("photoobj", Predicate::lt("ra", 180.0)),
            QueryBounds::max_error(0.5),
        );
        assert!(matches!(reply, ServerReply::Aggregate { .. }));
    }

    let doc = roundtrip(&server, r#"{"id": 42, "cmd": "metrics"}"#);
    assert_eq!(doc.get("id").unwrap().as_f64(), Some(42.0));
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    let metrics = doc.get("metrics").unwrap();
    assert_eq!(metrics.get("engine.queries").unwrap().as_f64(), Some(3.0));
    assert_eq!(
        metrics.get("serve.queries_served").unwrap().as_f64(),
        Some(3.0)
    );
    assert!(
        metrics
            .get("engine.rows_scanned")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    // histograms render as summary objects with live counts
    let latency = metrics.get("engine.query_micros").unwrap();
    assert_eq!(latency.get("count").unwrap().as_f64(), Some(3.0));
    assert!(latency.get("p50").unwrap().as_f64().unwrap() >= 0.0);
    let reply_latency = metrics.get("serve.reply_micros").unwrap();
    assert_eq!(reply_latency.get("count").unwrap().as_f64(), Some(3.0));
}

#[test]
fn trace_command_returns_complete_per_level_traces() {
    let server = server(true);
    // a tight error bound forces escalation through both layers
    let reply = server.submit(
        Query::count("photoobj", Predicate::lt("ra", 1.0)),
        QueryBounds::max_error(1e-9),
    );
    assert!(matches!(reply, ServerReply::Aggregate { .. }));

    let doc = roundtrip(&server, r#"{"id": 7, "cmd": "trace", "limit": 4}"#);
    assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
    let traces = doc.get("traces").unwrap().as_arr().unwrap();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert!(trace
        .get("query")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("COUNT"));
    // admission verdict stamped by the serving layer
    let admission = trace.get("admission").unwrap();
    assert_eq!(admission.get("outcome").unwrap().as_str(), Some("admitted"));
    assert!(
        admission
            .get("queue_wait_micros")
            .unwrap()
            .as_f64()
            .unwrap()
            >= 0.0
    );
    // every level visited is recorded with its scan and bound verdict
    let levels = trace.get("levels").unwrap().as_arr().unwrap();
    assert_eq!(levels.len(), 3, "layer-2, layer-1, base");
    assert_eq!(levels[0].get("level").unwrap().as_str(), Some("layer-2"));
    assert_eq!(
        levels.last().unwrap().get("level").unwrap().as_str(),
        Some("base")
    );
    for level in levels {
        assert!(level.get("rows_scanned").unwrap().as_f64().unwrap() > 0.0);
        assert!(level.get("elapsed_micros").unwrap().as_f64().unwrap() >= 0.0);
    }
    assert_eq!(trace.get("final_level").unwrap().as_str(), Some("base"));
    assert_eq!(trace.get("escalations").unwrap().as_f64(), Some(2.0));
    assert_eq!(trace.get("requested_error").unwrap().as_f64(), Some(1e-9));
}

#[test]
fn query_replies_carry_queued_micros_and_optional_trace() {
    let with_traces = server(true);
    let doc = roundtrip(
        &with_traces,
        r#"{"id": 1, "query": {"table": "photoobj", "kind": "count",
            "predicate": {"op": "lt", "column": "ra", "value": 90.0}},
            "bounds": {"max_relative_error": 0.5}}"#,
    );
    let answer = doc.get("answer").unwrap();
    assert!(answer.get("queued_micros").unwrap().as_f64().unwrap() >= 0.0);
    let trace = answer.get("trace").expect("trace embedded when collecting");
    assert!(!trace.get("levels").unwrap().as_arr().unwrap().is_empty());

    let without = server(false);
    let doc = roundtrip(
        &without,
        r#"{"id": 2, "query": {"table": "photoobj", "kind": "count"}}"#,
    );
    let answer = doc.get("answer").unwrap();
    assert!(answer.get("queued_micros").is_some());
    assert!(
        answer.get("trace").is_none(),
        "no trace field when collection is off"
    );
}

#[test]
fn traces_can_be_capped_and_are_newest_first() {
    let server = server(true);
    for cutoff in [30.0, 60.0, 90.0] {
        server.submit(
            Query::count("photoobj", Predicate::lt("ra", cutoff)),
            QueryBounds::max_error(0.5),
        );
    }
    let doc = roundtrip(&server, r#"{"cmd": "trace", "limit": 2}"#);
    let traces = doc.get("traces").unwrap().as_arr().unwrap();
    assert_eq!(traces.len(), 2, "limit respected");
    // newest first: the last query filtered ra < 90
    assert!(traces[0]
        .get("query")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("90"));
}
