//! Chaos suite: deterministic fault storms against the full serving stack.
//!
//! Every test drives a real [`QueryServer`] with a seeded [`FaultPlan`]
//! installed and asserts the three serving invariants the recovery
//! machinery promises:
//!
//! 1. **Never hang** — every submitted query comes back within a bounded
//!    wall-clock window, even when scheduler threads die mid-batch.
//! 2. **Never crash** — injected panics are isolated at the documented
//!    seams; no panic ever crosses `submit`.
//! 3. **Bit-identical or typed** — a reply that is neither `degraded` nor
//!    an error is bit-identical to the fault-free oracle; everything else
//!    is a typed error or a typed overload, never a silently wrong answer.
//!
//! Fault plans are process-global, so these tests live in their own
//! integration binary and serialise through [`serial`]. All storms use
//! fixed seeds: a failure here replays exactly.

#![cfg(feature = "fault-injection")]

use sciborq_columnar::{Catalog, DataType, Field, Predicate, Schema, Table, Value};
use sciborq_core::{
    ExplorationSession, QueryBounds, QueryOutcome, SamplingPolicy, SciborqConfig, SciborqError,
};
use sciborq_serve::{QueryServer, ServeConfig, ServerReply};
use sciborq_telemetry::faults::{self, FaultPlan, Trigger};
use sciborq_workload::{AttributeDomain, Query};
use std::sync::mpsc;
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// One fault plan at a time: the registry is process-global.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// While a plan is active, suppress panic-hook output for *injected*
/// panics only (they are the point, not noise); real assertion failures
/// still print through the previous hook.
static QUIET: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn init_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault at"));
            if !(QUIET.load(std::sync::atomic::Ordering::Relaxed) && injected) {
                prev(info);
            }
        }));
    });
}

/// Run `f` with `plan` installed; the registry is cleared (and the quiet
/// flag dropped) even if `f` panics.
fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    struct Cleanup;
    impl Drop for Cleanup {
        fn drop(&mut self) {
            QUIET.store(false, std::sync::atomic::Ordering::Relaxed);
            faults::clear();
        }
    }
    init_quiet_hook();
    faults::install(plan);
    QUIET.store(true, std::sync::atomic::Ordering::Relaxed);
    let _cleanup = Cleanup;
    f()
}

fn photoobj(rows: usize) -> Table {
    let schema = Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .unwrap();
    let mut table = Table::new("photoobj", schema);
    for i in 0..rows as i64 {
        let ra = (i as f64 * 137.507_764).rem_euclid(360.0);
        table
            .append_row(&[
                Value::Int64(i),
                Value::Float64(ra),
                Value::Float64(14.0 + (i % 1_000) as f64 / 125.0),
            ])
            .unwrap();
    }
    table
}

fn session(rows: usize) -> ExplorationSession {
    let catalog = Catalog::new();
    catalog.register(photoobj(rows)).unwrap();
    let session = ExplorationSession::new(
        catalog,
        SciborqConfig::with_layers(vec![2_000, 200]),
        &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
    )
    .unwrap();
    session
        .create_impressions("photoobj", SamplingPolicy::Uniform)
        .unwrap();
    session
}

fn server(rows: usize) -> Arc<QueryServer> {
    Arc::new(
        QueryServer::new(
            session(rows),
            ServeConfig {
                shared_scans: true,
                batch_window: Duration::from_millis(2),
                admission_timeout: Duration::from_secs(5),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    )
}

/// The storm workload: escalating counts and aggregates plus a SELECT. No
/// time budgets, so fault-free answers are wall-clock independent.
fn workload() -> Vec<(Query, QueryBounds)> {
    vec![
        (
            Query::count("photoobj", Predicate::lt("ra", 90.0)),
            QueryBounds::max_error(0.1),
        ),
        (
            Query::count("photoobj", Predicate::lt("ra", 180.0)),
            QueryBounds::max_error(0.02),
        ),
        (
            Query::aggregate(
                "photoobj",
                Predicate::lt("ra", 180.0),
                sciborq_columnar::AggregateKind::Sum,
                "r_mag",
            ),
            QueryBounds::max_error(0.05),
        ),
        (
            Query::select("photoobj", Predicate::lt("ra", 90.0)).with_limit(5),
            QueryBounds::default(),
        ),
    ]
}

/// A comparable digest of one reply: enough to assert bit-identity and
/// typed-ness without holding the whole answer.
#[derive(Debug, Clone, PartialEq)]
enum Digest {
    Aggregate {
        value_bits: Option<u64>,
        level: sciborq_core::EvaluationLevel,
        degraded: bool,
    },
    Rows {
        returned: usize,
        degraded: bool,
    },
    Overloaded(String),
    Failed(String),
}

fn digest(reply: &ServerReply) -> Digest {
    match reply {
        ServerReply::Aggregate { answer, .. } => Digest::Aggregate {
            value_bits: answer.value.map(f64::to_bits),
            level: answer.level,
            degraded: answer.degraded,
        },
        ServerReply::Rows { answer, .. } => Digest::Rows {
            returned: answer.returned_rows(),
            degraded: answer.degraded,
        },
        ServerReply::Overloaded(o) => Digest::Overloaded(o.reason.to_string()),
        ServerReply::Failed(err) => Digest::Failed(err.to_string()),
    }
}

/// Fault-free oracle digests for [`workload`], computed on an identically
/// built (deterministically sampled) session.
fn oracle() -> Vec<Digest> {
    let reference = session(50_000);
    workload()
        .iter()
        .map(|(q, b)| match reference.execute(q, b).unwrap() {
            QueryOutcome::Aggregate(a) => Digest::Aggregate {
                value_bits: a.value.map(f64::to_bits),
                level: a.level,
                degraded: false,
            },
            QueryOutcome::Rows(r) => Digest::Rows {
                returned: r.returned_rows(),
                degraded: false,
            },
        })
        .collect()
}

/// Drive `clients` concurrent clients through the server, each running the
/// whole workload, and collect every client's replies. Panics with "hung"
/// if any client fails to finish within `timeout` — the never-hang
/// invariant, enforced mechanically.
fn run_clients(server: &Arc<QueryServer>, clients: usize, timeout: Duration) -> Vec<Vec<Digest>> {
    let (tx, rx) = mpsc::channel();
    let barrier = Arc::new(Barrier::new(clients));
    for c in 0..clients {
        let server = Arc::clone(server);
        let barrier = Arc::clone(&barrier);
        let tx = tx.clone();
        std::thread::spawn(move || {
            barrier.wait();
            let replies: Vec<Digest> = workload()
                .into_iter()
                .map(|(query, bounds)| digest(&server.submit(query, bounds)))
                .collect();
            let _ = tx.send((c, replies));
        });
    }
    drop(tx);
    let mut out = vec![Vec::new(); clients];
    for _ in 0..clients {
        let (c, replies) = rx
            .recv_timeout(timeout)
            .expect("a client hung: the never-hang invariant is broken");
        out[c] = replies;
    }
    out
}

/// Check the bit-identical-or-typed invariant for one client's replies.
fn assert_bit_identical_or_typed(replies: &[Digest], oracle: &[Digest]) {
    for (reply, expected) in replies.iter().zip(oracle) {
        match reply {
            Digest::Aggregate { degraded: true, .. } | Digest::Rows { degraded: true, .. } => {
                // Honestly flagged: the ladder dropped a level. Fine.
            }
            Digest::Overloaded(_) => {
                // Typed load shedding. Fine.
            }
            Digest::Failed(message) => {
                assert!(
                    message.contains("internal fault isolated at"),
                    "untyped failure leaked: {message}"
                );
            }
            ok => assert_eq!(
                ok, expected,
                "a non-degraded, non-error reply must be bit-identical to the oracle"
            ),
        }
    }
}

/// An admission-seam panic is isolated into a typed internal error and the
/// server keeps serving afterwards.
#[test]
fn admission_panic_is_isolated_and_the_server_survives() {
    let _guard = serial();
    let server = server(50_000);
    let (query, bounds) = workload().remove(0);

    let reply = with_plan(
        FaultPlan::new(21).panic_at("serve.admission", Trigger::Always),
        || server.submit(query.clone(), bounds),
    );
    match reply {
        ServerReply::Failed(SciborqError::Internal { site }) => {
            assert_eq!(site, "serve.admission");
        }
        other => panic!("expected a typed internal fault, got {other:?}"),
    }
    assert_eq!(
        server.metrics_snapshot().counter("serve.admission_faults"),
        Some(1)
    );

    // Plan cleared: the same query now serves normally.
    let reply = server.submit(query, bounds);
    assert!(reply.as_aggregate().is_some(), "server died: {reply:?}");
}

/// A scheduler thread killed mid-batch restarts, and the members of the
/// lost batch are replayed individually — bit-identically, never stranded.
#[test]
fn scheduler_panics_replay_batch_members_never_stranding_clients() {
    let _guard = serial();
    let server = server(50_000);
    let oracle = oracle();

    let all = with_plan(
        FaultPlan::new(22).panic_at("serve.scheduler", Trigger::EveryNth(2)),
        || run_clients(&server, 4, Duration::from_secs(60)),
    );
    for replies in &all {
        // Only the scheduler faulted; replayed members run the fault-free
        // engine path, so every reply must be bit-identical to the oracle.
        assert_eq!(replies, &oracle);
    }
    let snapshot = server.metrics_snapshot();
    assert!(
        snapshot.counter("serve.batch_faults").unwrap_or(0) >= 1,
        "the storm never hit a shared pass"
    );
}

/// The full storm: seeded random panics and delays across every site at
/// once, under concurrency. Nothing hangs, nothing crashes, and every
/// reply is bit-identical or honestly typed.
#[test]
fn fixed_seed_storm_keeps_every_reply_bit_identical_or_typed() {
    let _guard = serial();
    let server = server(50_000);
    let oracle = oracle();

    // A probabilistic storm with a deterministic backbone: EveryNth rules
    // guarantee the storm fires (the shared-batch path only crosses
    // `serve.scheduler`, so pure low-probability rules can miss entirely),
    // while the wildcard probability rules spray every other seam.
    let plan = FaultPlan::new(0xC1D0)
        .panic_at("serve.scheduler", Trigger::EveryNth(2))
        .panic_at("engine.level", Trigger::EveryNth(4))
        .panic_at("*", Trigger::Probability(0.08))
        .delay_at("*", Duration::from_millis(1), Trigger::Probability(0.04));
    let all = with_plan(plan, || {
        let all = run_clients(&server, 6, Duration::from_secs(120));
        assert!(
                faults::total_injected() > 0,
                "the storm never fired; the test asserts nothing (hits: scheduler={} admission={} level={} shard={})",
                faults::hits("serve.scheduler"),
                faults::hits("serve.admission"),
                faults::hits("engine.level"),
                faults::hits("scan.shard"),
            );
        all
    });
    for replies in &all {
        assert_bit_identical_or_typed(replies, &oracle);
    }

    // The storm is over: the server still answers, bit-identically.
    let clean = run_clients(&server, 2, Duration::from_secs(60));
    for replies in &clean {
        assert_eq!(replies, &oracle, "the server did not recover post-storm");
    }
}

/// Replay determinism: the same seed against an identically built server
/// produces the identical reply transcript (single client, so per-site hit
/// order is deterministic).
#[test]
fn same_seed_storm_replays_the_identical_transcript() {
    let _guard = serial();
    let run = |seed: u64| -> Vec<Digest> {
        let server = server(20_000);
        with_plan(FaultPlan::storm(seed, 0.15, 0.0, Duration::ZERO), || {
            workload()
                .into_iter()
                .map(|(query, bounds)| digest(&server.submit(query, bounds)))
                .collect()
        })
    };
    let a = run(0xBEE5);
    let b = run(0xBEE5);
    assert_eq!(a, b, "a fixed seed must replay the identical storm");
}

/// Delay-only storms slow queries down but never change an answer: every
/// reply stays bit-identical and unflagged.
#[test]
fn delay_storm_never_degrades_an_answer() {
    let _guard = serial();
    let server = server(20_000);
    let oracle: Vec<Digest> = {
        let reference = session(20_000);
        workload()
            .iter()
            .map(|(q, b)| match reference.execute(q, b).unwrap() {
                QueryOutcome::Aggregate(a) => Digest::Aggregate {
                    value_bits: a.value.map(f64::to_bits),
                    level: a.level,
                    degraded: false,
                },
                QueryOutcome::Rows(r) => Digest::Rows {
                    returned: r.returned_rows(),
                    degraded: false,
                },
            })
            .collect()
    };

    let all = with_plan(
        FaultPlan::new(23).delay_at("*", Duration::from_millis(1), Trigger::EveryNth(3)),
        || run_clients(&server, 3, Duration::from_secs(60)),
    );
    for replies in &all {
        assert_eq!(replies, &oracle, "a delay must never change an answer");
    }
}
