//! Fixture-based lint tests: every lint has at least one case where it
//! fires, one where compliant code passes, and one where a finding is
//! suppressed with a reasoned `allow`. Fixtures are fed straight to
//! [`analyze`] with synthetic workspace-relative paths — lint scoping keys
//! off the path, so a fixture opts into a lint by choosing it.
//!
//! This file itself is never scanned (the analyzer excludes its own crate
//! precisely because these fixtures embed deliberate violations and
//! example suppressions), so markers may appear here literally.

use sciborq_analyzer::diag::{Diagnostic, Severity};
use sciborq_analyzer::{analyze, exit_code, AnalyzerInput};

fn run(files: &[(&str, &str)], readme: Option<&str>) -> Vec<Diagnostic> {
    let input = AnalyzerInput {
        files: files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect(),
        readme: readme.map(str::to_owned),
    };
    analyze(&input)
}

fn lint_count(diags: &[Diagnostic], lint: &str) -> usize {
    diags.iter().filter(|d| d.lint == lint).count()
}

// ---------------------------------------------------------------------------
// bounds_honesty
// ---------------------------------------------------------------------------

#[test]
fn bounds_honesty_fires_on_literal_flag() {
    let src = r#"
fn answer() -> Answer {
    Answer { error_bound_met: true, time_bound_met = false }
}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert_eq!(lint_count(&diags, "bounds_honesty"), 2, "{diags:?}");
    assert_eq!(exit_code(&diags, false), 2);
}

#[test]
fn bounds_honesty_passes_measured_flag_and_tests() {
    let src = r#"
fn answer(met: bool) -> Answer {
    Answer { error_bound_met: met, time_bound_met: time_ok() }
}
#[test]
fn literals_in_tests_are_fine() {
    let expected = Answer { error_bound_met: true };
}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert_eq!(lint_count(&diags, "bounds_honesty"), 0, "{diags:?}");
}

#[test]
fn bounds_honesty_suppressed_with_reason() {
    let src = r#"
fn answer() -> Answer {
    // analyzer:allow(bounds_honesty, reason = "base data is exact")
    Answer { error_bound_met: true }
}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(exit_code(&diags, false), 0);
}

// ---------------------------------------------------------------------------
// panic_path / panic_path_index
// ---------------------------------------------------------------------------

#[test]
fn panic_path_fires_in_scoped_file() {
    let src = r#"
pub fn hot(x: Option<u32>, v: &[u32]) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a == 0 { panic!("zero"); }
    a + b + v[0]
}
"#;
    let diags = run(&[("crates/columnar/src/kernels.rs", src)], None);
    assert_eq!(lint_count(&diags, "panic_path"), 3, "{diags:?}");
    assert_eq!(lint_count(&diags, "panic_path_index"), 1, "{diags:?}");
}

#[test]
fn panic_path_ignores_unscoped_files_and_tests() {
    let unscoped = run(
        &[(
            "crates/core/src/session.rs",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        )],
        None,
    );
    assert_eq!(lint_count(&unscoped, "panic_path"), 0, "{unscoped:?}");

    let in_test = r#"
pub fn hot(v: &[u32]) -> u32 { v.iter().sum() }
#[test]
fn asserting_with_unwrap_is_fine() {
    let x: Option<u32> = Some(1);
    assert_eq!(x.unwrap(), 1);
}
"#;
    let diags = run(&[("crates/columnar/src/kernels.rs", in_test)], None);
    assert_eq!(lint_count(&diags, "panic_path"), 0, "{diags:?}");
}

#[test]
fn panic_path_suppressed_with_reason() {
    let src = r#"
pub fn hot(x: Option<u32>, v: &[u32]) -> u32 {
    // analyzer:allow(panic_path, reason = "checked non-empty on entry")
    let a = x.unwrap();
    // analyzer:allow(panic_path_index, reason = "index bounded by caller")
    a + v[0]
}
"#;
    let diags = run(&[("crates/columnar/src/kernels.rs", src)], None);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_path_file_level_suppression_covers_whole_file() {
    let src = r#"
// analyzer:allow-file(panic_path_index, reason = "kernel tier, bounds pre-established")
pub fn hot(v: &[u32]) -> u32 { v[0] + v[1] }
"#;
    let diags = run(&[("crates/columnar/src/kernels.rs", src)], None);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// kernel_parity
// ---------------------------------------------------------------------------

#[test]
fn kernel_parity_fires_on_untested_kernel() {
    let src = "pub fn mask_novel(values: &[i64]) -> usize { values.len() }";
    let diags = run(&[("crates/columnar/src/kernels.rs", src)], None);
    assert_eq!(lint_count(&diags, "kernel_parity"), 1, "{diags:?}");
}

#[test]
fn kernel_parity_passes_when_test_references_kernel() {
    let kernel = "pub fn mask_novel(values: &[i64]) -> usize { values.len() }
pub fn scan_weighted_sum(values: &[f64]) -> f64 { 0.0 }";
    let test = "fn drives_both() { mask_novel(&[]); scan_weighted_sum(&[]); }";
    let diags = run(
        &[
            ("crates/columnar/src/kernels.rs", kernel),
            ("crates/columnar/tests/equivalence.rs", test),
        ],
        None,
    );
    assert_eq!(lint_count(&diags, "kernel_parity"), 0, "{diags:?}");

    // The bench oracle counts as a reference too.
    let diags = run(
        &[
            ("crates/columnar/src/kernels.rs", kernel),
            ("crates/bench/src/oracle.rs", test),
        ],
        None,
    );
    assert_eq!(lint_count(&diags, "kernel_parity"), 0, "{diags:?}");
}

#[test]
fn kernel_parity_ignores_private_and_non_kernel_fns() {
    let src = "fn mask_private(values: &[i64]) -> usize { values.len() }
pub fn plain_helper(values: &[i64]) -> usize { values.len() }";
    let diags = run(&[("crates/columnar/src/kernels.rs", src)], None);
    assert_eq!(lint_count(&diags, "kernel_parity"), 0, "{diags:?}");
}

#[test]
fn kernel_parity_suppressed_with_reason() {
    let src = r#"
// analyzer:allow(kernel_parity, reason = "exercised indirectly through multi_scan")
pub fn mask_novel(values: &[i64]) -> usize { values.len() }
"#;
    let diags = run(&[("crates/columnar/src/kernels.rs", src)], None);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// fault_discipline
// ---------------------------------------------------------------------------

#[test]
fn fault_discipline_fires_on_ungated_fault_point() {
    let src = r#"
fn evaluate(&self) {
    sciborq_telemetry::fault_point!("engine.level");
}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert_eq!(lint_count(&diags, "fault_discipline"), 1, "{diags:?}");
    assert_eq!(exit_code(&diags, false), 2);
}

#[test]
fn fault_discipline_passes_gated_fault_point_and_telemetry_home() {
    let gated = r#"
fn evaluate(&self) {
    #[cfg(feature = "fault-injection")]
    sciborq_telemetry::fault_point!("engine.level");
}
"#;
    // The telemetry crate defines the macro; its own sites are exempt.
    let home = r#"
pub fn fire(site: &str) {
    fault_point!("anything");
}
"#;
    let diags = run(
        &[
            ("crates/core/src/engine.rs", gated),
            ("crates/telemetry/src/faults.rs", home),
        ],
        None,
    );
    assert_eq!(lint_count(&diags, "fault_discipline"), 0, "{diags:?}");
}

#[test]
fn fault_discipline_fires_on_uncounted_catch_unwind() {
    let src = r#"
fn isolate(&self) -> Result<()> {
    let attempt = catch_unwind(AssertUnwindSafe(|| self.work()));
    attempt.unwrap_or_else(|_| Err(Error::Internal))
}
"#;
    let diags = run(&[("crates/core/src/execution.rs", src)], None);
    assert_eq!(lint_count(&diags, "fault_discipline"), 1, "{diags:?}");
}

#[test]
fn fault_discipline_passes_counted_catch_unwind_and_tests() {
    let src = r#"
fn isolate(&self) -> Result<()> {
    let attempt = catch_unwind(AssertUnwindSafe(|| self.work()));
    if attempt.is_err() {
        self.record_fault("scan.shard", FaultEventKind::Recovery);
    }
    Ok(())
}
fn watchdog(&self) {
    match catch_unwind(AssertUnwindSafe(|| run())) {
        Ok(()) => {}
        Err(_) => self.metrics.scheduler_restarts.inc(),
    }
}
#[test]
fn tests_may_catch_freely() {
    let _ = catch_unwind(|| panic!("boom"));
}
"#;
    let diags = run(&[("crates/core/src/execution.rs", src)], None);
    assert_eq!(lint_count(&diags, "fault_discipline"), 0, "{diags:?}");
}

#[test]
fn fault_discipline_suppressed_with_reason() {
    let src = r#"
fn isolate(&self) -> Result<()> {
    // analyzer:allow(fault_discipline, reason = "counted by the caller")
    let attempt = catch_unwind(AssertUnwindSafe(|| self.work()));
    attempt.unwrap_or_else(|_| Err(Error::Internal))
}
"#;
    let diags = run(&[("crates/core/src/execution.rs", src)], None);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// config_surface
// ---------------------------------------------------------------------------

#[test]
fn config_surface_fires_on_undocumented_field() {
    let src = r#"
pub struct SciborqConfig {
    pub alpha: f64,
}
"#;
    let diags = run(&[("crates/core/src/config.rs", src)], Some("no mention"));
    // Missing builder, missing validation, missing README mention.
    assert_eq!(lint_count(&diags, "config_surface"), 3, "{diags:?}");
}

#[test]
fn config_surface_passes_fully_covered_field() {
    let src = r#"
pub struct SciborqConfig {
    pub alpha: f64,
}
impl SciborqConfig {
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0) {
            return Err("alpha must be positive".to_owned());
        }
        Ok(())
    }
}
"#;
    let diags = run(
        &[("crates/core/src/config.rs", src)],
        Some("the `alpha` knob controls everything"),
    );
    assert_eq!(lint_count(&diags, "config_surface"), 0, "{diags:?}");
}

#[test]
fn config_surface_suppressed_with_reason() {
    let src = r#"
pub struct SciborqConfig {
    // analyzer:allow(config_surface, reason = "every seed is valid; nothing to validate or build")
    pub seed: u64,
}
"#;
    let diags = run(&[("crates/core/src/config.rs", src)], None);
    assert_eq!(lint_count(&diags, "config_surface"), 0, "{diags:?}");
}

// ---------------------------------------------------------------------------
// lock_order
// ---------------------------------------------------------------------------

const TWO_LOCKS: &str = r#"
use std::sync::Mutex;
pub struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}
"#;

#[test]
fn lock_order_fires_on_inverted_acquisition() {
    let src = format!(
        "{TWO_LOCKS}
impl S {{
    pub fn forward(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }}
    pub fn backward(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }}
}}
"
    );
    let diags = run(&[("crates/core/src/session.rs", &src)], None);
    assert!(lint_count(&diags, "lock_order") >= 1, "{diags:?}");
    assert_eq!(exit_code(&diags, false), 2);
}

#[test]
fn lock_order_fires_through_a_call_chain() {
    let src = format!(
        "{TWO_LOCKS}
impl S {{
    pub fn forward(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }}
    fn inner(&self) {{
        let ga = self.a.lock().unwrap();
    }}
    pub fn backward(&self) {{
        let gb = self.b.lock().unwrap();
        self.inner();
    }}
}}
"
    );
    let diags = run(&[("crates/core/src/session.rs", &src)], None);
    assert!(lint_count(&diags, "lock_order") >= 1, "{diags:?}");
    let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("via call")),
        "expected an inter-procedural edge in {msgs:?}"
    );
}

#[test]
fn lock_order_passes_consistent_order_and_scoped_guards() {
    let src = format!(
        "{TWO_LOCKS}
impl S {{
    pub fn forward(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }}
    pub fn also_forward(&self) {{
        {{
            let ga = self.a.lock().unwrap();
        }}
        // `ga` was dropped with its block: no a->b edge from here...
        let gb = self.b.lock().unwrap();
    }}
    pub fn b_alone(&self) {{
        // ...and a temp guard dies at the statement end.
        *self.b.lock().unwrap() += 1;
        let ga = self.a.lock().unwrap();
    }}
}}
"
    );
    let diags = run(&[("crates/core/src/session.rs", &src)], None);
    assert_eq!(lint_count(&diags, "lock_order"), 0, "{diags:?}");
}

#[test]
fn lock_order_fires_on_condvar_wait_while_holding_another_lock() {
    let src = r#"
use std::sync::{Condvar, Mutex};
pub struct S {
    a: Mutex<u32>,
    queue: Mutex<u32>,
    ready: Condvar,
}
impl S {
    pub fn bad_wait(&self) {
        let ga = self.a.lock().unwrap();
        let mut q = self.queue.lock().unwrap();
        q = self.ready.wait(q).unwrap();
    }
}
"#;
    let diags = run(&[("crates/serve/src/server.rs", src)], None);
    assert!(lint_count(&diags, "lock_order") >= 1, "{diags:?}");
    assert!(
        diags.iter().any(|d| d.message.contains("wait")),
        "{diags:?}"
    );
}

#[test]
fn lock_order_passes_leaf_lock_condvar_wait() {
    let src = r#"
use std::sync::{Condvar, Mutex};
pub struct S {
    queue: Mutex<u32>,
    ready: Condvar,
}
impl S {
    pub fn good_wait(&self) {
        let mut q = self.queue.lock().unwrap();
        q = self.ready.wait(q).unwrap();
    }
}
"#;
    let diags = run(&[("crates/serve/src/server.rs", src)], None);
    assert_eq!(lint_count(&diags, "lock_order"), 0, "{diags:?}");
}

#[test]
fn lock_order_suppressed_with_file_level_reason() {
    let src = format!(
        "// analyzer:allow-file(lock_order, reason = \"fixture: both orders are behind a mode flag and never race\")
{TWO_LOCKS}
impl S {{
    pub fn forward(&self) {{
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
    }}
    pub fn backward(&self) {{
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
    }}
}}
"
    );
    let diags = run(&[("crates/core/src/session.rs", &src)], None);
    assert_eq!(lint_count(&diags, "lock_order"), 0, "{diags:?}");
    assert_eq!(exit_code(&diags, false), 0);
}

// ---------------------------------------------------------------------------
// suppression machinery
// ---------------------------------------------------------------------------

#[test]
fn suppression_without_reason_is_an_error() {
    let src = r#"
fn answer() -> Answer {
    // analyzer:allow(bounds_honesty)
    Answer { error_bound_met: true }
}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert!(lint_count(&diags, "suppression") >= 1, "{diags:?}");
    // The malformed allow must not suppress the underlying finding.
    assert_eq!(lint_count(&diags, "bounds_honesty"), 1, "{diags:?}");
}

#[test]
fn suppression_of_unknown_lint_is_an_error() {
    let src = r#"
// analyzer:allow(made_up_lint, reason = "no such pass")
fn f() {}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert_eq!(lint_count(&diags, "suppression"), 1, "{diags:?}");
}

#[test]
fn unused_suppression_is_a_warning() {
    let src = r#"
// analyzer:allow(bounds_honesty, reason = "nothing here ever fires")
fn f() {}
"#;
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert_eq!(lint_count(&diags, "unused_suppression"), 1, "{diags:?}");
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    // Warnings gate only under --deny warnings.
    assert_eq!(exit_code(&diags, false), 0);
    assert_eq!(exit_code(&diags, true), 1);
}

#[test]
fn diagnostics_carry_file_and_line() {
    let src = "\nfn answer() -> Answer {\n    Answer { error_bound_met: true }\n}\n";
    let diags = run(&[("crates/core/src/engine.rs", src)], None);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "crates/core/src/engine.rs");
    assert_eq!(diags[0].line, 3);
    let rendered = diags[0].to_string();
    assert!(
        rendered.contains("crates/core/src/engine.rs:3") && rendered.contains("bounds_honesty"),
        "{rendered}"
    );
}
