//! Diagnostic types shared by every lint pass.

use std::fmt;

/// How severe a finding is. `--deny warnings` promotes warnings to a
/// non-zero exit; errors always fail the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, fails only under `--deny warnings`.
    Warning,
    /// Invariant violation: always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path, e.g. `crates/core/src/engine.rs`.
    pub file: String,
    /// 1-based line the finding anchors to (0 for whole-file findings).
    pub line: usize,
    /// Lint name, e.g. `lock_order`.
    pub lint: &'static str,
    /// Severity before any `--deny` promotion.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub fn error(
        file: impl Into<String>,
        line: usize,
        lint: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            lint,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    pub fn warning(
        file: impl Into<String>,
        line: usize,
        lint: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            lint,
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: [{}] {}",
            self.severity, self.file, self.line, self.lint, self.message
        )
    }
}

/// The closed set of lint names. Suppression comments must name one of
/// these; anything else is itself a diagnostic.
pub const LINT_NAMES: &[&str] = &[
    "lock_order",
    "bounds_honesty",
    "kernel_parity",
    "panic_path",
    "panic_path_index",
    "fault_discipline",
    "config_surface",
    "suppression",
    "unused_suppression",
];

/// True when `name` is a recognised lint.
pub fn is_known_lint(name: &str) -> bool {
    LINT_NAMES.contains(&name)
}
