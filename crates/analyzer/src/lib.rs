//! `sciborq-analyzer`: a dependency-free static checker for the
//! repo-specific invariants `rustc` and clippy cannot see.
//!
//! The binary walks `crates/*/src` (plus `crates/*/tests` for the
//! kernel-parity cross-reference), builds a token-level model of each
//! file, and runs six lint passes:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `lock_order` | lock acquisition order is acyclic; no waiting on a condvar while holding a second lock |
//! | `bounds_honesty` | `*_bound_met` flags are measured, never literal `true`/`false` |
//! | `kernel_parity` | every public scan kernel is referenced by an equivalence test or the bench oracle |
//! | `panic_path` / `panic_path_index` | no `unwrap`/`expect`/panics / raw indexing in hot-path and serving modules |
//! | `fault_discipline` | `fault_point!` sites are cfg-gated; every `catch_unwind` leaves a telemetry trace |
//! | `config_surface` | every `SciborqConfig` field has a builder, validation, and a README mention |
//!
//! Findings can be suppressed inline with a comment of the form
//! `analyzer:allow(<lint>, reason = "...")` directly after `//` — the
//! reason is mandatory, the suppression covers its own line plus the next,
//! and the `-file` variant covers the whole file. Suppressions that never
//! fire are themselves reported (`unused_suppression`).

pub mod diag;
pub mod lexer;
pub mod lints;
pub mod model;

use diag::{Diagnostic, Severity};
use model::FileModel;
use std::io;
use std::path::Path;

/// Everything one analyzer run looks at. `files` are
/// `(workspace-relative path, contents)` pairs; lint scoping keys off the
/// paths, so fixture tests can opt into a lint by choosing the path.
#[derive(Debug, Default)]
pub struct AnalyzerInput {
    pub files: Vec<(String, String)>,
    pub readme: Option<String>,
}

/// Run every lint pass over `input` and return the surviving diagnostics,
/// sorted by file and line. Suppressions are applied here; unused ones
/// come back as `unused_suppression` warnings.
pub fn analyze(input: &AnalyzerInput) -> Vec<Diagnostic> {
    let mut models: Vec<FileModel> = Vec::new();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for (path, src) in &input.files {
        let (m, d) = FileModel::build(path, src);
        models.push(m);
        // Malformed-suppression diagnostics bypass suppression filtering:
        // a broken allow must never mute itself.
        diags.extend(d);
    }

    let mut raw: Vec<Diagnostic> = Vec::new();
    raw.extend(lints::lock_order::run(&models));
    raw.extend(lints::bounds::run(&models));
    raw.extend(lints::kernel_parity::run(&models));
    raw.extend(lints::panic_path::run(&models));
    raw.extend(lints::fault_discipline::run(&models));
    raw.extend(lints::config_surface::run(&models, input.readme.as_deref()));

    for d in raw {
        let suppressed = models
            .iter_mut()
            .find(|m| m.path == d.file)
            .is_some_and(|m| m.suppress(d.lint, d.line));
        if !suppressed {
            diags.push(d);
        }
    }

    for m in &models {
        for a in &m.allows {
            if !a.used {
                diags.push(Diagnostic::warning(
                    &m.path,
                    a.line,
                    "unused_suppression",
                    format!(
                        "suppression of `{}` never matched a diagnostic; remove it",
                        a.lint
                    ),
                ));
            }
        }
    }

    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    diags
}

/// Load the workspace rooted at `root`: every `.rs` file under
/// `crates/*/src` and `crates/*/tests`, plus `README.md`. The analyzer
/// crate itself is excluded — its fixture tests embed deliberately-broken
/// snippets (and suppression examples) that must not be mistaken for
/// workspace code.
pub fn load_workspace(root: &Path) -> io::Result<AnalyzerInput> {
    let mut files: Vec<(String, String)> = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        if dir.file_name().is_some_and(|n| n == "analyzer") {
            continue;
        }
        for sub in ["src", "tests"] {
            let base = dir.join(sub);
            if base.is_dir() {
                collect_rs(root, &base, &mut files)?;
            }
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let readme = std::fs::read_to_string(root.join("README.md")).ok();
    Ok(AnalyzerInput { files, readme })
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Exit status for a diagnostic set under the given `--deny` policy.
pub fn exit_code(diags: &[Diagnostic], deny_warnings: bool) -> i32 {
    if diags.iter().any(|d| d.severity == Severity::Error) {
        2
    } else if deny_warnings && !diags.is_empty() {
        1
    } else {
        0
    }
}
