//! Per-file source model: tokens plus the line-level facts every lint
//! pass needs — which lines are test-only, where functions begin and end,
//! which struct fields are locks, and which suppression comments exist.

use crate::diag::{is_known_lint, Diagnostic};
use crate::lexer::{lex, Tok};

/// Lock-ish field kinds recognised by the lock-order pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

/// A function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body `{ ... }` (inclusive of both braces),
    /// or `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// True when the function sits inside a `#[cfg(test)]`/`#[test]` span.
    pub in_test: bool,
}

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment sits on.
    pub line: usize,
    /// Lint it suppresses.
    pub lint: String,
    /// `allow-file` form: applies to the whole file.
    pub file_level: bool,
    /// Set when a diagnostic was actually absorbed; unused suppressions
    /// are themselves reported.
    pub used: bool,
}

/// Everything the lints need to know about one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream (comments and literal contents already stripped).
    pub toks: Vec<Tok>,
    /// `test_lines[line - 1]` is true when the line is inside a
    /// `#[cfg(test)]` module or `#[test]` function.
    pub test_lines: Vec<bool>,
    /// Function items, in source order.
    pub fns: Vec<FnSpan>,
    /// Suppression comments, in source order.
    pub allows: Vec<Allow>,
    /// `(field name, kind)` for every struct field of a lock type.
    pub lock_fields: Vec<(String, LockKind)>,
}

impl FileModel {
    /// Lex and index one file. Malformed suppression comments surface as
    /// diagnostics rather than panics.
    pub fn build(path: &str, src: &str) -> (FileModel, Vec<Diagnostic>) {
        let toks = lex(src);
        let test_lines = mark_test_lines(&toks, src.lines().count());
        let fns = collect_fns(&toks, &test_lines);
        let lock_fields = collect_lock_fields(&toks);
        let (allows, diags) = parse_allows(path, src);
        (
            FileModel {
                path: path.to_owned(),
                toks,
                test_lines,
                fns,
                allows,
                lock_fields,
            },
            diags,
        )
    }

    /// True when `line` (1-based) is inside a test-only region.
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Attempt to absorb a diagnostic for `lint` at `line`. A suppression
    /// covers its own line and the line directly below it; `allow-file`
    /// covers the whole file. Marks the matching suppression as used.
    pub fn suppress(&mut self, lint: &str, line: usize) -> bool {
        for a in &mut self.allows {
            if a.lint != lint {
                continue;
            }
            if a.file_level || a.line == line || a.line + 1 == line {
                a.used = true;
                return true;
            }
        }
        false
    }
}

/// Mark every line covered by a `#[test]` function or `#[cfg(test)]`
/// item (module, fn, impl) as test-only.
fn mark_test_lines(toks: &[Tok], line_count: usize) -> Vec<bool> {
    let mut test = vec![false; line_count];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_line = toks[i].line;
            // Walk the attribute, tracking bracket nesting.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                // Find the annotated item's body: the first `{` before a
                // bare `;` ends the item.
                let mut k = j;
                let mut end_line = attr_line;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        let close = match_brace(toks, k);
                        end_line = toks[close.min(toks.len() - 1)].line;
                        break;
                    }
                    if toks[k].is_punct(';') {
                        end_line = toks[k].line;
                        break;
                    }
                    k += 1;
                }
                for l in attr_line..=end_line.min(line_count) {
                    if l >= 1 {
                        test[l - 1] = true;
                    }
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    test
}

/// Given the index of an opening `{`, return the index of its matching
/// `}` (or the last token if unbalanced).
pub fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn collect_fns(toks: &[Tok], test_lines: &[bool]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") {
            if let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) {
                let line = toks[i].line;
                // Scan the signature for the body `{` or a declaration `;`.
                let mut k = i + 2;
                let mut body = None;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        body = Some((k, match_brace(toks, k)));
                        break;
                    }
                    if toks[k].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                let in_test = line >= 1 && test_lines.get(line - 1).copied().unwrap_or(false);
                fns.push(FnSpan {
                    name: name.to_owned(),
                    line,
                    body,
                    in_test,
                });
                i = k;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// Parse struct definitions and record every field whose type mentions
/// `Mutex<`, `RwLock<` or `Condvar`. std and parking_lot spell these the
/// same, so no import resolution is needed.
fn collect_lock_fields(toks: &[Tok]) -> Vec<(String, LockKind)> {
    let mut out: Vec<(String, LockKind)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        // Skip the name and generics; find the body `{`, or bail on tuple
        // (`(`) and unit (`;`) structs. `->` inside generic bounds must
        // not close an angle bracket.
        let mut j = i + 1;
        let mut angle = 0isize;
        let body_open = loop {
            let Some(t) = toks.get(j) else { break None };
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                if j > 0 && !toks[j - 1].is_punct('-') {
                    angle -= 1;
                }
            } else if angle == 0 {
                if t.is_punct('{') {
                    break Some(j);
                }
                if t.is_punct('(') || t.is_punct(';') {
                    break None;
                }
            }
            j += 1;
        };
        let Some(open) = body_open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(toks, open);
        // Fields live at brace depth 1 within the struct body.
        let mut k = open + 1;
        while k < close {
            let is_field = toks[k].ident().is_some()
                && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && !toks[k].is_ident("pub");
            if is_field {
                let field = toks[k].ident().unwrap_or_default().to_owned();
                // Type region: until `,` at field level or the struct `}`.
                let mut t = k + 2;
                let mut depth = (0isize, 0isize, 0isize); // angle, paren, brace
                let mut kind: Option<LockKind> = None;
                while t < close {
                    let tok = &toks[t];
                    if tok.is_punct('<') {
                        depth.0 += 1;
                    } else if tok.is_punct('>') {
                        if !toks[t - 1].is_punct('-') {
                            depth.0 -= 1;
                        }
                    } else if tok.is_punct('(') {
                        depth.1 += 1;
                    } else if tok.is_punct(')') {
                        depth.1 -= 1;
                    } else if tok.is_punct('{') {
                        depth.2 += 1;
                    } else if tok.is_punct('}') {
                        depth.2 -= 1;
                    } else if tok.is_punct(',') && depth == (0, 0, 0) {
                        break;
                    } else if kind.is_none() {
                        if tok.is_ident("Mutex") && toks.get(t + 1).is_some_and(|n| n.is_punct('<'))
                        {
                            kind = Some(LockKind::Mutex);
                        } else if tok.is_ident("RwLock")
                            && toks.get(t + 1).is_some_and(|n| n.is_punct('<'))
                        {
                            kind = Some(LockKind::RwLock);
                        } else if tok.is_ident("Condvar") {
                            kind = Some(LockKind::Condvar);
                        }
                    }
                    t += 1;
                }
                if let Some(kind) = kind {
                    if !out.iter().any(|(f, _)| f == &field) {
                        out.push((field, kind));
                    }
                }
                k = t + 1;
            } else {
                k += 1;
            }
        }
        i = close + 1;
    }
    out
}

/// Parse `analyzer:allow` comments out of the raw source. The marker must
/// directly follow `//` (only whitespace between), so prose that merely
/// mentions the syntax in a doc comment (`///`, `//!`) never matches.
fn parse_allows(path: &str, src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
    // Built by concatenation so the analyzer can never match this line of
    // its own source.
    let needle: &str = concat!("analyzer:", "allow");
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let Some(pos) = raw.find("//") else { continue };
        let after = raw[pos + 2..].trim_start();
        if !after.starts_with(needle) {
            continue;
        }
        let rest = &after[needle.len()..];
        let (file_level, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let malformed = |diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic::error(
                path,
                line,
                "suppression",
                format!("malformed suppression: expected `// {needle}(<lint>, reason = \"...\")`"),
            ));
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            malformed(&mut diags);
            continue;
        };
        let rest = rest.trim_start();
        let lint_len = rest
            .find(|c: char| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(rest.len());
        let lint = &rest[..lint_len];
        if lint.is_empty() {
            malformed(&mut diags);
            continue;
        }
        if !is_known_lint(lint) {
            diags.push(Diagnostic::error(
                path,
                line,
                "suppression",
                format!("unknown lint `{lint}` in suppression"),
            ));
            continue;
        }
        let rest = rest[lint_len..].trim_start();
        let Some(rest) = rest.strip_prefix(',') else {
            diags.push(Diagnostic::error(
                path,
                line,
                "suppression",
                format!("suppression of `{lint}` requires a reason: `reason = \"...\"`"),
            ));
            continue;
        };
        let rest = rest.trim_start();
        let reason_ok = rest
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.split_once('"'))
            .is_some_and(|(reason, tail)| {
                !reason.trim().is_empty() && tail.trim_start().starts_with(')')
            });
        if !reason_ok {
            diags.push(Diagnostic::error(
                path,
                line,
                "suppression",
                format!("suppression of `{lint}` requires a non-empty reason string"),
            ));
            continue;
        }
        allows.push(Allow {
            line,
            lint: lint.to_owned(),
            file_level,
            used: false,
        });
    }
    (allows, diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n";
        let (m, d) = FileModel::build("crates/x/src/a.rs", src);
        assert!(d.is_empty());
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(4));
        assert!(!m.is_test_line(6));
        let helper = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
        assert!(!m.fns.iter().find(|f| f.name == "live").unwrap().in_test);
    }

    #[test]
    fn lock_fields_are_collected() {
        let src = "struct S {\n    pub queue: Mutex<Vec<u8>>,\n    map: RwLock<u32>,\n    cv: Condvar,\n    plain: usize,\n}\n";
        let (m, _) = FileModel::build("crates/x/src/a.rs", src);
        assert_eq!(
            m.lock_fields,
            vec![
                ("queue".to_owned(), LockKind::Mutex),
                ("map".to_owned(), LockKind::RwLock),
                ("cv".to_owned(), LockKind::Condvar),
            ]
        );
    }

    #[test]
    fn allow_requires_reason() {
        let marker = concat!("analyzer:", "allow");
        let good = format!("// {marker}(panic_path, reason = \"checked above\")\nx();\n");
        let (m, d) = FileModel::build("crates/x/src/a.rs", &good);
        assert!(d.is_empty());
        assert_eq!(m.allows.len(), 1);

        let bad = format!("// {marker}(panic_path)\nx();\n");
        let (_, d) = FileModel::build("crates/x/src/a.rs", &bad);
        assert_eq!(d.len(), 1, "missing reason must be a diagnostic");

        let unknown = format!("// {marker}(no_such_lint, reason = \"x\")\n");
        let (_, d) = FileModel::build("crates/x/src/a.rs", &unknown);
        assert!(d[0].message.contains("unknown lint"));
    }

    #[test]
    fn doc_comment_prose_does_not_match() {
        let marker = concat!("analyzer:", "allow");
        let src = format!("/// Use `// {marker}(panic_path, ...)` to suppress.\nfn f() {{}}\n");
        let (m, d) = FileModel::build("crates/x/src/a.rs", &src);
        assert!(d.is_empty());
        assert!(m.allows.is_empty());
    }

    #[test]
    fn suppress_covers_own_and_next_line() {
        let marker = concat!("analyzer:", "allow");
        let src = format!("// {marker}(panic_path, reason = \"fine\")\nx.unwrap();\n");
        let (mut m, _) = FileModel::build("crates/x/src/a.rs", &src);
        assert!(m.suppress("panic_path", 2));
        assert!(!m.suppress("panic_path", 4));
        assert!(!m.suppress("lock_order", 2));
        assert!(m.allows[0].used);
    }
}
