//! CLI for the workspace invariant checker.
//!
//! ```text
//! sciborq-analyzer [--root PATH] [--deny warnings] [--report PATH]
//! ```
//!
//! Exit codes: 0 clean, 1 warnings under `--deny warnings`, 2 errors
//! (always fatal), 3 usage or I/O failure.

use sciborq_analyzer::diag::Severity;
use sciborq_analyzer::{analyze, exit_code, load_workspace};
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let mut root = PathBuf::from(".");
    let mut deny_warnings = false;
    let mut report: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--deny" => match args.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                _ => return usage("--deny takes the value `warnings`"),
            },
            "--report" => match args.next() {
                Some(p) => report = Some(PathBuf::from(p)),
                None => return usage("--report requires a path"),
            },
            "--help" | "-h" => {
                println!("usage: sciborq-analyzer [--root PATH] [--deny warnings] [--report PATH]");
                return 0;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // `cargo run -p sciborq-analyzer` runs from the workspace root; when
    // invoked elsewhere, walk up until a directory with `crates/` appears.
    if !root.join("crates").is_dir() {
        let mut cur = root.canonicalize().unwrap_or(root.clone());
        while !cur.join("crates").is_dir() {
            let Some(parent) = cur.parent() else {
                eprintln!(
                    "error: no `crates/` directory at or above {}",
                    root.display()
                );
                return 3;
            };
            cur = parent.to_path_buf();
        }
        root = cur;
    }

    let input = match load_workspace(&root) {
        Ok(input) => input,
        Err(err) => {
            eprintln!(
                "error: failed to read workspace at {}: {err}",
                root.display()
            );
            return 3;
        }
    };
    let diags = analyze(&input);

    let mut out = String::new();
    for d in &diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "sciborq-analyzer: {} file(s) analyzed, {errors} error(s), {warnings} warning(s)\n",
        input.files.len(),
    ));
    print!("{out}");

    if let Some(path) = report {
        if let Err(err) = std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes()))
        {
            eprintln!("error: failed to write report to {}: {err}", path.display());
            return 3;
        }
    }

    exit_code(&diags, deny_warnings)
}

fn usage(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    eprintln!("usage: sciborq-analyzer [--root PATH] [--deny warnings] [--report PATH]");
    3
}
