//! A hand-rolled Rust lexer: just enough tokenization for the lint passes.
//!
//! The analyzer deliberately avoids `syn`/`proc-macro2` (the vendored set
//! has neither), so lints operate on a token stream produced here. The
//! lexer's job is strictly to get *line-accurate* identifiers and
//! punctuation with comments, strings, char literals and lifetimes out of
//! the way — it does not attempt to parse Rust. Everything downstream
//! (test-region tracking, function spans, lock-guard simulation) is built
//! on this stream.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `let`, `predicate_set`, ...).
    Ident(String),
    /// A single punctuation character (`{`, `.`, `;`, ...).
    Punct(char),
    /// A literal whose content the lints never inspect: strings, chars,
    /// numbers. Blanked so that e.g. an `"unwrap()"` inside a string can
    /// never trip the panic-path lint.
    Lit,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line number.
    pub line: usize,
    /// Token payload.
    pub kind: TokKind,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize Rust source. Comments are skipped, string/char/number literals
/// collapse into [`TokKind::Lit`], lifetimes are dropped entirely (so `'a`
/// never looks like an unterminated char), and raw strings (`r#"…"#`) are
/// handled with arbitrary `#` depth. The lexer never fails: malformed
/// input degrades to best-effort tokens, which is the right trade-off for
/// a lint tool that must not crash on the code it polices.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let start_line = line;
            i += 1;
            while i < b.len() {
                match b[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                line: start_line,
                kind: TokKind::Lit,
            });
        } else if c == '\'' {
            // Lifetime (`'a`, `'static`) vs char literal (`'x'`, `'\n'`).
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            if next == Some('\\') || after == Some('\'') {
                // Char literal: skip to the closing quote, honouring escapes.
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    line,
                    kind: TokKind::Lit,
                });
            } else {
                // Lifetime or loop label: consume and drop.
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
            }
        } else if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            let ident: String = b[start..i].iter().collect();
            // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#.
            let is_raw_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
            if is_raw_prefix && matches!(b.get(i), Some('"') | Some('#')) {
                let mut hashes = 0usize;
                while b.get(i) == Some(&'#') {
                    hashes += 1;
                    i += 1;
                }
                if b.get(i) == Some(&'"') {
                    let start_line = line;
                    i += 1;
                    if hashes == 0 && ident.starts_with('b') && !ident.starts_with("br") {
                        // b"…": ordinary escapes apply.
                        while i < b.len() {
                            match b[i] {
                                '\\' => i += 2,
                                '"' => {
                                    i += 1;
                                    break;
                                }
                                '\n' => {
                                    line += 1;
                                    i += 1;
                                }
                                _ => i += 1,
                            }
                        }
                    } else {
                        // Raw string: ends at `"` followed by `hashes` #s.
                        while let Some(&ch) = b.get(i) {
                            if ch == '\n' {
                                line += 1;
                                i += 1;
                            } else if ch == '"' {
                                let mut k = 0usize;
                                while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                                    k += 1;
                                }
                                i += 1;
                                if k == hashes {
                                    i += hashes;
                                    break;
                                }
                            } else {
                                i += 1;
                            }
                        }
                    }
                    toks.push(Tok {
                        line: start_line,
                        kind: TokKind::Lit,
                    });
                    continue;
                }
                // A bare `r#ident` raw identifier: fall through, keep ident.
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
            }
            toks.push(Tok {
                line,
                kind: TokKind::Ident(ident),
            });
        } else if c.is_ascii_digit() {
            // Number: digits, underscores, hex/alpha suffixes, one decimal
            // point (only when followed by a digit, so `1..5` stays a
            // range) and exponent signs.
            i += 1;
            while i < b.len() {
                let d = b[i];
                let continues = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.'
                        && b.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && b.get(i.wrapping_sub(1)) != Some(&'.'))
                    || ((d == '+' || d == '-')
                        && matches!(b.get(i.wrapping_sub(1)), Some('e') | Some('E')));
                if !continues {
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                line,
                kind: TokKind::Lit,
            });
        } else {
            toks.push(Tok {
                line,
                kind: TokKind::Punct(c),
            });
            i += 1;
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r#"
            // commented.unwrap()
            let x = "quoted.unwrap()"; /* block .unwrap() */
            y.unwrap();
        "#;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x", "y", "unwrap"]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_owned()));
        assert!(!ids.iter().any(|s| s == "a"));
    }

    #[test]
    fn char_literals_and_ranges() {
        let toks = lex("let c = 'x'; let r = 1..5; let f = 1.5e-3;");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 4, "'x', 1, 5, 1.5e-3");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ids = idents(r##"let s = r#"inner "quote" .unwrap()"#; s.len();"##);
        assert_eq!(ids, vec!["let", "s", "s", "len"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
