//! Bounds-honesty lint: `time_bound_met` / `*_bound_met` fields must be
//! computed from measurements, never hard-coded. PR 3 fixed three bugs of
//! exactly this shape — a literal `true` makes the engine claim it met a
//! runtime or quality bound it never checked, which breaks the paper's
//! core contract. The lint flags literal `true`/`false` in struct-init
//! (`field: true`) and assignment (`field = true`) position, outside
//! tests.

use crate::diag::Diagnostic;
use crate::model::FileModel;

/// Files where bound flags are produced.
fn in_scope(path: &str) -> bool {
    matches!(
        path,
        "crates/core/src/engine.rs" | "crates/core/src/execution.rs" | "crates/core/src/batch.rs"
    ) || path.starts_with("crates/serve/src/")
}

pub fn run(models: &[FileModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in models {
        if !in_scope(&m.path) {
            continue;
        }
        for (i, t) in m.toks.iter().enumerate() {
            let Some(field) = t.ident() else { continue };
            if !field.ends_with("_bound_met") || m.is_test_line(t.line) {
                continue;
            }
            // `field: true` (struct init) or `field = true` (assignment).
            // Comparison operators (`==`, `!=`, `>=`, `<=`) must not
            // match, so `=` may be neither preceded nor followed by
            // another operator character.
            let Some(sep) = m.toks.get(i + 1) else {
                continue;
            };
            let is_sep = sep.is_punct(':')
                || (sep.is_punct('=') && !m.toks.get(i + 2).is_some_and(|n| n.is_punct('=')));
            if !is_sep {
                continue;
            }
            let value_idx = i + 2;
            let is_literal_bool = m
                .toks
                .get(value_idx)
                .and_then(|v| v.ident())
                .is_some_and(|v| v == "true" || v == "false");
            // Require a terminator after the literal so `field:
            // true_branch()` style expressions never match.
            let terminated = m.toks.get(value_idx + 1).is_some_and(|n| {
                n.is_punct(',') || n.is_punct(';') || n.is_punct('}') || n.is_punct(')')
            });
            if is_literal_bool && terminated {
                diags.push(Diagnostic::error(
                    &m.path,
                    t.line,
                    "bounds_honesty",
                    format!(
                        "literal boolean assigned to `{field}`; bound flags must be \
                         measured (e.g. via `time_ok()`), not hard-coded"
                    ),
                ));
            }
        }
    }
    diags
}
