//! Kernel-parity lint: every public scan entry point in the columnar
//! crate must be exercised by an equivalence test (under
//! `crates/columnar/tests/`) or the bench oracle cross-check
//! (`crates/bench/src/`). The proptest/oracle contract has repeatedly
//! caught real bugs in chunked and partitioned kernels; a kernel nobody
//! cross-checks is a kernel whose bit-parity with the scalar oracle can
//! silently rot.

use crate::diag::Diagnostic;
use crate::model::FileModel;
use std::collections::HashSet;

/// Names that count as scan entry points. `contains("_weighted")` rather
/// than a suffix match because `filter_weighted_moments` puts the marker
/// mid-name.
fn is_kernel_name(name: &str) -> bool {
    name.starts_with("mask_")
        || name.ends_with("_partitioned")
        || name.contains("_weighted")
        || name == "multi_scan"
}

/// True when the `fn` keyword at token index `fn_idx` belongs to a `pub`
/// item (`pub fn`, `pub(crate) fn`, ...).
fn is_pub_fn(m: &FileModel, fn_idx: usize) -> bool {
    let mut k = fn_idx;
    let mut steps = 0usize;
    while k > 0 && steps < 6 {
        k -= 1;
        steps += 1;
        let t = &m.toks[k];
        if t.is_ident("pub") {
            return true;
        }
        // Visibility qualifiers `(crate)` / `(super)` sit between `pub`
        // and `fn`; anything else ends the item prefix.
        let qualifier = t.is_punct('(')
            || t.is_punct(')')
            || t.is_ident("crate")
            || t.is_ident("super")
            || t.is_ident("unsafe")
            || t.is_ident("const");
        if !qualifier {
            return false;
        }
    }
    false
}

pub fn run(models: &[FileModel]) -> Vec<Diagnostic> {
    // Every identifier mentioned by the test suites or the bench oracle.
    let mut referenced: HashSet<&str> = HashSet::new();
    for m in models {
        if m.path.starts_with("crates/columnar/tests/") || m.path.starts_with("crates/bench/src/") {
            referenced.extend(m.toks.iter().filter_map(|t| t.ident()));
        }
    }

    let mut diags = Vec::new();
    for m in models {
        if !m.path.starts_with("crates/columnar/src/") {
            continue;
        }
        let mut seen_in_file: HashSet<&str> = HashSet::new();
        for (i, t) in m.toks.iter().enumerate() {
            if !t.is_ident("fn") || m.is_test_line(t.line) {
                continue;
            }
            let Some(name) = m.toks.get(i + 1).and_then(|n| n.ident()) else {
                continue;
            };
            if !is_kernel_name(name) || !is_pub_fn(m, i) || !seen_in_file.insert(name) {
                continue;
            }
            if !referenced.contains(name) {
                diags.push(Diagnostic::error(
                    &m.path,
                    m.toks[i + 1].line,
                    "kernel_parity",
                    format!(
                        "public kernel `{name}` is not referenced by any equivalence test \
                         under crates/columnar/tests/ or the bench oracle"
                    ),
                ));
            }
        }
    }
    diags
}
