//! Lock-order lint: extracts `Mutex`/`RwLock`/`Condvar` acquisition
//! sequences per function in `serve` and `core`, builds an
//! inter-procedural acquisition graph over the call edges it can resolve,
//! and flags (a) acquisition cycles — the classic AB/BA deadlock shape,
//! (b) re-acquiring a lock class already held, and (c) waiting on a
//! condvar while holding a second lock. It also warns on blocking calls
//! (`sleep`, `.recv()`, `.join()`) made while any lock is held.
//!
//! The analysis is a token-level simulation, not a type check. Guards are
//! tracked by brace depth: a `let`-bound guard lives until its binding
//! block closes or an explicit `drop(guard)`; a statement temporary (e.g.
//! an `if let` scrutinee) dies at the next `;` at its own depth or when a
//! `}` returns to the depth it was born at. Receivers resolve against
//! struct fields of lock type plus local aliases for catalog table
//! handles (`let h = ...catalog.table(...)`, whose guards share the
//! `table` class). Known gap: acquisitions inside closure bodies whose
//! receiver is the closure parameter (`.map(|h| h.read())`) are invisible
//! — the receiver is unresolvable by name.

use crate::diag::Diagnostic;
use crate::model::{FileModel, LockKind};
use std::collections::{HashMap, HashSet, VecDeque};

fn in_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/") || path.starts_with("crates/core/src/")
}

/// One lock-acquisition edge: `to` acquired while `from` was held.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: usize,
    func: String,
    /// `Some(callee)` when the acquisition happens transitively through a
    /// resolved call rather than at this line directly.
    via: Option<String>,
}

/// A call site, with the lock classes held at the moment of the call.
#[derive(Debug, Clone)]
struct CallSite {
    callee: String,
    held: Vec<String>,
    file: String,
    line: usize,
    func: String,
}

/// Per-function summary from the guard simulation.
#[derive(Debug, Default)]
struct FnFacts {
    acquires: HashSet<String>,
    calls: Vec<CallSite>,
}

#[derive(Debug)]
struct Guard {
    class: String,
    var: Option<String>,
    depth: isize,
    temp: bool,
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "let", "fn", "impl",
    "struct", "enum", "where", "unsafe", "else", "break", "continue", "use", "pub", "mod", "type",
    "const", "static", "ref", "mut", "dyn",
];

pub fn run(models: &[FileModel]) -> Vec<Diagnostic> {
    let scoped: Vec<&FileModel> = models.iter().filter(|m| in_scope(&m.path)).collect();

    // Lock classes: every struct field of lock type across the scope.
    let mut fields: HashMap<String, LockKind> = HashMap::new();
    for m in &scoped {
        for (name, kind) in &m.lock_fields {
            fields.entry(name.clone()).or_insert(*kind);
        }
    }

    let mut diags = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut facts: Vec<(String, FnFacts)> = Vec::new();

    for m in &scoped {
        for f in &m.fns {
            if f.in_test {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            let ff = simulate(m, &f.name, open, close, &fields, &mut edges, &mut diags);
            facts.push((f.name.clone(), ff));
        }
    }

    // Name-based call resolution: only unambiguous names participate.
    // Two in-scope functions sharing a name would force a lossy merge, so
    // those call edges are skipped instead of guessed.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, (name, _)) in facts.iter().enumerate() {
        by_name.entry(name.as_str()).or_default().push(i);
    }
    let unique: HashMap<&str, usize> = by_name
        .iter()
        .filter(|(_, v)| v.len() == 1)
        .map(|(k, v)| (*k, v[0]))
        .collect();

    // Transitive acquire sets over the resolved call graph, to fixpoint.
    let mut acq_star: Vec<HashSet<String>> =
        facts.iter().map(|(_, f)| f.acquires.clone()).collect();
    loop {
        let mut changed = false;
        for i in 0..facts.len() {
            for call in &facts[i].1.calls {
                if let Some(&j) = unique.get(call.callee.as_str()) {
                    if j != i {
                        let add: Vec<String> = acq_star[j]
                            .iter()
                            .filter(|c| !acq_star[i].contains(*c))
                            .cloned()
                            .collect();
                        if !add.is_empty() {
                            acq_star[i].extend(add);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Inter-procedural edges: held locks at a call site order before
    // everything the callee (transitively) acquires.
    for (_, ff) in &facts {
        for call in &ff.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(&j) = unique.get(call.callee.as_str()) else {
                continue;
            };
            for to in &acq_star[j] {
                for from in &call.held {
                    edges.push(Edge {
                        from: from.clone(),
                        to: to.clone(),
                        file: call.file.clone(),
                        line: call.line,
                        func: call.func.clone(),
                        via: Some(call.callee.clone()),
                    });
                }
            }
        }
    }

    // Cycle detection over lock classes. An edge participates in a cycle
    // when its target can reach its source (self-edges trivially do).
    let mut adj: HashMap<&str, HashSet<&str>> = HashMap::new();
    for e in &edges {
        adj.entry(e.to.as_str()).or_default();
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut reported: HashSet<(String, String)> = HashSet::new();
    for e in &edges {
        if !reported.insert((e.from.clone(), e.to.clone())) {
            continue;
        }
        if e.from == e.to {
            diags.push(Diagnostic::error(
                &e.file,
                e.line,
                "lock_order",
                format!(
                    "in `{}`: `{}` acquired while `{}` is already held{} — \
                     self-deadlock risk for non-reentrant locks",
                    e.func,
                    e.to,
                    e.from,
                    via(&e.via),
                ),
            ));
        } else if let Some(path) = find_path(&adj, &e.to, &e.from) {
            let cycle = std::iter::once(e.from.as_str())
                .chain(path.iter().copied())
                .collect::<Vec<_>>()
                .join(" -> ");
            diags.push(Diagnostic::error(
                &e.file,
                e.line,
                "lock_order",
                format!(
                    "in `{}`: `{}` acquired while holding `{}`{}, but the reverse \
                     order also occurs — acquisition cycle {cycle} -> {}",
                    e.func,
                    e.to,
                    e.from,
                    via(&e.via),
                    e.from,
                ),
            ));
        }
    }
    diags
}

fn via(v: &Option<String>) -> String {
    match v {
        Some(callee) => format!(" (via call to `{callee}`)"),
        None => String::new(),
    }
}

/// BFS path from `from` to `to` over the acquisition graph.
fn find_path<'a>(
    adj: &HashMap<&'a str, HashSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: HashMap<&str, &str> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: HashSet<&str> = HashSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = prev.get(cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

/// Walk one function body, tracking held guards by brace depth.
#[allow(clippy::too_many_arguments)]
fn simulate(
    m: &FileModel,
    func: &str,
    open: usize,
    close: usize,
    fields: &HashMap<String, LockKind>,
    edges: &mut Vec<Edge>,
    diags: &mut Vec<Diagnostic>,
) -> FnFacts {
    let mut ff = FnFacts::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut aliases: HashMap<String, String> = HashMap::new();
    let mut pending_let: Option<String> = None;
    // Guard-count snapshot at a plain `if`/`while` condition: temporaries
    // born in the condition die before the block runs.
    let mut cond_marker: Option<usize> = None;
    let mut depth: isize = 0;

    let toks = &m.toks;
    let mut i = open;
    while i <= close && i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            if let Some(mark) = cond_marker.take() {
                while guards.len() > mark && guards.last().is_some_and(|g| g.temp) {
                    guards.pop();
                }
            }
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            // A temporary dies when `}` returns to (or below) the depth it
            // was born at — the end of its `if let`/`match` statement. A
            // `let`-bound guard dies only when its binding block closes.
            guards.retain(|g| {
                if g.temp {
                    g.depth < depth
                } else {
                    g.depth <= depth
                }
            });
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            guards.retain(|g| !(g.temp && g.depth == depth));
            pending_let = None;
            cond_marker = None;
            i += 1;
            continue;
        }
        let Some(id) = t.ident() else {
            i += 1;
            continue;
        };
        let next_is = |k: usize, c: char| toks.get(i + k).is_some_and(|n| n.is_punct(c));
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');

        match id {
            "let" => {
                // Simple `let [mut] name =`/`: ty =` bindings carry the
                // guard; pattern bindings (`let Some(x) = ...`) leave the
                // acquisition a statement temporary, which matches how
                // `if let` scrutinee temporaries actually live.
                let mut k = i + 1;
                if toks.get(k).is_some_and(|n| n.is_ident("mut")) {
                    k += 1;
                }
                let name = toks.get(k).and_then(|n| n.ident());
                let simple = toks
                    .get(k + 1)
                    .is_some_and(|n| n.is_punct('=') || n.is_punct(':'));
                pending_let = match (name, simple) {
                    (Some(n), true) => Some(n.to_owned()),
                    _ => None,
                };
            }
            "if" | "while" if !toks.get(i + 1).is_some_and(|n| n.is_ident("let")) => {
                cond_marker = Some(guards.len());
            }
            "drop" if next_is(1, '(') => {
                if let Some(v) = toks.get(i + 2).and_then(|n| n.ident()) {
                    if next_is(3, ')') {
                        if let Some(pos) = guards.iter().rposition(|g| g.var.as_deref() == Some(v))
                        {
                            guards.remove(pos);
                        }
                    }
                }
            }
            "lock" | "read" | "write" if prev_dot && next_is(1, '(') && next_is(2, ')') => {
                let receiver = i.checked_sub(2).and_then(|p| toks[p].ident());
                let class = receiver.and_then(|r| {
                    if fields.contains_key(r) {
                        Some(r.to_owned())
                    } else {
                        aliases.get(r).cloned()
                    }
                });
                if let Some(class) = class {
                    for g in &guards {
                        edges.push(Edge {
                            from: g.class.clone(),
                            to: class.clone(),
                            file: m.path.clone(),
                            line: t.line,
                            func: func.to_owned(),
                            via: None,
                        });
                    }
                    ff.acquires.insert(class.clone());
                    // The binding owns the guard only when the acquisition
                    // ends the initializer chain — `Result` adapters
                    // (`.unwrap()`, `.unwrap_or_else(...)` for std locks)
                    // still yield the guard, but any other continued chain
                    // (`.read().iter()...`) binds a derived value and the
                    // guard itself is a statement temporary.
                    let mut j = i + 3;
                    loop {
                        let adapter = toks.get(j).is_some_and(|n| n.is_punct('.'))
                            && toks.get(j + 1).and_then(|n| n.ident()).is_some_and(|id| {
                                matches!(id, "unwrap" | "expect" | "unwrap_or_else")
                            })
                            && toks.get(j + 2).is_some_and(|n| n.is_punct('('));
                        if !adapter {
                            break;
                        }
                        j = match_paren(toks, j + 2) + 1;
                    }
                    let ends_chain = !toks.get(j).is_some_and(|n| n.is_punct('.'));
                    let taken = pending_let.take();
                    let var = if ends_chain { taken } else { None };
                    let temp = var.is_none();
                    guards.push(Guard {
                        class,
                        var,
                        depth,
                        temp,
                    });
                }
            }
            _ if id.starts_with("wait") && prev_dot && next_is(1, '(') => {
                let receiver = i.checked_sub(2).and_then(|p| toks[p].ident());
                let is_condvar =
                    receiver.is_some_and(|r| fields.get(r) == Some(&LockKind::Condvar));
                if is_condvar {
                    let arg = toks.get(i + 2).and_then(|n| n.ident());
                    let waited_class = arg.and_then(|a| {
                        guards
                            .iter()
                            .find(|g| g.var.as_deref() == Some(a))
                            .map(|g| g.class.clone())
                    });
                    let others: Vec<&str> = guards
                        .iter()
                        .filter(|g| Some(&g.class) != waited_class.as_ref())
                        .map(|g| g.class.as_str())
                        .collect();
                    if !others.is_empty() {
                        diags.push(Diagnostic::error(
                            &m.path,
                            t.line,
                            "lock_order",
                            format!(
                                "in `{func}`: waiting on condvar `{}` while still holding \
                                 [{}] — the wait releases only its own mutex, so other \
                                 waiters can deadlock",
                                receiver.unwrap_or("?"),
                                others.join(", "),
                            ),
                        ));
                    }
                }
            }
            "sleep" if next_is(1, '(') && !guards.is_empty() => {
                diags.push(Diagnostic::warning(
                    &m.path,
                    t.line,
                    "lock_order",
                    format!(
                        "in `{func}`: sleeping while holding [{}] stalls every \
                         contender for the full sleep",
                        held_list(&guards),
                    ),
                ));
            }
            "recv" | "join" if prev_dot && next_is(1, '(') && next_is(2, ')') => {
                if !guards.is_empty() {
                    diags.push(Diagnostic::warning(
                        &m.path,
                        t.line,
                        "lock_order",
                        format!(
                            "in `{func}`: blocking `.{id}()` while holding [{}]",
                            held_list(&guards),
                        ),
                    ));
                }
            }
            _ => {
                // Catalog table-handle aliasing: guards taken through the
                // binding share the `table` lock class.
                if id == "table" && prev_dot && next_is(1, '(') {
                    if let Some(v) = &pending_let {
                        aliases.insert(v.clone(), "table".to_owned());
                    }
                }
                // Plain call site (not a macro): record for the
                // inter-procedural pass.
                if next_is(1, '(')
                    && !toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
                    && !KEYWORDS.contains(&id)
                    && id != "table"
                {
                    ff.calls.push(CallSite {
                        callee: id.to_owned(),
                        held: guards.iter().map(|g| g.class.clone()).collect(),
                        file: m.path.clone(),
                        line: t.line,
                        func: func.to_owned(),
                    });
                }
            }
        }
        i += 1;
    }
    ff
}

/// Given the index of an opening `(`, return the index of its matching
/// `)` (or the last token if unbalanced).
fn match_paren(toks: &[crate::lexer::Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn held_list(guards: &[Guard]) -> String {
    guards
        .iter()
        .map(|g| g.class.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}
