//! The lint passes. Each pass takes the built [`crate::model::FileModel`]s
//! and returns raw diagnostics; suppression filtering happens centrally in
//! [`crate::analyze`].

pub mod bounds;
pub mod config_surface;
pub mod fault_discipline;
pub mod kernel_parity;
pub mod lock_order;
pub mod panic_path;
