//! Fault-discipline lint: the fault-injection and isolation machinery must
//! follow two structural rules, or chaos coverage silently rots.
//!
//! 1. **Gated fault points** — every `fault_point!` call site outside the
//!    telemetry crate (which defines the macro) must sit directly under a
//!    `#[cfg(feature = "...")]` attribute (within two preceding lines).
//!    The macro expands to nothing with the feature off, but an ungated
//!    site blurs the audit trail of which seams are instrumented and
//!    invites non-gated helper code to grow around it.
//! 2. **Counted recoveries** — any non-test function that calls
//!    `catch_unwind` must also touch telemetry in its body: a
//!    `record_fault(...)` on the query execution, a counter `.inc()` /
//!    `fetch_add`, or routing the result through `observe_outcome`. An
//!    isolation seam that swallows a panic without leaving a telemetry
//!    trace turns every injected (or real) fault into an invisible one.

use crate::diag::Diagnostic;
use crate::model::FileModel;

/// Identifiers that count as "the recovery left a telemetry trace".
const TELEMETRY_MARKERS: &[&str] = &["record_fault", "inc", "fetch_add", "observe_outcome"];

/// The crate that defines the macro (and its own unit tests) is exempt
/// from the call-site gating rule.
const MACRO_HOME: &str = "crates/telemetry/";

pub fn run(models: &[FileModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in models {
        // Integration tests install plans and call seams directly; the
        // discipline applies to production modules only.
        if m.path.contains("/tests/") {
            continue;
        }
        if !m.path.starts_with(MACRO_HOME) {
            check_gated_fault_points(m, &mut diags);
        }
        check_counted_recoveries(m, &mut diags);
    }
    diags
}

/// Rule 1: `fault_point!` call sites carry a `cfg(feature = ...)` gate on
/// one of the two preceding lines (or earlier on the same line, for a
/// one-line gated statement).
fn check_gated_fault_points(m: &FileModel, diags: &mut Vec<Diagnostic>) {
    for (i, t) in m.toks.iter().enumerate() {
        let is_call =
            t.is_ident("fault_point") && m.toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if !is_call || m.is_test_line(t.line) {
            continue;
        }
        let window_start = t.line.saturating_sub(2);
        let gated = m.toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line >= window_start)
            .any(|p| p.is_ident("cfg"))
            && m.toks[..i]
                .iter()
                .rev()
                .take_while(|p| p.line >= window_start)
                .any(|p| p.is_ident("feature"));
        if !gated {
            diags.push(Diagnostic::error(
                &m.path,
                t.line,
                "fault_discipline",
                "`fault_point!` call site without a `#[cfg(feature = \"fault-injection\")]` \
                 gate directly above it; gate the site or add a reasoned allow",
            ));
        }
    }
}

/// Rule 2: a function body containing `catch_unwind` also contains a
/// telemetry marker.
fn check_counted_recoveries(m: &FileModel, diags: &mut Vec<Diagnostic>) {
    for f in &m.fns {
        if f.in_test {
            continue;
        }
        let Some((start, end)) = f.body else {
            continue;
        };
        let body = &m.toks[start..=end.min(m.toks.len().saturating_sub(1))];
        let catch = body
            .iter()
            .find(|t| t.is_ident("catch_unwind") && !m.is_test_line(t.line));
        let Some(catch) = catch else {
            continue;
        };
        let counted = body
            .iter()
            .any(|t| t.ident().is_some_and(|id| TELEMETRY_MARKERS.contains(&id)));
        if !counted {
            diags.push(Diagnostic::error(
                &m.path,
                catch.line,
                "fault_discipline",
                format!(
                    "`catch_unwind` in `{}` leaves no telemetry trace; record the recovery \
                     (`record_fault`, a counter `.inc()`/`fetch_add`, or route the result \
                     through `observe_outcome`) or add a reasoned allow",
                    f.name
                ),
            ));
        }
    }
}
