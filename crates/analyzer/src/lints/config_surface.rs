//! Config-surface lint: every `SciborqConfig` field must be settable via
//! a `with_*` builder, covered by `validate()`, and documented in the
//! README. Config fields that can only be set by struct literal (or that
//! validation silently ignores) drift out of the documented surface and
//! become dead knobs.

use crate::diag::Diagnostic;
use crate::model::{match_brace, FileModel};

const CONFIG_FILE: &str = "crates/core/src/config.rs";
const CONFIG_STRUCT: &str = "SciborqConfig";

/// `(field, line)` pairs for the fields of `SciborqConfig`.
fn config_fields(m: &FileModel) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < m.toks.len() {
        if m.toks[i].is_ident("struct") && m.toks[i + 1].is_ident(CONFIG_STRUCT) {
            let Some(open) = (i + 2..m.toks.len()).find(|&k| m.toks[k].is_punct('{')) else {
                break;
            };
            let close = match_brace(&m.toks, open);
            let mut k = open + 1;
            while k < close {
                let is_field = m.toks[k].ident().is_some()
                    && m.toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && !m.toks[k].is_ident("pub");
                if is_field {
                    let field = m.toks[k].ident().unwrap_or_default().to_owned();
                    let line = m.toks[k].line;
                    // Skip the type region: to the next `,` at top nesting
                    // or the struct close.
                    let mut depth = 0isize;
                    let mut t = k + 2;
                    while t < close {
                        let tok = &m.toks[t];
                        if tok.is_punct('<') || tok.is_punct('(') || tok.is_punct('[') {
                            depth += 1;
                        } else if tok.is_punct(')')
                            || tok.is_punct(']')
                            || (tok.is_punct('>') && !m.toks[t - 1].is_punct('-'))
                        {
                            depth -= 1;
                        } else if tok.is_punct(',') && depth == 0 {
                            break;
                        }
                        t += 1;
                    }
                    out.push((field, line));
                    k = t + 1;
                } else {
                    k += 1;
                }
            }
            break;
        }
        i += 1;
    }
    out
}

/// True when some `with_*` builder body assigns `self.<field>`. Matching
/// on the assignment (rather than the builder's name) lets e.g.
/// `with_layers` satisfy the `layer_sizes` field.
fn has_builder(m: &FileModel, field: &str) -> bool {
    m.fns
        .iter()
        .filter(|f| f.name.starts_with("with_") && !f.in_test)
        .filter_map(|f| f.body)
        .any(|(open, close)| body_assigns_self_field(m, open, close, field))
}

fn body_assigns_self_field(m: &FileModel, open: usize, close: usize, field: &str) -> bool {
    (open..close.saturating_sub(2)).any(|k| {
        m.toks[k].is_ident("self")
            && m.toks[k + 1].is_punct('.')
            && m.toks[k + 2].is_ident(field)
            && m.toks.get(k + 3).is_some_and(|t| t.is_punct('='))
            && !m.toks.get(k + 4).is_some_and(|t| t.is_punct('='))
    })
}

/// True when `validate()` mentions the field at all.
fn validated(m: &FileModel, field: &str) -> bool {
    m.fns
        .iter()
        .filter(|f| f.name == "validate" && !f.in_test)
        .filter_map(|f| f.body)
        .any(|(open, close)| (open..=close).any(|k| m.toks[k].is_ident(field)))
}

pub fn run(models: &[FileModel], readme: Option<&str>) -> Vec<Diagnostic> {
    let Some(m) = models.iter().find(|m| m.path == CONFIG_FILE) else {
        return Vec::new();
    };
    let mut diags = Vec::new();
    for (field, line) in config_fields(m) {
        if !has_builder(m, &field) {
            diags.push(Diagnostic::error(
                CONFIG_FILE,
                line,
                "config_surface",
                format!("`{CONFIG_STRUCT}.{field}` has no `with_*` builder that assigns it"),
            ));
        }
        if !validated(m, &field) {
            diags.push(Diagnostic::error(
                CONFIG_FILE,
                line,
                "config_surface",
                format!("`{CONFIG_STRUCT}.{field}` is not covered by `validate()`"),
            ));
        }
        if let Some(readme) = readme {
            if !readme.contains(&field) {
                diags.push(Diagnostic::error(
                    CONFIG_FILE,
                    line,
                    "config_surface",
                    format!("`{CONFIG_STRUCT}.{field}` is not mentioned in the README"),
                ));
            }
        }
    }
    diags
}
