//! Panic-path lint: hot-path and serving modules must not contain
//! `unwrap()`, `expect()`, panic-family macros, or direct slice indexing
//! outside test code. These modules run inside the query loop or on the
//! server thread, where a panic either poisons shared state or kills a
//! connection; fallible paths must return typed errors instead.
//!
//! Indexing is reported under the separate `panic_path_index` lint name so
//! that kernel files, where bounds are established by construction, can
//! file-allow indexing without also muting the unwrap/expect checks.

use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::model::FileModel;

/// Modules where panics are denied.
const SCOPED_FILES: &[&str] = &[
    "crates/columnar/src/kernels.rs",
    "crates/columnar/src/compiled.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/admission.rs",
    "crates/serve/src/protocol.rs",
];

/// Macro names treated as unconditional panics.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that legitimately precede `[` (slice patterns, array types).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "return", "if", "else", "match", "mut", "ref", "move", "const", "static", "as",
    "while", "box", "dyn", "impl", "where",
];

pub fn run(models: &[FileModel]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for m in models {
        if !SCOPED_FILES.contains(&m.path.as_str()) {
            continue;
        }
        for (i, t) in m.toks.iter().enumerate() {
            if m.is_test_line(t.line) {
                continue;
            }
            let next_is = |c: char| m.toks.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev = i.checked_sub(1).and_then(|p| m.toks.get(p));
            match t.ident() {
                Some(name @ ("unwrap" | "expect"))
                    if next_is('(') && prev.is_some_and(|p| p.is_punct('.')) =>
                {
                    diags.push(Diagnostic::error(
                        &m.path,
                        t.line,
                        "panic_path",
                        format!(
                            "`.{name}()` in a panic-denied module; return a typed error \
                             (or recover, e.g. `unwrap_or_else(PoisonError::into_inner)` \
                             for lock poisoning) or add a reasoned allow"
                        ),
                    ));
                }
                Some(name) if PANIC_MACROS.contains(&name) && next_is('!') => {
                    diags.push(Diagnostic::error(
                        &m.path,
                        t.line,
                        "panic_path",
                        format!("`{name}!` in a panic-denied module; return a typed error or add a reasoned allow"),
                    ));
                }
                _ => {}
            }
            // Direct indexing: `expr[...]` — an opening bracket directly
            // after an identifier, `)` or `]`. Attributes (`#[...]`),
            // macro brackets (`vec![...]`), array literals and type
            // positions all have a different preceding token.
            if t.is_punct('[') {
                let indexes = match prev.map(|p| &p.kind) {
                    Some(TokKind::Ident(id)) => !NON_INDEX_KEYWORDS.contains(&id.as_str()),
                    Some(TokKind::Punct(')')) | Some(TokKind::Punct(']')) => true,
                    _ => false,
                };
                if indexes {
                    diags.push(Diagnostic::error(
                        &m.path,
                        t.line,
                        "panic_path_index",
                        "direct slice indexing in a panic-denied module; use `get`/iterators \
                         or add a reasoned allow"
                            .to_owned(),
                    ));
                }
            }
        }
    }
    diags
}
