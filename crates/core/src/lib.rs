//! # sciborq-core
//!
//! SciBORQ: **Sci**entific data management with **B**ounds **O**n **R**untime
//! and **Q**uality — a from-scratch reproduction of the CIDR 2011 paper by
//! Sidirourgos, Kersten and Boncz (CWI).
//!
//! The core idea: at any moment only a fraction of a science warehouse is of
//! primary value to the scientist. SciBORQ materialises that fraction as
//! *impressions* — multi-layer, workload-biased samples — and answers
//! exploratory queries against them with explicit bounds on runtime and on
//! statistical error, escalating to more detailed impressions (and ultimately
//! the base data) only when the requested quality demands it.
//!
//! ## Crate map
//!
//! * [`impression`] — an impression: a materialised sample plus the
//!   metadata needed to correct estimates for its sampling design.
//! * [`builder`] — streaming, load-time impression construction (§3.3).
//! * [`layer`] — recursive multi-layer hierarchies (§3.1 "Layers").
//! * [`policy`] — uniform / Last-Seen / KDE-biased sampling policies.
//! * [`engine`] — bounded query processing with error/runtime bounds and
//!   escalation (§3.2).
//! * [`maintenance`] — workload-shift detection and adaptive rebuilding
//!   (§3.1 "Adaptive").
//! * [`session`] — the full exploration loop: log queries, adapt, load,
//!   answer.
//! * [`config`] / [`answer`] / [`error`] — configuration, answer types and
//!   errors.
//!
//! ## Quick start
//!
//! ```
//! use sciborq_core::{ExplorationSession, SciborqConfig, SamplingPolicy, QueryBounds};
//! use sciborq_columnar::{Catalog, Table, Schema, Field, DataType, Predicate, Value};
//! use sciborq_workload::{AttributeDomain, Query};
//!
//! // a tiny base table
//! let schema = Schema::shared(vec![
//!     Field::new("objid", DataType::Int64),
//!     Field::new("ra", DataType::Float64),
//! ]).unwrap();
//! let mut table = Table::new("photoobj", schema);
//! for i in 0..1000i64 {
//!     table.append_row(&[i.into(), ((i % 360) as f64).into()]).unwrap();
//! }
//! let catalog = Catalog::new();
//! catalog.register(table).unwrap();
//!
//! // a session with two impression layers
//! let config = SciborqConfig::with_layers(vec![200, 50]);
//! let session = ExplorationSession::new(
//!     catalog,
//!     config,
//!     &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
//! ).unwrap();
//! session.create_impressions("photoobj", SamplingPolicy::Uniform).unwrap();
//!
//! // an approximate COUNT with a 20% error bound
//! let query = Query::count("photoobj", Predicate::lt("ra", 180.0));
//! let outcome = session.execute(&query, &QueryBounds::max_error(0.2)).unwrap();
//! let answer = outcome.as_aggregate().unwrap();
//! assert!(answer.value.unwrap() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod batch;
pub mod builder;
pub mod config;
pub mod engine;
pub mod error;
pub mod execution;
pub mod impression;
pub mod layer;
pub mod maintenance;
pub mod policy;
pub mod session;

pub use answer::{ApproximateAnswer, EvaluationLevel, LevelEstimate, LevelScan, SelectAnswer};
pub use builder::ImpressionBuilder;
pub use config::{SciborqConfig, StorageClass};
pub use engine::{BoundedQueryEngine, QueryBounds};
pub use error::{Result, SciborqError};
pub use execution::QueryExecution;
pub use impression::{Impression, DICT_MAX_CARDINALITY};
pub use layer::LayerHierarchy;
pub use maintenance::{AdaptiveMaintainer, MaintenanceDecision};
pub use policy::SamplingPolicy;
pub use session::{ExplorationSession, QueryOutcome, ScanProfile};

// Telemetry types that appear in core signatures (answer traces, session
// metrics), re-exported so downstream crates need not name the telemetry
// crate for ordinary use.
pub use sciborq_telemetry::{AdmissionTrace, MetricsRegistry, MetricsSnapshot, QueryTrace};
