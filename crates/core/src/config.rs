//! Configuration of a SciBORQ deployment.

use serde::{Deserialize, Serialize};

/// Storage class an impression is expected to live in, driven by its memory
/// footprint (§3: "depending on their size, an impression fits either in the
/// CPU cache, or the main memory of a workstation, or resides on the disk").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StorageClass {
    /// Fits comfortably within a CPU last-level cache.
    CpuCache,
    /// Fits in the main memory of a workstation.
    MainMemory,
    /// Must live on disk (or a cluster).
    Disk,
}

impl StorageClass {
    /// Classify a byte size using the configured thresholds.
    pub fn classify(bytes: usize, config: &SciborqConfig) -> StorageClass {
        if bytes <= config.cpu_cache_bytes {
            StorageClass::CpuCache
        } else if bytes <= config.main_memory_bytes {
            StorageClass::MainMemory
        } else {
            StorageClass::Disk
        }
    }
}

/// Global configuration of the SciBORQ framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SciborqConfig {
    /// Sizes (in rows) of the impression layers, from the most detailed
    /// (layer 1, sampled from the base data) to the least detailed. Each
    /// subsequent layer is sampled from the previous one.
    pub layer_sizes: Vec<usize>,
    /// Default confidence level used for error bounds.
    pub confidence: f64,
    /// Default maximum relative error accepted without escalation.
    pub default_max_error: f64,
    /// Random seed for all samplers (reproducibility).
    // analyzer:allow(config_surface, reason = "every u64 is a valid seed; there is no constraint for validate() to check")
    pub seed: u64,
    /// Number of histogram bins per tracked attribute (β in the paper).
    pub predicate_bins: usize,
    /// Fraction of workload shift (see
    /// [`sciborq_workload::focal_shift`]) above which maintenance rebuilds
    /// the biased impressions.
    pub adapt_threshold: f64,
    /// Threshold (× uniform frequency) for a histogram bin to count as a
    /// focal region.
    pub focal_threshold: f64,
    /// Byte budget treated as "fits in CPU cache".
    pub cpu_cache_bytes: usize,
    /// Byte budget treated as "fits in main memory".
    pub main_memory_bytes: usize,
    /// Maximum number of scan shards (worker threads) the engine may fan a
    /// single scan out to. `1` keeps every scan on the calling thread.
    /// Larger tables (base-data fallbacks, big impressions) are split into
    /// this many contiguous row ranges and scanned in parallel; results are
    /// merged in fixed shard order, so answers are bit-identical to
    /// single-threaded execution regardless of this knob. Small tables stay
    /// single-threaded no matter the setting (fan-out overhead would exceed
    /// the scan). Fan-out pays off when the predicate filters: for
    /// aggregates over near-unselective predicates the sequential
    /// aggregation tail dominates and sharding buys little (bit-identity
    /// requires the float fold to stay in global row order).
    pub parallelism: usize,
    /// Number of queries the session's query log retains (the window the
    /// predicate set and focal-shift detection are derived from, §3.3). A
    /// serving deployment sizes this to its workload; must be positive.
    pub query_log_capacity: usize,
    /// Whether the engine builds a per-query execution trace
    /// ([`sciborq_telemetry::QueryTrace`]) and attaches it to answers.
    /// Tracing is strictly observational — on or off, answer bits are
    /// identical (the standing bit-identity contract covers telemetry).
    // analyzer:allow(config_surface, reason = "a bool toggle has no invalid states for validate() to reject")
    pub collect_traces: bool,
    /// Number of recent query traces the session's trace ring retains (only
    /// consulted when `collect_traces` is on); must be positive.
    pub trace_capacity: usize,
}

impl Default for SciborqConfig {
    fn default() -> Self {
        SciborqConfig {
            layer_sizes: vec![100_000, 10_000, 1_000],
            confidence: 0.95,
            default_max_error: 0.1,
            seed: 0xC1B0_52B1,
            predicate_bins: 24,
            adapt_threshold: 0.5,
            focal_threshold: 2.0,
            cpu_cache_bytes: 8 << 20,   // 8 MiB
            main_memory_bytes: 4 << 30, // 4 GiB
            parallelism: 1,
            query_log_capacity: 10_000,
            collect_traces: false,
            trace_capacity: 256,
        }
    }
}

impl SciborqConfig {
    /// A configuration with explicit layer sizes and defaults for the rest.
    pub fn with_layers(layer_sizes: Vec<usize>) -> Self {
        SciborqConfig {
            layer_sizes,
            ..SciborqConfig::default()
        }
    }

    /// Validate the configuration, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.layer_sizes.is_empty() {
            return Err("at least one impression layer is required".to_owned());
        }
        if self.layer_sizes.contains(&0) {
            return Err("layer sizes must be positive".to_owned());
        }
        if self.layer_sizes.windows(2).any(|w| w[1] > w[0]) {
            return Err("layer sizes must be non-increasing (most detailed first)".to_owned());
        }
        if !(0.0 < self.confidence && self.confidence < 1.0) {
            return Err("confidence must lie strictly between 0 and 1".to_owned());
        }
        if !(self.default_max_error > 0.0) {
            return Err("default_max_error must be positive".to_owned());
        }
        if self.predicate_bins == 0 {
            return Err("predicate_bins must be positive".to_owned());
        }
        if !(0.0..=1.0).contains(&self.adapt_threshold) {
            return Err("adapt_threshold must lie in [0, 1]".to_owned());
        }
        if !(self.focal_threshold > 0.0) {
            return Err("focal_threshold must be positive".to_owned());
        }
        if self.cpu_cache_bytes == 0 {
            return Err("cpu_cache_bytes must be positive".to_owned());
        }
        if self.main_memory_bytes < self.cpu_cache_bytes {
            return Err("main_memory_bytes must be at least cpu_cache_bytes".to_owned());
        }
        if self.parallelism == 0 {
            return Err("parallelism must be at least 1".to_owned());
        }
        if self.query_log_capacity == 0 {
            return Err("query_log_capacity must be positive".to_owned());
        }
        if self.trace_capacity == 0 {
            return Err("trace_capacity must be positive".to_owned());
        }
        Ok(())
    }

    /// A copy of this configuration with the impression layer sizes
    /// replaced (chainable counterpart of [`SciborqConfig::with_layers`]).
    pub fn with_layer_sizes(mut self, layer_sizes: Vec<usize>) -> Self {
        self.layer_sizes = layer_sizes;
        self
    }

    /// A copy of this configuration with the default confidence level for
    /// error bounds set to `confidence`.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// A copy of this configuration with the default maximum relative
    /// error set to `max_error`.
    pub fn with_default_max_error(mut self, max_error: f64) -> Self {
        self.default_max_error = max_error;
        self
    }

    /// A copy of this configuration with the sampler seed set to `seed`.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A copy of this configuration with `bins` histogram bins per tracked
    /// attribute.
    pub fn with_predicate_bins(mut self, bins: usize) -> Self {
        self.predicate_bins = bins;
        self
    }

    /// A copy of this configuration with the workload-shift rebuild
    /// threshold set to `threshold`.
    pub fn with_adapt_threshold(mut self, threshold: f64) -> Self {
        self.adapt_threshold = threshold;
        self
    }

    /// A copy of this configuration with the focal-region frequency
    /// threshold set to `threshold`.
    pub fn with_focal_threshold(mut self, threshold: f64) -> Self {
        self.focal_threshold = threshold;
        self
    }

    /// A copy of this configuration with the CPU-cache byte budget set to
    /// `bytes`.
    pub fn with_cpu_cache_bytes(mut self, bytes: usize) -> Self {
        self.cpu_cache_bytes = bytes;
        self
    }

    /// A copy of this configuration with the main-memory byte budget set
    /// to `bytes`.
    pub fn with_main_memory_bytes(mut self, bytes: usize) -> Self {
        self.main_memory_bytes = bytes;
        self
    }

    /// A copy of this configuration with the scan fan-out set to `shards`.
    pub fn with_parallelism(mut self, shards: usize) -> Self {
        self.parallelism = shards;
        self
    }

    /// A copy of this configuration with the query-log window set to
    /// `capacity` queries.
    pub fn with_query_log_capacity(mut self, capacity: usize) -> Self {
        self.query_log_capacity = capacity;
        self
    }

    /// A copy of this configuration with per-query trace collection turned
    /// on or off.
    pub fn with_collect_traces(mut self, on: bool) -> Self {
        self.collect_traces = on;
        self
    }

    /// A copy of this configuration with the trace ring sized to retain
    /// `capacity` recent traces.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Number of configured impression layers (excluding layer 0 = base).
    pub fn layer_count(&self) -> usize {
        self.layer_sizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = SciborqConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.layer_count(), 3);
    }

    #[test]
    fn with_layers_builder() {
        let c = SciborqConfig::with_layers(vec![500, 50]);
        assert_eq!(c.layer_sizes, vec![500, 50]);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SciborqConfig::with_layers(vec![]);
        assert!(c.validate().is_err());
        c = SciborqConfig::with_layers(vec![100, 0]);
        assert!(c.validate().is_err());
        c = SciborqConfig::with_layers(vec![100, 1_000]);
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.confidence = 1.0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.default_max_error = 0.0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.predicate_bins = 0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.adapt_threshold = 1.5;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.focal_threshold = 0.0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.focal_threshold = f64::NAN;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.cpu_cache_bytes = 0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.main_memory_bytes = c.cpu_cache_bytes - 1;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.parallelism = 0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.query_log_capacity = 0;
        assert!(c.validate().is_err());
        c = SciborqConfig::default();
        c.trace_capacity = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn chainable_builders_cover_every_knob() {
        let c = SciborqConfig::default()
            .with_layer_sizes(vec![2_000, 200])
            .with_confidence(0.99)
            .with_default_max_error(0.05)
            .with_seed(7)
            .with_predicate_bins(12)
            .with_adapt_threshold(0.25)
            .with_focal_threshold(3.0)
            .with_cpu_cache_bytes(1 << 20)
            .with_main_memory_bytes(1 << 30);
        assert_eq!(c.layer_sizes, vec![2_000, 200]);
        assert_eq!(c.confidence, 0.99);
        assert_eq!(c.default_max_error, 0.05);
        assert_eq!(c.seed, 7);
        assert_eq!(c.predicate_bins, 12);
        assert_eq!(c.adapt_threshold, 0.25);
        assert_eq!(c.focal_threshold, 3.0);
        assert_eq!(c.cpu_cache_bytes, 1 << 20);
        assert_eq!(c.main_memory_bytes, 1 << 30);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn parallelism_builder() {
        let c = SciborqConfig::default().with_parallelism(4);
        assert_eq!(c.parallelism, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn query_log_capacity_builder_and_default() {
        assert_eq!(SciborqConfig::default().query_log_capacity, 10_000);
        let c = SciborqConfig::default().with_query_log_capacity(128);
        assert_eq!(c.query_log_capacity, 128);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn trace_builders_and_defaults() {
        let c = SciborqConfig::default();
        assert!(!c.collect_traces);
        assert_eq!(c.trace_capacity, 256);
        let c = c.with_collect_traces(true).with_trace_capacity(8);
        assert!(c.collect_traces);
        assert_eq!(c.trace_capacity, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn storage_classification() {
        let c = SciborqConfig::default();
        assert_eq!(StorageClass::classify(1024, &c), StorageClass::CpuCache);
        assert_eq!(
            StorageClass::classify(64 << 20, &c),
            StorageClass::MainMemory
        );
        assert_eq!(StorageClass::classify(8 << 30, &c), StorageClass::Disk);
        assert!(StorageClass::CpuCache < StorageClass::MainMemory);
        assert!(StorageClass::MainMemory < StorageClass::Disk);
    }
}
