//! Bounded query processing (§3.2).
//!
//! The engine answers a query against the smallest admissible impression,
//! checks whether the resulting confidence interval satisfies the user's
//! error bound, and — if not — escalates to the next, more detailed
//! impression of the same hierarchy, ultimately falling through to the base
//! data for a zero error margin. Runtime bounds are enforced by restricting
//! which levels are admissible: a level is only considered if the number of
//! rows it would scan fits the query's row budget (the analogue of "give me
//! the most representative result you can obtain within 5 minutes") and, if a
//! wall-clock budget is given, by stopping escalation once the budget is
//! exhausted. The reported `time_bound_met` is *measured* at the moment the
//! answer is produced — an evaluation that blows the clock mid-level returns
//! its best effort flagged `time_bound_met: false`, never a bound it did not
//! actually keep. Scans over the base data and large impressions fan out
//! across the shards configured by [`SciborqConfig::parallelism`]; the merge
//! order is fixed, so sharded answers are bit-identical to single-threaded
//! ones.

use crate::answer::{ApproximateAnswer, EvaluationLevel, LevelEstimate, SelectAnswer};
use crate::config::SciborqConfig;
use crate::error::{Result, SciborqError};
use crate::execution::QueryExecution;
use crate::impression::Impression;
use crate::layer::LayerHierarchy;
use sciborq_columnar::{AggregateKind, MomentSketch, Table, WeightedMomentSketch};
use sciborq_stats::{ConfidenceInterval, Estimate};
use sciborq_telemetry::FaultEventKind;
use sciborq_workload::{Query, QueryKind};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The bounds a query must be answered under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryBounds {
    /// Maximum acceptable relative error (half-width of the confidence
    /// interval divided by the estimate). `None` means "no error bound".
    pub max_relative_error: Option<f64>,
    /// Confidence level of the error bound.
    pub confidence: f64,
    /// Maximum number of rows the engine may scan in its *final* evaluation
    /// — the knob that bounds execution time. `None` means unlimited (the
    /// base data is admissible). Levels are admitted by their row count;
    /// the measured `rows_scanned` an answer reports counts per-pass kernel
    /// visits and can exceed an admitted level's row count for conjunctive
    /// predicates (one pass per conjunct).
    pub max_rows_scanned: Option<u64>,
    /// Optional wall-clock budget; escalation stops once it is exceeded.
    pub time_budget: Option<Duration>,
    /// For SELECT queries: the minimum number of result rows that makes an
    /// impression-level answer acceptable (defaults to the query LIMIT).
    pub min_result_rows: Option<usize>,
}

impl QueryBounds {
    /// Bounds requesting a maximum relative error at 95% confidence and no
    /// runtime restriction.
    pub fn max_error(error: f64) -> Self {
        QueryBounds {
            max_relative_error: Some(error),
            ..QueryBounds::default()
        }
    }

    /// Bounds requesting a row-scan budget (runtime bound) and no error
    /// bound: "the most representative result obtainable within the budget".
    pub fn row_budget(rows: u64) -> Self {
        QueryBounds {
            max_rows_scanned: Some(rows),
            max_relative_error: None,
            ..QueryBounds::default()
        }
    }

    /// Add a wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Add an error bound.
    pub fn with_max_error(mut self, error: f64) -> Self {
        self.max_relative_error = Some(error);
        self
    }

    /// Validate the bounds.
    pub fn validate(&self) -> Result<()> {
        if let Some(e) = self.max_relative_error {
            if !(e > 0.0) || !e.is_finite() {
                return Err(SciborqError::InvalidConfig(
                    "max_relative_error must be positive and finite".to_owned(),
                ));
            }
        }
        if !(0.0 < self.confidence && self.confidence < 1.0) {
            return Err(SciborqError::InvalidConfig(
                "confidence must lie strictly between 0 and 1".to_owned(),
            ));
        }
        if self.max_rows_scanned == Some(0) {
            return Err(SciborqError::InvalidConfig(
                "max_rows_scanned must be positive".to_owned(),
            ));
        }
        Ok(())
    }
}

impl Default for QueryBounds {
    fn default() -> Self {
        QueryBounds {
            max_relative_error: None,
            confidence: 0.95,
            max_rows_scanned: None,
            time_budget: None,
            min_result_rows: None,
        }
    }
}

/// The bounded query engine.
#[derive(Debug, Clone)]
pub struct BoundedQueryEngine {
    config: SciborqConfig,
}

impl BoundedQueryEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: SciborqConfig) -> Result<Self> {
        config.validate().map_err(SciborqError::InvalidConfig)?;
        Ok(BoundedQueryEngine { config })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SciborqConfig {
        &self.config
    }

    /// Answer an aggregate query under bounds, escalating through the
    /// hierarchy and optionally into the base table.
    ///
    /// `base_table` is the ground-truth table used when no impression can
    /// satisfy the error bound within the runtime budget (layer 0).
    pub fn execute_aggregate(
        &self,
        query: &Query,
        hierarchy: &LayerHierarchy,
        base_table: Option<&Table>,
        bounds: &QueryBounds,
    ) -> Result<ApproximateAnswer> {
        bounds.validate()?;
        let (agg_kind, agg_column) = match &query.kind {
            QueryKind::Aggregate { kind, column } => (*kind, column.clone()),
            QueryKind::Select => {
                return Err(SciborqError::InvalidConfig(
                    "execute_aggregate called with a SELECT query; use execute_select".to_owned(),
                ))
            }
        };

        let start = Instant::now();
        let max_error = bounds.max_relative_error.unwrap_or(f64::INFINITY);
        // Honest wall-clock check: re-evaluated at every decision point and
        // at every return, never assumed.
        let time_ok = || {
            bounds
                .time_budget
                .is_none_or(|budget| start.elapsed() <= budget)
        };
        // Compile the predicate once; every level reuses the compiled form
        // and contributes measured scan accounting. Large levels fan out
        // across the configured scan shards.
        let exec =
            QueryExecution::with_parallelism(query.predicate.clone(), self.config.parallelism);
        let mut escalations = 0usize;
        let mut best: Option<(Option<f64>, Option<ConfidenceInterval>, EvaluationLevel)> = None;
        // Degradation ladder state: set when a whole level is lost to a
        // panic. The answer then comes from the best level that completed,
        // flagged `degraded` — its bound verdicts stay measured against
        // what is actually returned. Always false on the fault-free path.
        let mut degraded = false;
        // Per-level quality accounting, collected only when tracing is on.
        // Strictly observational: nothing below reads `estimates` back.
        let tracing = self.config.collect_traces;
        let mut estimates: Vec<LevelEstimate> = Vec::new();

        // Escalate from the least to the most detailed admissible impression.
        for impression in hierarchy.escalation_order() {
            let level_rows = impression.row_count() as u64;
            if let Some(budget) = bounds.max_rows_scanned {
                if level_rows > budget {
                    // This level violates the row budget. `continue` rather
                    // than `break`: breaking would silently assume the
                    // escalation order is sorted by row count, and an
                    // unsorted hierarchy would then skip admissible levels.
                    continue;
                }
            }
            // Stop escalating once the wall-clock budget is spent — but
            // always evaluate at least one admissible level, so the engine
            // returns its best effort rather than nothing.
            if best.is_some() && !time_ok() {
                break;
            }
            if best.is_some() {
                escalations += 1;
            }
            let level = EvaluationLevel::Layer(impression.layer());
            // Isolate the whole level evaluation: a panic that escapes the
            // shard-recovery rung (or an injected `engine.level` fault)
            // loses this level only — escalation continues and the answer
            // is flagged degraded.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                sciborq_telemetry::fault_point!("engine.level");
                self.evaluate_on_impression(
                    &exec,
                    impression,
                    level,
                    agg_kind,
                    agg_column.as_deref(),
                    bounds,
                )
            }));
            let (value, interval) = match attempt {
                Ok(result) => result?,
                Err(_) => {
                    exec.record_fault("engine.level", FaultEventKind::Degradation);
                    degraded = true;
                    continue;
                }
            };
            // A sampled zero (no matching rows in the impression) carries a
            // degenerate [0, 0] interval, which would read as "zero error".
            // Claiming a certain COUNT/SUM of 0 from a sample is dishonest
            // for rare predicates, so a finite error bound is never treated
            // as met by a sampled zero — the engine keeps escalating, down
            // to the base data if permitted.
            let sampled_zero = value == Some(0.0) && max_error.is_finite();
            let met = !sampled_zero
                && interval
                    .as_ref()
                    .map(|ci| ci.satisfies_error_bound(max_error))
                    .unwrap_or(false);
            if tracing {
                estimates.push(LevelEstimate {
                    level,
                    relative_error: interval.as_ref().map(|ci| ci.relative_half_width()),
                    error_bound_met: met,
                });
            }
            best = Some((value, interval, level));
            if met {
                let (value, interval, level) = best.expect("just set");
                // time_bound_met is measured *after* the winning evaluation:
                // meeting the error bound does not excuse blowing the clock.
                let time_bound_met = time_ok();
                let mut answer = ApproximateAnswer {
                    query: query.to_string(),
                    value,
                    interval,
                    level,
                    rows_scanned: exec.rows_scanned(),
                    escalations,
                    elapsed: start.elapsed(),
                    level_scans: exec.take_level_scans(),
                    // analyzer:allow(bounds_honesty, reason = "this branch is only reached when `met` — the measured error-bound check a few lines up — is true, so the literal restates a measurement")
                    error_bound_met: true,
                    time_bound_met,
                    degraded,
                    fault_events: exec.take_fault_events(),
                    trace: None,
                };
                if tracing {
                    answer.trace =
                        Some(answer.build_trace(&estimates, bounds, self.config.parallelism));
                }
                return Ok(answer);
            }
            // Re-check after the level: if this evaluation blew the budget,
            // escalating further would only dig the hole deeper.
            if !time_ok() {
                break;
            }
        }

        // Fall through to the base data when allowed.
        let base_admissible = base_table.map(|t| {
            bounds
                .max_rows_scanned
                .is_none_or(|budget| t.row_count() as u64 <= budget)
        });
        if let (Some(table), Some(true), true) = (base_table, base_admissible, time_ok()) {
            if best.is_some() {
                escalations += 1;
            }
            // Exact evaluation through the fused kernels: no selection is
            // materialised for aggregates over the (large) base table. The
            // base scan is isolated like any sampled level: a panic here
            // degrades to the best sampled estimate instead of poisoning
            // the query.
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Option<f64>> {
                #[cfg(feature = "fault-injection")]
                sciborq_telemetry::fault_point!("engine.level");
                match agg_kind {
                    AggregateKind::Count => Ok(Some(
                        exec.count_matches(EvaluationLevel::BaseData, table)? as f64,
                    )),
                    _ => {
                        let column = agg_column.as_deref().ok_or_else(|| {
                            SciborqError::InvalidConfig(format!("{agg_kind} requires a column"))
                        })?;
                        Ok(exec
                            .filter_moments(EvaluationLevel::BaseData, table, column)?
                            .aggregate(agg_kind))
                    }
                }
            }));
            match attempt {
                Ok(outcome) => {
                    let value = outcome?;
                    // Measured honesty: the base scan itself may exceed the
                    // wall-clock budget even though it was admissible on entry.
                    let time_bound_met = time_ok();
                    if tracing {
                        estimates.push(LevelEstimate {
                            level: EvaluationLevel::BaseData,
                            relative_error: Some(0.0),
                            // analyzer:allow(bounds_honesty, reason = "base-data evaluation is exact (relative error identically zero), so any finite error bound is met by construction")
                            error_bound_met: true,
                        });
                    }
                    let mut answer = ApproximateAnswer {
                        query: query.to_string(),
                        value,
                        interval: value.map(ConfidenceInterval::exact),
                        level: EvaluationLevel::BaseData,
                        rows_scanned: exec.rows_scanned(),
                        escalations,
                        elapsed: start.elapsed(),
                        level_scans: exec.take_level_scans(),
                        // analyzer:allow(bounds_honesty, reason = "base-data evaluation is exact (relative error identically zero), so any finite error bound is met by construction")
                        error_bound_met: true,
                        time_bound_met,
                        degraded,
                        fault_events: exec.take_fault_events(),
                        trace: None,
                    };
                    if tracing {
                        answer.trace =
                            Some(answer.build_trace(&estimates, bounds, self.config.parallelism));
                    }
                    return Ok(answer);
                }
                Err(_) => {
                    exec.record_fault("engine.level", FaultEventKind::Degradation);
                    degraded = true;
                }
            }
        }

        // Return the best approximate answer obtained within the budget.
        match best {
            Some((value, interval, level)) => {
                let sampled_zero = value == Some(0.0) && max_error.is_finite();
                let error_bound_met = !sampled_zero
                    && interval
                        .as_ref()
                        .map(|ci| ci.satisfies_error_bound(max_error))
                        .unwrap_or(false);
                let time_bound_met = time_ok();
                let mut answer = ApproximateAnswer {
                    query: query.to_string(),
                    value,
                    interval,
                    level,
                    rows_scanned: exec.rows_scanned(),
                    escalations,
                    elapsed: start.elapsed(),
                    level_scans: exec.take_level_scans(),
                    error_bound_met,
                    time_bound_met,
                    degraded,
                    fault_events: exec.take_fault_events(),
                    trace: None,
                };
                if tracing {
                    answer.trace =
                        Some(answer.build_trace(&estimates, bounds, self.config.parallelism));
                }
                Ok(answer)
            }
            // Every level was lost to an isolated panic: there is no honest
            // estimate left to degrade to, so the query fails typed.
            None if degraded => Err(SciborqError::Internal {
                site: "engine.level".to_owned(),
            }),
            None => Err(SciborqError::BoundsUnsatisfiable(format!(
                "no impression of {} fits a row budget of {:?}",
                hierarchy.source_table(),
                bounds.max_rows_scanned
            ))),
        }
    }

    /// Evaluate one escalation level through the fused scan kernels — no
    /// selection vector is materialised for **any** policy. Self-weighted
    /// impressions stream match counts / moment sketches into the SRS
    /// estimators; biased impressions stream Hansen–Hurwitz sketches (each
    /// matching row expanded by the impression's cached selection
    /// probability) into the weighted estimators. The reduction to a
    /// [`LevelSketch`] followed by [`estimate_level`] is the exact pipeline
    /// the shared-scan batch executor replays, so batched estimates are
    /// computed by the same code as serial ones.
    fn evaluate_on_impression(
        &self,
        exec: &QueryExecution,
        impression: &Impression,
        level: EvaluationLevel,
        agg_kind: AggregateKind,
        agg_column: Option<&str>,
        bounds: &QueryBounds,
    ) -> Result<(Option<f64>, Option<ConfidenceInterval>)> {
        let data = impression.data();
        let weighted = impression.uses_weighted_estimators();
        let sketch = match agg_kind {
            AggregateKind::Count => {
                if weighted {
                    LevelSketch::Weighted(exec.count_weighted(
                        level,
                        data,
                        impression.selection_probabilities(),
                    )?)
                } else {
                    LevelSketch::Count(exec.count_matches(level, data)?)
                }
            }
            AggregateKind::Sum | AggregateKind::Avg => {
                let column = agg_column.ok_or_else(|| {
                    SciborqError::InvalidConfig(format!("{agg_kind} requires a column"))
                })?;
                if weighted {
                    LevelSketch::Weighted(exec.filter_weighted_moments(
                        level,
                        data,
                        column,
                        impression.selection_probabilities(),
                    )?)
                } else {
                    LevelSketch::Moments(exec.filter_moments(level, data, column)?)
                }
            }
            AggregateKind::Min | AggregateKind::Max | AggregateKind::Variance => {
                let column = agg_column.ok_or_else(|| {
                    SciborqError::InvalidConfig(format!("{agg_kind} requires a column"))
                })?;
                LevelSketch::Moments(exec.filter_moments(level, data, column)?)
            }
        };
        estimate_level(impression, agg_kind, bounds.confidence, &sketch)
    }

    /// Answer a SELECT query: return rows drawn from the smallest impression
    /// that can satisfy the LIMIT / minimum row count, escalating otherwise
    /// (§3.2 "the equivalent query with a LIMIT 100 clause will not return
    /// the first 100 results, but the 100 results satisfying the
    /// impression").
    pub fn execute_select(
        &self,
        query: &Query,
        hierarchy: &LayerHierarchy,
        base_table: Option<&Table>,
        bounds: &QueryBounds,
    ) -> Result<SelectAnswer> {
        bounds.validate()?;
        if !matches!(query.kind, QueryKind::Select) {
            return Err(SciborqError::InvalidConfig(
                "execute_select called with an aggregate query".to_owned(),
            ));
        }
        let start = Instant::now();
        let wanted = bounds.min_result_rows.or(query.limit).unwrap_or(usize::MAX);
        // The same honest wall-clock rule as the aggregate path: the budget
        // gates escalation and the outcome is reported, never assumed.
        let time_ok = || {
            bounds
                .time_budget
                .is_none_or(|budget| start.elapsed() <= budget)
        };
        let exec =
            QueryExecution::with_parallelism(query.predicate.clone(), self.config.parallelism);
        let tracing = self.config.collect_traces;
        let mut escalations = 0usize;
        let mut best: Option<(Table, f64, EvaluationLevel)> = None;
        // Same degradation ladder as the aggregate path: a level lost to a
        // caught panic is skipped and the eventual answer flagged.
        let mut degraded = false;

        for impression in hierarchy.escalation_order() {
            let level_rows = impression.row_count() as u64;
            if let Some(budget) = bounds.max_rows_scanned {
                if level_rows > budget {
                    // see execute_aggregate: don't assume sorted escalation
                    // order — a later level may still be admissible
                    continue;
                }
            }
            // Stop escalating once the wall-clock budget is spent (but
            // always evaluate at least one admissible level).
            if best.is_some() && !time_ok() {
                break;
            }
            if best.is_some() {
                escalations += 1;
            }
            let level = EvaluationLevel::Layer(impression.layer());
            // Isolate the level like the aggregate path: a panicked level
            // is skipped (degrading the answer), not fatal to the query.
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(Table, f64, bool)> {
                #[cfg(feature = "fault-injection")]
                sciborq_telemetry::fault_point!("engine.level");
                let mut selection = exec.selection(level, impression.data())?;
                let estimated = impression.estimate_count(&selection)?.value;
                let enough = selection.len() >= wanted.min(impression.row_count());
                if let Some(limit) = query.limit {
                    selection.truncate(limit);
                }
                let result = impression
                    .data()
                    .gather(&selection, format!("{}.result", impression.name()))?;
                let got_enough = result.row_count() >= wanted || enough && query.limit.is_none();
                Ok((result, estimated, got_enough))
            }));
            let (result, estimated, got_enough) = match attempt {
                Ok(outcome) => outcome?,
                Err(_) => {
                    exec.record_fault("engine.level", FaultEventKind::Degradation);
                    degraded = true;
                    continue;
                }
            };
            best = Some((result, estimated, level));
            if got_enough {
                let (rows, estimated_total_matches, level) = best.expect("just set");
                let time_bound_met = time_ok();
                let mut answer = SelectAnswer {
                    query: query.to_string(),
                    rows,
                    estimated_total_matches,
                    level,
                    rows_scanned: exec.rows_scanned(),
                    escalations,
                    elapsed: start.elapsed(),
                    level_scans: exec.take_level_scans(),
                    time_bound_met,
                    degraded,
                    fault_events: exec.take_fault_events(),
                    trace: None,
                };
                if tracing {
                    answer.trace = Some(answer.build_trace(bounds, self.config.parallelism));
                }
                return Ok(answer);
            }
            if !time_ok() {
                break;
            }
        }

        // Escalate to the base data if allowed and still not enough rows.
        if let Some(table) = base_table {
            let admissible = bounds
                .max_rows_scanned
                .is_none_or(|budget| table.row_count() as u64 <= budget);
            if admissible && time_ok() {
                if best.is_some() {
                    escalations += 1;
                }
                let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<(Table, f64)> {
                    #[cfg(feature = "fault-injection")]
                    sciborq_telemetry::fault_point!("engine.level");
                    let mut selection = exec.selection(EvaluationLevel::BaseData, table)?;
                    let total = selection.len() as f64;
                    if let Some(limit) = query.limit {
                        selection.truncate(limit);
                    }
                    let rows = table.gather(&selection, format!("{}.result", table.name()))?;
                    Ok((rows, total))
                }));
                match attempt {
                    Ok(outcome) => {
                        let (rows, total) = outcome?;
                        let time_bound_met = time_ok();
                        let mut answer = SelectAnswer {
                            query: query.to_string(),
                            rows,
                            estimated_total_matches: total,
                            level: EvaluationLevel::BaseData,
                            rows_scanned: exec.rows_scanned(),
                            escalations,
                            elapsed: start.elapsed(),
                            level_scans: exec.take_level_scans(),
                            time_bound_met,
                            degraded,
                            fault_events: exec.take_fault_events(),
                            trace: None,
                        };
                        if tracing {
                            answer.trace =
                                Some(answer.build_trace(bounds, self.config.parallelism));
                        }
                        return Ok(answer);
                    }
                    Err(_) => {
                        exec.record_fault("engine.level", FaultEventKind::Degradation);
                        degraded = true;
                    }
                }
            }
        }

        match best {
            Some((rows, estimated_total_matches, level)) => {
                let time_bound_met = time_ok();
                let mut answer = SelectAnswer {
                    query: query.to_string(),
                    rows,
                    estimated_total_matches,
                    level,
                    rows_scanned: exec.rows_scanned(),
                    escalations,
                    elapsed: start.elapsed(),
                    level_scans: exec.take_level_scans(),
                    time_bound_met,
                    degraded,
                    fault_events: exec.take_fault_events(),
                    trace: None,
                };
                if tracing {
                    answer.trace = Some(answer.build_trace(bounds, self.config.parallelism));
                }
                Ok(answer)
            }
            // Every level was lost to an isolated panic: nothing honest is
            // left to return, so the query fails typed.
            None if degraded => Err(SciborqError::Internal {
                site: "engine.level".to_owned(),
            }),
            None => Err(SciborqError::BoundsUnsatisfiable(format!(
                "no impression of {} fits a row budget of {:?}",
                hierarchy.source_table(),
                bounds.max_rows_scanned
            ))),
        }
    }
}

/// The sufficient statistics one escalation level produced for one query —
/// the seam between scanning and estimation. Serial execution and the
/// shared-scan batch executor both reduce a level to a `LevelSketch` and
/// then call [`estimate_level`], so the two paths share their estimation
/// code and produce bit-identical answers from identical sketches.
#[derive(Debug, Clone)]
pub(crate) enum LevelSketch {
    /// A plain match count (COUNT on a self-weighted impression).
    Count(usize),
    /// An unweighted moment sketch of the aggregated column.
    Moments(MomentSketch),
    /// A Hansen–Hurwitz weighted sketch (biased impressions; also carries
    /// weighted COUNTs, where no aggregation column is involved).
    Weighted(WeightedMomentSketch),
}

/// Turn a level's [`LevelSketch`] into a point estimate and confidence
/// interval using the impression's sampling-design corrections.
///
/// MIN / MAX / VAR report the sample value with an unbounded interval:
/// extremes and exact variance are not meaningfully estimable from a sample
/// with bounded error, so the engine escalates to the base data whenever an
/// error bound was requested.
pub(crate) fn estimate_level(
    impression: &Impression,
    agg_kind: AggregateKind,
    confidence: f64,
    sketch: &LevelSketch,
) -> Result<(Option<f64>, Option<ConfidenceInterval>)> {
    let estimate: Option<Estimate> = match (agg_kind, sketch) {
        (AggregateKind::Count, LevelSketch::Weighted(s)) => {
            Some(impression.estimate_count_weighted(s)?)
        }
        (AggregateKind::Count, LevelSketch::Count(matched)) => {
            Some(impression.estimate_count_streamed(*matched)?)
        }
        (AggregateKind::Sum, LevelSketch::Weighted(s)) => {
            Some(impression.estimate_sum_weighted(s)?)
        }
        (AggregateKind::Sum, LevelSketch::Moments(s)) => Some(impression.estimate_sum_streamed(s)?),
        (AggregateKind::Avg, LevelSketch::Weighted(s)) => {
            if s.matched == 0 {
                None
            } else {
                Some(impression.estimate_avg_weighted(s)?)
            }
        }
        (AggregateKind::Avg, LevelSketch::Moments(s)) => {
            if s.matched == 0 {
                None
            } else {
                Some(impression.estimate_avg_streamed(s)?)
            }
        }
        (
            AggregateKind::Min | AggregateKind::Max | AggregateKind::Variance,
            LevelSketch::Moments(s),
        ) => {
            let value = s.aggregate(agg_kind);
            return Ok((
                value,
                value.map(|v| ConfidenceInterval {
                    estimate: v,
                    lower: f64::NEG_INFINITY,
                    upper: f64::INFINITY,
                    confidence,
                }),
            ));
        }
        _ => {
            return Err(SciborqError::InvalidConfig(format!(
                "internal: level sketch flavour does not fit {agg_kind}"
            )))
        }
    };
    match estimate {
        Some(est) => {
            let interval = ConfidenceInterval::from_estimate(&est, confidence)?;
            Ok((Some(est.value), Some(interval)))
        }
        None => Ok((None, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SamplingPolicy;
    use sciborq_columnar::{
        DataType, Field, Predicate, RecordBatchBuilder, Schema, SchemaRef, Value,
    };

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap()
    }

    /// 100k rows; ra uniform in [0, 360); r_mag = 15 + (objid mod 10).
    fn base_table(rows: usize) -> Table {
        let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
        for i in 0..rows as i64 {
            b.push_row(&[
                Value::Int64(i),
                Value::Float64((i % 3600) as f64 / 10.0),
                Value::Float64(15.0 + (i % 10) as f64),
            ])
            .unwrap();
        }
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&b.finish().unwrap()).unwrap();
        t
    }

    fn hierarchy(table: &Table, sizes: Vec<usize>) -> LayerHierarchy {
        let config = SciborqConfig::with_layers(sizes);
        LayerHierarchy::build_from_table(table, SamplingPolicy::Uniform, &config, None).unwrap()
    }

    fn engine() -> BoundedQueryEngine {
        BoundedQueryEngine::new(SciborqConfig::default()).unwrap()
    }

    #[test]
    fn bounds_validation() {
        assert!(QueryBounds::default().validate().is_ok());
        assert!(QueryBounds::max_error(0.0).validate().is_err());
        let b = QueryBounds {
            confidence: 1.0,
            ..QueryBounds::default()
        };
        assert!(b.validate().is_err());
        let b = QueryBounds {
            max_rows_scanned: Some(0),
            ..QueryBounds::default()
        };
        assert!(b.validate().is_err());
        assert!(QueryBounds::row_budget(100)
            .with_max_error(0.1)
            .with_time_budget(Duration::from_secs(1))
            .validate()
            .is_ok());
    }

    #[test]
    fn invalid_engine_config_rejected() {
        let cfg = SciborqConfig::with_layers(vec![]);
        assert!(BoundedQueryEngine::new(cfg).is_err());
    }

    #[test]
    fn count_estimate_close_to_truth_and_bounded() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 1_000]);
        // predicate matching 25% of rows
        let query = Query::count("photoobj", Predicate::lt("ra", 90.0));
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(0.05))
            .unwrap();
        let truth = 25_000.0;
        let estimate = answer.value.unwrap();
        assert!(
            (estimate - truth).abs() / truth < 0.1,
            "estimate {estimate} vs truth {truth}"
        );
        assert!(answer.error_bound_met);
        assert!(answer.interval.unwrap().covers(truth));
        assert!(answer.rows_scanned >= 1_000);
    }

    #[test]
    fn loose_error_bound_answered_on_small_layer() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 1_000]);
        let query = Query::count("photoobj", Predicate::lt("ra", 180.0));
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(0.2))
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        assert_eq!(answer.escalations, 0);
        assert!(answer.error_bound_met);
    }

    #[test]
    fn tight_error_bound_escalates_to_larger_layer() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 500]);
        // 10% selectivity: the 500-row layer gives ~50 matches -> ~28% error,
        // the 10k layer gives ~1000 matches -> ~6% error.
        let query = Query::count("photoobj", Predicate::lt("ra", 36.0));
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(0.08))
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::Layer(1));
        assert!(answer.escalations >= 1);
        assert!(answer.error_bound_met);
    }

    #[test]
    fn zero_error_demand_falls_through_to_base_data() {
        let table = base_table(20_000);
        let h = hierarchy(&table, vec![2_000, 200]);
        let query = Query::count("photoobj", Predicate::lt("ra", 36.0));
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(1e-9))
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::BaseData);
        assert!(answer.is_exact());
        // ra < 36 matches i % 3600 < 360: 5 full cycles of 360 plus the
        // partial cycle 18000..20000 contributes another 360.
        assert_eq!(answer.value.unwrap(), 2_160.0);
        assert_eq!(answer.relative_error(), 0.0);
        assert!(answer.escalations >= 2);
    }

    #[test]
    fn row_budget_restricts_levels() {
        let table = base_table(50_000);
        let h = hierarchy(&table, vec![5_000, 500]);
        let query = Query::count("photoobj", Predicate::lt("ra", 180.0));
        // budget allows only the 500-row layer
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::row_budget(1_000))
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        assert!(answer.time_bound_met);
        assert!(answer.rows_scanned <= 1_000);
        // with an unlimited budget but no error bound the smallest layer wins
        // only if it satisfies the (infinite) error bound, which it does
        let unlimited = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        assert_eq!(unlimited.level, EvaluationLevel::Layer(2));
    }

    #[test]
    fn conflicting_bounds_return_best_effort_within_time() {
        let table = base_table(50_000);
        let h = hierarchy(&table, vec![5_000, 500]);
        // 1% selectivity with tiny row budget: error bound cannot be met
        let query = Query::count("photoobj", Predicate::lt("ra", 3.6));
        let bounds = QueryBounds::row_budget(1_000).with_max_error(0.01);
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &bounds)
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        assert!(!answer.error_bound_met);
        assert!(answer.time_bound_met);
    }

    #[test]
    fn impossible_row_budget_is_an_error() {
        let table = base_table(10_000);
        let h = hierarchy(&table, vec![1_000, 100]);
        let query = Query::count("photoobj", Predicate::True);
        let err = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::row_budget(10))
            .unwrap_err();
        assert!(matches!(err, SciborqError::BoundsUnsatisfiable(_)));
    }

    #[test]
    fn avg_and_sum_estimates() {
        let table = base_table(50_000);
        let h = hierarchy(&table, vec![5_000]);
        let avg_query = Query::aggregate("photoobj", Predicate::True, AggregateKind::Avg, "r_mag");
        let answer = engine()
            .execute_aggregate(&avg_query, &h, Some(&table), &QueryBounds::max_error(0.05))
            .unwrap();
        // true mean of 15 + (i mod 10) is 19.5
        assert!((answer.value.unwrap() - 19.5).abs() < 0.5);

        let sum_query = Query::aggregate(
            "photoobj",
            Predicate::lt("ra", 180.0),
            AggregateKind::Sum,
            "r_mag",
        );
        let answer = engine()
            .execute_aggregate(&sum_query, &h, Some(&table), &QueryBounds::max_error(0.1))
            .unwrap();
        let truth = 19.5 * 25_000.0;
        assert!((answer.value.unwrap() - truth).abs() / truth < 0.15);
    }

    #[test]
    fn avg_with_no_matches_escalates_and_reports_exact_empty() {
        let table = base_table(10_000);
        let h = hierarchy(&table, vec![1_000, 100]);
        let query = Query::aggregate(
            "photoobj",
            Predicate::gt("ra", 999.0),
            AggregateKind::Avg,
            "r_mag",
        );
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(0.1))
            .unwrap();
        // nothing matches anywhere: the engine ends at the base data with an
        // undefined average
        assert_eq!(answer.level, EvaluationLevel::BaseData);
        assert_eq!(answer.value, None);
    }

    #[test]
    fn min_max_escalate_to_base_when_error_bound_requested() {
        let table = base_table(10_000);
        let h = hierarchy(&table, vec![1_000]);
        let query = Query::aggregate("photoobj", Predicate::True, AggregateKind::Max, "r_mag");
        let bounded = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(0.01))
            .unwrap();
        assert_eq!(bounded.level, EvaluationLevel::BaseData);
        assert_eq!(bounded.value.unwrap(), 24.0);
        // without an error bound the sample extreme is acceptable
        let unbounded = engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        assert!(unbounded.value.unwrap() <= 24.0);
    }

    #[test]
    fn blown_time_budget_is_reported_honestly() {
        let table = base_table(50_000);
        let h = hierarchy(&table, vec![5_000, 500]);
        // 1% selectivity: the 500-row layer cannot meet a 1% error bound, so
        // without a time budget the engine would escalate. A zero budget is
        // blown the moment the first level finishes: the engine must stop
        // there and must NOT claim the time bound was met.
        let query = Query::count("photoobj", Predicate::lt("ra", 3.6));
        let bounds = QueryBounds::max_error(0.01).with_time_budget(Duration::ZERO);
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &bounds)
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        assert_eq!(answer.escalations, 0);
        assert!(!answer.error_bound_met);
        assert!(
            !answer.time_bound_met,
            "a zero time budget cannot have been met"
        );
    }

    #[test]
    fn met_error_bound_does_not_excuse_a_blown_clock() {
        let table = base_table(50_000);
        let h = hierarchy(&table, vec![5_000, 500]);
        // the loosest possible bound is met on the very first level, but the
        // zero clock budget was still blown while evaluating it
        let query = Query::count("photoobj", Predicate::lt("ra", 180.0));
        let bounds = QueryBounds::max_error(0.5).with_time_budget(Duration::ZERO);
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &bounds)
            .unwrap();
        assert!(answer.error_bound_met);
        assert!(!answer.time_bound_met);
    }

    #[test]
    fn generous_time_budget_reports_met_through_base_data() {
        let table = base_table(20_000);
        let h = hierarchy(&table, vec![2_000, 200]);
        let query = Query::count("photoobj", Predicate::lt("ra", 36.0));
        let bounds = QueryBounds::max_error(1e-9).with_time_budget(Duration::from_secs(60));
        let answer = engine()
            .execute_aggregate(&query, &h, Some(&table), &bounds)
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::BaseData);
        assert!(answer.time_bound_met);
        assert!(answer.error_bound_met);
    }

    #[test]
    fn select_time_budget_stops_escalation_and_is_surfaced() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 1_000]);
        // 0.5% selectivity: the 1000-row layer holds ~5 matches, far short
        // of the LIMIT, so an unbounded run escalates. The zero time budget
        // pins the answer to the first level and must be reported blown.
        let query = Query::select("photoobj", Predicate::lt("ra", 1.8)).with_limit(50);
        let bounds = QueryBounds {
            time_budget: Some(Duration::ZERO),
            ..QueryBounds::default()
        };
        let answer = engine()
            .execute_select(&query, &h, Some(&table), &bounds)
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        assert_eq!(answer.escalations, 0);
        assert!(answer.returned_rows() < 50);
        assert!(!answer.time_bound_met);

        // without a time budget the same query escalates and reports the
        // (trivially satisfied) bound as met
        let unbounded = engine()
            .execute_select(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        assert!(unbounded.escalations >= 1);
        assert!(unbounded.time_bound_met);
    }

    #[test]
    fn sharded_engine_answers_are_bit_identical_to_single_threaded() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 1_000]);
        let serial = engine();
        let sharded =
            BoundedQueryEngine::new(SciborqConfig::default().with_parallelism(4)).unwrap();
        let queries = [
            Query::count("photoobj", Predicate::lt("ra", 90.0)),
            Query::aggregate(
                "photoobj",
                Predicate::lt("ra", 180.0),
                AggregateKind::Sum,
                "r_mag",
            ),
            Query::aggregate("photoobj", Predicate::True, AggregateKind::Avg, "r_mag"),
        ];
        for query in &queries {
            // the tiny error bound forces escalation through every layer and
            // into the 100k-row base table, which fans out at parallelism 4
            let bounds = QueryBounds::max_error(1e-12);
            let a = serial
                .execute_aggregate(query, &h, Some(&table), &bounds)
                .unwrap();
            let b = sharded
                .execute_aggregate(query, &h, Some(&table), &bounds)
                .unwrap();
            assert_eq!(a.level, b.level, "level for {query}");
            assert_eq!(
                a.value.map(f64::to_bits),
                b.value.map(f64::to_bits),
                "value bits for {query}"
            );
            assert_eq!(a.rows_scanned, b.rows_scanned, "rows scanned for {query}");
            let base_scan = b.level_scans.last().expect("base level recorded");
            assert_eq!(base_scan.shards, 4, "base scan fans out for {query}");
            assert!(a.level_scans.iter().all(|l| l.shards == 1));
        }
    }

    #[test]
    fn biased_sharded_answers_are_bit_identical_to_single_threaded() {
        use sciborq_workload::{AttributeDomain, PredicateSet};
        let table = base_table(100_000);
        // a focused workload steers the biased impressions
        let mut ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        for _ in 0..200 {
            ps.log_value("ra", 90.0);
            ps.log_value("ra", 95.0);
        }
        let config = SciborqConfig::with_layers(vec![20_000, 2_000]);
        let h = LayerHierarchy::build_from_table(
            &table,
            SamplingPolicy::biased(["ra"]),
            &config,
            Some(&ps),
        )
        .unwrap();
        let serial = engine();
        let sharded =
            BoundedQueryEngine::new(SciborqConfig::default().with_parallelism(4)).unwrap();
        let queries = [
            Query::count("photoobj", Predicate::lt("ra", 90.0)),
            Query::aggregate(
                "photoobj",
                Predicate::lt("ra", 180.0),
                AggregateKind::Sum,
                "r_mag",
            ),
            Query::aggregate("photoobj", Predicate::True, AggregateKind::Avg, "r_mag"),
        ];
        for query in &queries {
            // the tiny error bound forces escalation through both biased
            // layers (weighted fused kernels, the 20k layer fanning out at
            // parallelism 4) and into the base table
            let bounds = QueryBounds::max_error(1e-12);
            let a = serial
                .execute_aggregate(query, &h, Some(&table), &bounds)
                .unwrap();
            let b = sharded
                .execute_aggregate(query, &h, Some(&table), &bounds)
                .unwrap();
            assert_eq!(a.level, b.level, "level for {query}");
            assert_eq!(
                a.value.map(f64::to_bits),
                b.value.map(f64::to_bits),
                "value bits for {query}"
            );
            assert_eq!(a.rows_scanned, b.rows_scanned, "rows scanned for {query}");
            // the 20k-row biased layer fans out in the sharded run …
            let layer1 = b
                .level_scans
                .iter()
                .find(|l| l.level == EvaluationLevel::Layer(1))
                .expect("layer 1 visited");
            assert_eq!(layer1.shards, 4, "biased layer-1 scan fans out for {query}");
            // … and stays single-threaded in the serial run
            assert!(a.level_scans.iter().all(|l| l.shards == 1));
        }
    }

    #[test]
    fn traces_record_escalation_and_change_no_answer_bits() {
        let table = base_table(20_000);
        let h = hierarchy(&table, vec![2_000, 200]);
        let query = Query::count("photoobj", Predicate::lt("ra", 36.0));
        let bounds = QueryBounds::max_error(1e-9);
        let plain = engine()
            .execute_aggregate(&query, &h, Some(&table), &bounds)
            .unwrap();
        assert!(plain.trace.is_none(), "tracing is off by default");
        let traced_engine =
            BoundedQueryEngine::new(SciborqConfig::default().with_collect_traces(true)).unwrap();
        let traced = traced_engine
            .execute_aggregate(&query, &h, Some(&table), &bounds)
            .unwrap();
        // telemetry neutrality: the answer bits are identical
        assert_eq!(
            plain.value.map(f64::to_bits),
            traced.value.map(f64::to_bits)
        );
        assert_eq!(plain.level, traced.level);
        assert_eq!(plain.rows_scanned, traced.rows_scanned);
        let trace = traced.trace.expect("tracing on attaches a trace");
        assert_eq!(trace.final_level, "base");
        assert_eq!(trace.escalations, traced.escalations);
        assert!(trace.error_bound_met && trace.time_bound_met);
        assert_eq!(trace.levels.len(), 3, "both layers plus base visited");
        assert_eq!(trace.levels[0].level, "layer-2");
        assert_eq!(trace.levels[2].level, "base");
        // the sampled layers missed the (tiny) bound, base met it exactly
        assert!(!trace.levels[0].error_bound_met);
        assert!(trace.levels[2].error_bound_met);
        assert_eq!(trace.levels[2].relative_error, Some(0.0));
        assert!(trace.levels.iter().all(|l| l.rows_scanned > 0));
        assert_eq!(trace.requested_error, Some(1e-9));
        assert!(
            trace.admission.is_none(),
            "direct engine calls skip admission"
        );

        // SELECT traces carry levels too
        let sel = Query::select("photoobj", Predicate::lt("ra", 36.0)).with_limit(10);
        let answer = traced_engine
            .execute_select(&sel, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        let trace = answer.trace.expect("select trace");
        assert!(!trace.levels.is_empty());
        assert_eq!(trace.final_level, answer.level.name());
    }

    #[test]
    fn aggregate_entry_point_rejects_select_queries() {
        let table = base_table(1_000);
        let h = hierarchy(&table, vec![100]);
        let query = Query::select("photoobj", Predicate::True);
        assert!(engine()
            .execute_aggregate(&query, &h, Some(&table), &QueryBounds::default())
            .is_err());
        let agg = Query::count("photoobj", Predicate::True);
        assert!(engine()
            .execute_select(&agg, &h, Some(&table), &QueryBounds::default())
            .is_err());
    }

    #[test]
    fn select_returns_limit_rows_from_impression() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 1_000]);
        let query = Query::select("photoobj", Predicate::lt("ra", 180.0)).with_limit(100);
        let answer = engine()
            .execute_select(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        assert_eq!(answer.returned_rows(), 100);
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        // the returned rows all satisfy the predicate
        let check = Predicate::lt("ra", 180.0).evaluate(&answer.rows).unwrap();
        assert_eq!(check.len(), 100);
        // and the estimated total is in the right ballpark (50k)
        assert!((answer.estimated_total_matches - 50_000.0).abs() / 50_000.0 < 0.2);
    }

    #[test]
    fn selective_select_escalates_for_enough_rows() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 500]);
        // 0.5% selectivity: the 500-row layer holds ~2-3 matches, not 50
        let query = Query::select("photoobj", Predicate::lt("ra", 1.8)).with_limit(50);
        let answer = engine()
            .execute_select(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        assert!(answer.returned_rows() >= 50 || answer.level == EvaluationLevel::BaseData);
        assert!(answer.escalations >= 1);
    }

    #[test]
    fn select_without_limit_falls_through_to_base() {
        let table = base_table(5_000);
        let h = hierarchy(&table, vec![500]);
        let query = Query::select("photoobj", Predicate::lt("ra", 36.0));
        let answer = engine()
            .execute_select(&query, &h, Some(&table), &QueryBounds::default())
            .unwrap();
        assert_eq!(answer.level, EvaluationLevel::BaseData);
        // ra < 36 matches i % 3600 < 360: one full cycle plus the partial
        // cycle 3600..5000 contributes another 360.
        assert_eq!(answer.returned_rows(), 720);
    }

    #[test]
    fn select_with_row_budget_stays_on_impression() {
        let table = base_table(100_000);
        let h = hierarchy(&table, vec![10_000, 1_000]);
        let query = Query::select("photoobj", Predicate::lt("ra", 1.8)).with_limit(500);
        let bounds = QueryBounds::row_budget(1_000);
        let answer = engine()
            .execute_select(&query, &h, Some(&table), &bounds)
            .unwrap();
        // cannot satisfy 500 matches from a 1000-row impression at 0.5%
        // selectivity, but the budget forbids escalation
        assert_eq!(answer.level, EvaluationLevel::Layer(2));
        assert!(answer.returned_rows() < 500);
        assert!(answer.rows_scanned <= 1_000);
    }
}
