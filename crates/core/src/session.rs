//! Exploration sessions: the full SciBORQ loop.
//!
//! A session ties everything together the way Section 3 describes the
//! system: the warehouse catalog, the query log and predicate set, one
//! impression hierarchy per (table, policy), the bounded query engine, and
//! the adaptive maintenance that reacts to workload shifts and incremental
//! loads.

use crate::answer::{ApproximateAnswer, SelectAnswer};
use crate::config::SciborqConfig;
use crate::engine::{BoundedQueryEngine, QueryBounds};
use crate::error::{Result, SciborqError};
use crate::layer::LayerHierarchy;
use crate::maintenance::{AdaptiveMaintainer, MaintenanceDecision};
use crate::policy::SamplingPolicy;
use sciborq_columnar::{Catalog, RecordBatch};
use sciborq_workload::{AttributeDomain, PredicateSet, Query, QueryKind, QueryLog};
use std::collections::BTreeMap;

/// The result of executing a query through a session.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// An aggregate answer with error bounds.
    Aggregate(ApproximateAnswer),
    /// A row-returning answer.
    Rows(SelectAnswer),
}

impl QueryOutcome {
    /// The aggregate answer, if this outcome is one.
    pub fn as_aggregate(&self) -> Option<&ApproximateAnswer> {
        match self {
            QueryOutcome::Aggregate(a) => Some(a),
            QueryOutcome::Rows(_) => None,
        }
    }

    /// The row answer, if this outcome is one.
    pub fn as_rows(&self) -> Option<&SelectAnswer> {
        match self {
            QueryOutcome::Rows(r) => Some(r),
            QueryOutcome::Aggregate(_) => None,
        }
    }
}

/// A SciBORQ exploration session over a warehouse catalog.
#[derive(Debug, Clone)]
pub struct ExplorationSession {
    catalog: Catalog,
    config: SciborqConfig,
    engine: BoundedQueryEngine,
    predicate_set: PredicateSet,
    query_log: QueryLog,
    hierarchies: BTreeMap<String, LayerHierarchy>,
    maintainer: AdaptiveMaintainer,
    rebuilds: u64,
}

impl ExplorationSession {
    /// Create a session over a catalog.
    ///
    /// `tracked_attributes` lists the "interesting attributes" whose
    /// requested values form the predicate set (e.g. `ra`, `dec` with their
    /// domains).
    pub fn new(
        catalog: Catalog,
        config: SciborqConfig,
        tracked_attributes: &[(&str, AttributeDomain)],
    ) -> Result<Self> {
        config.validate().map_err(SciborqError::InvalidConfig)?;
        let engine = BoundedQueryEngine::new(config.clone())?;
        let predicate_set = PredicateSet::new(tracked_attributes)?;
        Ok(ExplorationSession {
            catalog,
            config,
            engine,
            predicate_set,
            query_log: QueryLog::new(10_000),
            hierarchies: BTreeMap::new(),
            maintainer: AdaptiveMaintainer::new(),
            rebuilds: 0,
        })
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session configuration.
    pub fn config(&self) -> &SciborqConfig {
        &self.config
    }

    /// The predicate set accumulated so far.
    pub fn predicate_set(&self) -> &PredicateSet {
        &self.predicate_set
    }

    /// The query log.
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// Number of adaptive rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The hierarchy built for a table, if any.
    pub fn hierarchy(&self, table: &str) -> Option<&LayerHierarchy> {
        self.hierarchies.get(table)
    }

    /// Build (or rebuild) the impression hierarchy for a table under the
    /// given policy, sampling the current base data.
    pub fn create_impressions(&mut self, table: &str, policy: SamplingPolicy) -> Result<()> {
        let handle = self
            .catalog
            .table(table)
            .map_err(|_| SciborqError::UnknownTable(table.to_owned()))?;
        let guard = handle.read();
        let hierarchy = LayerHierarchy::build_from_table(
            &guard,
            policy,
            &self.config,
            Some(&self.predicate_set),
        )?;
        drop(guard);
        self.hierarchies.insert(table.to_owned(), hierarchy);
        self.maintainer
            .update_reference(&self.predicate_set, &self.config);
        Ok(())
    }

    /// Ingest an incremental load: append the batch to the base table and
    /// stream it through the table's impression hierarchy (if one exists).
    pub fn load(&mut self, table: &str, batch: &RecordBatch) -> Result<()> {
        let handle = self
            .catalog
            .table(table)
            .map_err(|_| SciborqError::UnknownTable(table.to_owned()))?;
        handle.write().append_batch(batch)?;
        if let Some(hierarchy) = self.hierarchies.get_mut(table) {
            hierarchy.observe_batch(batch, Some(&self.predicate_set))?;
            hierarchy.refresh()?;
        }
        Ok(())
    }

    /// Execute a query under bounds: the query is logged (feeding the
    /// predicate set), evaluated through the bounded engine, and the answer
    /// returned.
    pub fn execute(&mut self, query: &Query, bounds: &QueryBounds) -> Result<QueryOutcome> {
        self.query_log.record(query.clone());
        self.predicate_set.log_query(query);

        let hierarchy = self
            .hierarchies
            .get(&query.table)
            .ok_or_else(|| SciborqError::UnknownTable(query.table.clone()))?;
        let base_handle = self.catalog.table(&query.table).ok();
        let base_guard = base_handle.as_ref().map(|h| h.read());
        let base_table = base_guard.as_deref();

        match query.kind {
            QueryKind::Select => Ok(QueryOutcome::Rows(
                self.engine
                    .execute_select(query, hierarchy, base_table, bounds)?,
            )),
            QueryKind::Aggregate { .. } => Ok(QueryOutcome::Aggregate(
                self.engine
                    .execute_aggregate(query, hierarchy, base_table, bounds)?,
            )),
        }
    }

    /// Execute with the session's default bounds (the configured default
    /// error bound at the configured confidence).
    pub fn execute_with_defaults(&mut self, query: &Query) -> Result<QueryOutcome> {
        let bounds = QueryBounds {
            max_relative_error: Some(self.config.default_max_error),
            confidence: self.config.confidence,
            ..QueryBounds::default()
        };
        self.execute(query, &bounds)
    }

    /// Check whether the workload focus has shifted beyond the adaptation
    /// threshold and, if so, rebuild every workload-driven hierarchy from its
    /// base table. Returns the maintenance decision that was made.
    pub fn adapt(&mut self) -> Result<MaintenanceDecision> {
        let decision = self.maintainer.evaluate(&self.predicate_set, &self.config);
        if !decision.should_rebuild {
            return Ok(decision);
        }
        let tables: Vec<String> = self
            .hierarchies
            .iter()
            .filter(|(_, h)| h.policy().is_workload_driven())
            .map(|(name, _)| name.clone())
            .collect();
        for table in tables {
            let handle = self
                .catalog
                .table(&table)
                .map_err(|_| SciborqError::UnknownTable(table.clone()))?;
            let guard = handle.read();
            if let Some(hierarchy) = self.hierarchies.get_mut(&table) {
                hierarchy.rebuild_from_table(&guard, Some(&self.predicate_set))?;
                self.rebuilds += 1;
            }
        }
        self.maintainer
            .update_reference(&self.predicate_set, &self.config);
        Ok(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::EvaluationLevel;
    use sciborq_columnar::{
        DataType, Field, Predicate, RecordBatchBuilder, Schema, SchemaRef, Table, Value,
    };

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap()
    }

    fn batch(start: i64, rows: usize, ra_center: Option<f64>) -> RecordBatch {
        let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
        for i in 0..rows as i64 {
            let objid = start + i;
            let ra = match ra_center {
                Some(c) => c + (objid % 100) as f64 * 0.05,
                None => (objid * 13 % 3600) as f64 / 10.0,
            };
            b.push_row(&[
                Value::Int64(objid),
                Value::Float64(ra),
                Value::Float64(15.0 + (objid % 10) as f64),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    fn catalog_with_base(rows: usize) -> Catalog {
        let catalog = Catalog::new();
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&batch(1, rows, None)).unwrap();
        catalog.register(t).unwrap();
        catalog
    }

    fn session(rows: usize) -> ExplorationSession {
        let config = SciborqConfig::with_layers(vec![2_000, 200]);
        ExplorationSession::new(
            catalog_with_base(rows),
            config,
            &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
        )
        .unwrap()
    }

    #[test]
    fn invalid_config_rejected() {
        let err = ExplorationSession::new(Catalog::new(), SciborqConfig::with_layers(vec![]), &[])
            .unwrap_err();
        assert!(matches!(err, SciborqError::InvalidConfig(_)));
    }

    #[test]
    fn create_impressions_requires_known_table() {
        let mut s = session(5_000);
        assert!(matches!(
            s.create_impressions("missing", SamplingPolicy::Uniform),
            Err(SciborqError::UnknownTable(_))
        ));
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        assert!(s.hierarchy("photoobj").is_some());
        assert_eq!(s.hierarchy("photoobj").unwrap().layer_count(), 2);
    }

    #[test]
    fn query_without_impressions_is_an_error() {
        let mut s = session(1_000);
        let q = Query::count("photoobj", Predicate::True);
        assert!(matches!(
            s.execute(&q, &QueryBounds::default()),
            Err(SciborqError::UnknownTable(_))
        ));
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let mut s = session(50_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let q = Query::count("photoobj", Predicate::lt("ra", 90.0));
        let outcome = s.execute(&q, &QueryBounds::max_error(0.1)).unwrap();
        let answer = outcome.as_aggregate().unwrap();
        let truth = 12_500.0;
        assert!((answer.value.unwrap() - truth).abs() / truth < 0.15);
        assert!(outcome.as_rows().is_none());
        // the query was logged and its predicate values recorded
        assert_eq!(s.query_log().len(), 1);
        assert!(s.predicate_set().observed_values("ra") > 0);
    }

    #[test]
    fn select_query_end_to_end() {
        let mut s = session(20_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let q = Query::select("photoobj", Predicate::lt("ra", 180.0)).with_limit(25);
        let outcome = s.execute_with_defaults(&q).unwrap();
        let rows = outcome.as_rows().unwrap();
        assert_eq!(rows.returned_rows(), 25);
        assert!(outcome.as_aggregate().is_none());
    }

    #[test]
    fn incremental_load_updates_base_and_impressions() {
        let mut s = session(10_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let before = s.hierarchy("photoobj").unwrap().observed_rows();
        s.load("photoobj", &batch(10_001, 5_000, None)).unwrap();
        let after = s.hierarchy("photoobj").unwrap().observed_rows();
        assert_eq!(after, before + 5_000);
        let base_rows = s.catalog().table("photoobj").unwrap().read().row_count();
        assert_eq!(base_rows, 15_000);
        // counting still reflects the new load: COUNT(*) over everything has
        // zero sampling variance, so even a tiny error bound is satisfied on
        // an impression — and the expanded estimate equals the new base size.
        let q = Query::count("photoobj", Predicate::True);
        let outcome = s.execute(&q, &QueryBounds::max_error(1e-9)).unwrap();
        let answer = outcome.as_aggregate().unwrap();
        assert_eq!(answer.value.unwrap(), 15_000.0);
        assert!(answer.error_bound_met);
        // a genuinely selective predicate with a near-zero error bound must
        // still fall through to the base data
        let selective = Query::count("photoobj", Predicate::lt("objid", 101.0));
        let outcome = s
            .execute(&selective, &QueryBounds::max_error(1e-9))
            .unwrap();
        let exact = outcome.as_aggregate().unwrap();
        assert_eq!(exact.level, EvaluationLevel::BaseData);
        assert_eq!(exact.value.unwrap(), 100.0);
        assert!(matches!(
            s.load("missing", &batch(1, 10, None)),
            Err(SciborqError::UnknownTable(_))
        ));
    }

    #[test]
    fn adaptation_rebuilds_biased_impressions_on_focus_shift() {
        let mut s = session(40_000);
        // Phase 1: workload focused on ra ≈ 90
        for _ in 0..30 {
            let q = Query::count("photoobj", Predicate::between("ra", 88.0, 92.0));
            s.query_log.record(q.clone());
            s.predicate_set.log_query(&q);
        }
        s.create_impressions("photoobj", SamplingPolicy::biased(["ra"]))
            .unwrap();
        let enrichment = |session: &ExplorationSession, lo: f64, hi: f64| {
            let h = session.hierarchy("photoobj").unwrap();
            let layer = &h.layers()[0];
            Predicate::between("ra", lo, hi)
                .evaluate(layer.data())
                .unwrap()
                .len() as f64
                / layer.row_count() as f64
        };
        let phase1_share = enrichment(&s, 88.0, 92.0);
        assert!(phase1_share > 0.05, "phase-1 focal share {phase1_share}");
        // without a shift, adapt() is a no-op
        let decision = s.adapt().unwrap();
        assert!(!decision.should_rebuild);
        assert_eq!(s.rebuilds(), 0);

        // Phase 2: the scientist moves to ra ≈ 270
        for _ in 0..120 {
            let q = Query::count("photoobj", Predicate::between("ra", 268.0, 272.0));
            let _ = s.execute(&q, &QueryBounds::default());
        }
        let decision = s.adapt().unwrap();
        assert!(decision.should_rebuild, "shift {}", decision.max_shift);
        assert_eq!(s.rebuilds(), 1);
        let phase2_share = enrichment(&s, 268.0, 272.0);
        assert!(
            phase2_share > phase1_share / 2.0,
            "after adaptation the new focus must be enriched (share {phase2_share})"
        );
    }

    #[test]
    fn uniform_hierarchies_are_not_rebuilt_by_adaptation() {
        let mut s = session(10_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        for _ in 0..100 {
            let q = Query::count("photoobj", Predicate::between("ra", 10.0, 12.0));
            let _ = s.execute(&q, &QueryBounds::default());
        }
        let decision = s.adapt().unwrap();
        // the focus shifted (no reference initially matched), but no
        // workload-driven hierarchy exists, so nothing is rebuilt
        assert_eq!(s.rebuilds(), 0);
        let _ = decision;
    }
}
