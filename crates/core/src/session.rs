//! Exploration sessions: the full SciBORQ loop.
//!
//! A session ties everything together the way Section 3 describes the
//! system: the warehouse catalog, the query log and predicate set, one
//! impression hierarchy per (table, policy), the bounded query engine, and
//! the adaptive maintenance that reacts to workload shifts and incremental
//! loads.
//!
//! A session is **concurrently shareable**: all of its state lives behind
//! interior mutability (mutexes for the workload bookkeeping, a reader–
//! writer lock over the hierarchy map with clone-and-swap updates), so a
//! serving front end can drive one session from many threads through
//! `&self` — including [`ExplorationSession::execute_batch`], which answers
//! several aggregate queries over the same table in one shared scan pass
//! per escalation level.

use crate::answer::{ApproximateAnswer, SelectAnswer};
use crate::config::SciborqConfig;
use crate::engine::{BoundedQueryEngine, QueryBounds};
use crate::error::{Result, SciborqError};
use crate::layer::LayerHierarchy;
use crate::maintenance::{AdaptiveMaintainer, MaintenanceDecision};
use crate::policy::SamplingPolicy;
use parking_lot::{Mutex, MutexGuard, RwLock};
use sciborq_columnar::{Catalog, RecordBatch};
use sciborq_telemetry::{
    AdmissionTrace, Counter, FaultEventKind, Histogram, MetricsRegistry, MetricsSnapshot,
    QueryTrace, TraceRing,
};
use sciborq_workload::{AttributeDomain, PredicateSet, Query, QueryKind, QueryLog};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The result of executing a query through a session.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// An aggregate answer with error bounds.
    Aggregate(ApproximateAnswer),
    /// A row-returning answer.
    Rows(SelectAnswer),
}

impl QueryOutcome {
    /// The aggregate answer, if this outcome is one.
    pub fn as_aggregate(&self) -> Option<&ApproximateAnswer> {
        match self {
            QueryOutcome::Aggregate(a) => Some(a),
            QueryOutcome::Rows(_) => None,
        }
    }

    /// The row answer, if this outcome is one.
    pub fn as_rows(&self) -> Option<&SelectAnswer> {
        match self {
            QueryOutcome::Rows(r) => Some(r),
            QueryOutcome::Aggregate(_) => None,
        }
    }
}

/// The scan costs a query against one table can incur, per escalation
/// level: what a serving layer's admission control reasons about before it
/// lets a query loose on the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanProfile {
    /// Row counts of the impression layers in escalation order (least
    /// detailed first).
    pub layer_rows: Vec<u64>,
    /// Row count of the base table, if it is registered in the catalog.
    pub base_rows: Option<u64>,
}

impl ScanProfile {
    fn admissible(&self, bounds: &QueryBounds) -> impl Iterator<Item = u64> + '_ {
        let budget = bounds.max_rows_scanned;
        self.layer_rows
            .iter()
            .copied()
            .chain(self.base_rows)
            .filter(move |&rows| budget.is_none_or(|b| rows <= b))
    }

    /// The most expensive level (in rows) the engine may scan under
    /// `bounds` — the worst-case cost of a single evaluation, including the
    /// base-data fall-through when the row budget admits it. `None` when no
    /// level is admissible (the engine would report
    /// [`SciborqError::BoundsUnsatisfiable`]).
    pub fn worst_admissible(&self, bounds: &QueryBounds) -> Option<u64> {
        self.admissible(bounds).max()
    }

    /// The cheapest admissible level under `bounds` — the cost the query
    /// degrades to when a serving layer tightens its row budget all the way
    /// down. `None` when no level is admissible.
    pub fn cheapest_admissible(&self, bounds: &QueryBounds) -> Option<u64> {
        self.admissible(bounds).min()
    }
}

/// The session's cached handles into its metrics registry: engine-side
/// signals are recorded once per query through these (one relaxed atomic
/// each), never through a by-name registry lookup on the hot path.
#[derive(Debug)]
struct EngineMetrics {
    /// `engine.queries` — queries executed (including failed ones).
    queries: Arc<Counter>,
    /// `engine.query_errors` — queries that returned an error.
    query_errors: Arc<Counter>,
    /// `engine.escalations` — escalations to more detailed levels.
    escalations: Arc<Counter>,
    /// `engine.rows_scanned` — row positions visited, all levels.
    rows_scanned: Arc<Counter>,
    /// `engine.query_micros` — wall time per answered query.
    query_micros: Arc<Histogram>,
    /// `engine.error_bound_missed` — answers returned with the requested
    /// error bound not met.
    error_bound_missed: Arc<Counter>,
    /// `engine.time_bound_missed` — answers returned past their budget.
    time_bound_missed: Arc<Counter>,
    /// `engine.internal_faults` — queries lost to a caught panic (typed
    /// [`SciborqError::Internal`] replies).
    internal_faults: Arc<Counter>,
    /// `engine.fault_recoveries` — isolated faults recovered bit-identically
    /// (shard fallbacks; the answer is *not* degraded).
    fault_recoveries: Arc<Counter>,
    /// `engine.degraded_queries` — answers produced down the degradation
    /// ladder (at least one whole level was lost).
    degraded_queries: Arc<Counter>,
}

impl EngineMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        EngineMetrics {
            queries: registry.counter("engine.queries"),
            query_errors: registry.counter("engine.query_errors"),
            escalations: registry.counter("engine.escalations"),
            rows_scanned: registry.counter("engine.rows_scanned"),
            query_micros: registry.histogram("engine.query_micros"),
            error_bound_missed: registry.counter("engine.error_bound_missed"),
            time_bound_missed: registry.counter("engine.time_bound_missed"),
            internal_faults: registry.counter("engine.internal_faults"),
            fault_recoveries: registry.counter("engine.fault_recoveries"),
            degraded_queries: registry.counter("engine.degraded_queries"),
        }
    }
}

/// A SciBORQ exploration session over a warehouse catalog.
#[derive(Debug)]
pub struct ExplorationSession {
    catalog: Catalog,
    config: SciborqConfig,
    engine: BoundedQueryEngine,
    predicate_set: Mutex<PredicateSet>,
    query_log: Mutex<QueryLog>,
    hierarchies: RwLock<BTreeMap<String, Arc<LayerHierarchy>>>,
    maintainer: Mutex<AdaptiveMaintainer>,
    rebuilds: AtomicU64,
    metrics: Arc<MetricsRegistry>,
    engine_metrics: EngineMetrics,
    traces: TraceRing,
}

impl ExplorationSession {
    /// Create a session over a catalog.
    ///
    /// `tracked_attributes` lists the "interesting attributes" whose
    /// requested values form the predicate set (e.g. `ra`, `dec` with their
    /// domains).
    pub fn new(
        catalog: Catalog,
        config: SciborqConfig,
        tracked_attributes: &[(&str, AttributeDomain)],
    ) -> Result<Self> {
        config.validate().map_err(SciborqError::InvalidConfig)?;
        let engine = BoundedQueryEngine::new(config.clone())?;
        let predicate_set = PredicateSet::new(tracked_attributes)?;
        let query_log = QueryLog::new(config.query_log_capacity);
        let metrics = Arc::new(MetricsRegistry::new());
        let engine_metrics = EngineMetrics::register(&metrics);
        let traces = TraceRing::new(config.trace_capacity);
        Ok(ExplorationSession {
            catalog,
            config,
            engine,
            predicate_set: Mutex::new(predicate_set),
            query_log: Mutex::new(query_log),
            hierarchies: RwLock::new(BTreeMap::new()),
            maintainer: Mutex::new(AdaptiveMaintainer::new()),
            rebuilds: AtomicU64::new(0),
            metrics,
            engine_metrics,
            traces,
        })
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The session configuration.
    pub fn config(&self) -> &SciborqConfig {
        &self.config
    }

    /// The predicate set accumulated so far (a lock guard; drop it before
    /// executing queries from the same thread, and never call this twice
    /// within one statement — the first guard is still alive and the
    /// second lock attempt deadlocks).
    pub fn predicate_set(&self) -> MutexGuard<'_, PredicateSet> {
        self.predicate_set.lock()
    }

    /// The query log (a lock guard; drop it before executing queries from
    /// the same thread, and never call this twice within one statement —
    /// the first guard is still alive and the second lock attempt
    /// deadlocks).
    pub fn query_log(&self) -> MutexGuard<'_, QueryLog> {
        self.query_log.lock()
    }

    /// Number of adaptive rebuilds performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// The session's metrics registry. Engine-side signals
    /// (`engine.queries`, `engine.rows_scanned[.<level>]`,
    /// `engine.query_micros`, …) are registered here; a serving layer adds
    /// its own metrics to the same registry so one snapshot covers the
    /// whole process.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// A point-in-time freeze of every registered metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The most recent `limit` query traces, newest first. Empty unless the
    /// configuration's `collect_traces` knob is on.
    pub fn recent_traces(&self, limit: usize) -> Vec<QueryTrace> {
        self.traces.recent(limit)
    }

    /// The hierarchy built for a table, if any (a snapshot: concurrent
    /// rebuilds swap in a fresh hierarchy without disturbing this handle).
    pub fn hierarchy(&self, table: &str) -> Option<Arc<LayerHierarchy>> {
        self.hierarchies.read().get(table).cloned()
    }

    /// The hierarchy for `table`, distinguishing the two ways it can be
    /// missing: [`SciborqError::NoImpressions`] when the base table exists
    /// but `create_impressions` was never called for it (a recoverable
    /// state), [`SciborqError::UnknownTable`] when the catalog has never
    /// heard of the table (a bad request).
    fn hierarchy_for(&self, table: &str) -> Result<Arc<LayerHierarchy>> {
        if let Some(hierarchy) = self.hierarchies.read().get(table) {
            return Ok(Arc::clone(hierarchy));
        }
        if self.catalog.table(table).is_ok() {
            Err(SciborqError::NoImpressions {
                table: table.to_owned(),
            })
        } else {
            Err(SciborqError::UnknownTable(table.to_owned()))
        }
    }

    /// The per-level scan costs of queries against `table`: impression row
    /// counts in escalation order plus the base-table size. Serving-layer
    /// admission control prices queries with this before submitting them.
    pub fn scan_profile(&self, table: &str) -> Result<ScanProfile> {
        let hierarchy = self.hierarchy_for(table)?;
        let layer_rows = hierarchy
            .escalation_order()
            .map(|impression| impression.row_count() as u64)
            .collect();
        let base_rows = self
            .catalog
            .table(table)
            .ok()
            .map(|handle| handle.read().row_count() as u64);
        Ok(ScanProfile {
            layer_rows,
            base_rows,
        })
    }

    /// Build (or rebuild) the impression hierarchy for a table under the
    /// given policy, sampling the current base data.
    pub fn create_impressions(&self, table: &str, policy: SamplingPolicy) -> Result<()> {
        let handle = self
            .catalog
            .table(table)
            .map_err(|_| SciborqError::UnknownTable(table.to_owned()))?;
        let guard = handle.read();
        let hierarchy = {
            let predicate_set = self.predicate_set.lock();
            LayerHierarchy::build_from_table(&guard, policy, &self.config, Some(&predicate_set))?
        };
        drop(guard);
        self.hierarchies
            .write()
            .insert(table.to_owned(), Arc::new(hierarchy));
        let predicate_set = self.predicate_set.lock();
        self.maintainer
            .lock()
            .update_reference(&predicate_set, &self.config);
        Ok(())
    }

    /// Ingest an incremental load: append the batch to the base table and
    /// stream it through the table's impression hierarchy (if one exists).
    /// The hierarchy is updated copy-on-write: readers holding the previous
    /// snapshot are undisturbed.
    pub fn load(&self, table: &str, batch: &RecordBatch) -> Result<()> {
        let handle = self
            .catalog
            .table(table)
            .map_err(|_| SciborqError::UnknownTable(table.to_owned()))?;
        handle.write().append_batch(batch)?;
        // Hold the write lock across the clone-modify-swap so concurrent
        // loads serialize instead of losing each other's updates.
        let mut hierarchies = self.hierarchies.write();
        if let Some(current) = hierarchies.get(table) {
            let mut updated = (**current).clone();
            {
                let predicate_set = self.predicate_set.lock();
                updated.observe_batch(batch, Some(&predicate_set))?;
            }
            updated.refresh()?;
            hierarchies.insert(table.to_owned(), Arc::new(updated));
        }
        Ok(())
    }

    /// Execute a query under bounds: the query is logged (feeding the
    /// predicate set), evaluated through the bounded engine, and the answer
    /// returned.
    pub fn execute(&self, query: &Query, bounds: &QueryBounds) -> Result<QueryOutcome> {
        self.execute_with_admission(query, bounds, None)
    }

    /// [`ExplorationSession::execute`], with the serving layer's admission
    /// verdict attached: when tracing is on, `admission` is stamped onto the
    /// answer's trace (queue wait, downgrade, priced cost) before the trace
    /// is retained in the session's ring.
    pub fn execute_with_admission(
        &self,
        query: &Query,
        bounds: &QueryBounds,
        admission: Option<AdmissionTrace>,
    ) -> Result<QueryOutcome> {
        self.query_log.lock().record(query.clone());
        self.predicate_set.lock().log_query(query);

        let hierarchy = self.hierarchy_for(&query.table)?;
        let base_handle = self.catalog.table(&query.table).ok();
        let base_guard = base_handle.as_ref().map(|h| h.read());
        let base_table = base_guard.as_deref();

        // The outermost isolation seam: a panic that slipped past the shard
        // and level rungs (or corrupted engine state between them) abandons
        // *this* query with a typed reply and leaves the session — and every
        // concurrent query — untouched. The engine holds no locks across an
        // evaluation, so unwinding here cannot strand shared state.
        let attempt = catch_unwind(AssertUnwindSafe(|| match query.kind {
            QueryKind::Select => self
                .engine
                .execute_select(query, &hierarchy, base_table, bounds)
                .map(QueryOutcome::Rows),
            QueryKind::Aggregate { .. } => self
                .engine
                .execute_aggregate(query, &hierarchy, base_table, bounds)
                .map(QueryOutcome::Aggregate),
        }));
        let mut result = attempt.unwrap_or_else(|_| {
            Err(SciborqError::Internal {
                site: "session.query".to_owned(),
            })
        });
        self.observe_outcome(&mut result, admission);
        result
    }

    /// Execute with the session's default bounds (the configured default
    /// error bound at the configured confidence).
    pub fn execute_with_defaults(&self, query: &Query) -> Result<QueryOutcome> {
        let bounds = QueryBounds {
            max_relative_error: Some(self.config.default_max_error),
            confidence: self.config.confidence,
            ..QueryBounds::default()
        };
        self.execute(query, &bounds)
    }

    /// Execute a batch of queries, sharing scan passes between aggregate
    /// queries over the same table (see
    /// [`BoundedQueryEngine::execute_aggregate_batch`]). Every query is
    /// logged, results come back in request order, and each answer is
    /// bit-identical to what [`ExplorationSession::execute`] would have
    /// produced for that query alone. SELECT queries ride along but are
    /// evaluated individually (their materialised selections cannot share a
    /// sink).
    pub fn execute_batch(&self, requests: &[(Query, QueryBounds)]) -> Vec<Result<QueryOutcome>> {
        self.execute_batch_with_admission(requests, &[])
    }

    /// [`ExplorationSession::execute_batch`], with per-request admission
    /// verdicts from the serving layer: `admissions[i]` (when present) is
    /// stamped onto request `i`'s trace. A shorter-than-`requests` slice
    /// leaves the tail untouched, so direct callers pass `&[]`.
    pub fn execute_batch_with_admission(
        &self,
        requests: &[(Query, QueryBounds)],
        admissions: &[Option<AdmissionTrace>],
    ) -> Vec<Result<QueryOutcome>> {
        {
            let mut query_log = self.query_log.lock();
            let mut predicate_set = self.predicate_set.lock();
            for (query, _) in requests {
                query_log.record(query.clone());
                predicate_set.log_query(query);
            }
        }

        let mut results: Vec<Option<Result<QueryOutcome>>> =
            requests.iter().map(|_| None).collect();
        let mut by_table: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, (query, _)) in requests.iter().enumerate() {
            by_table.entry(query.table.as_str()).or_default().push(i);
        }

        for (table, indices) in by_table {
            let hierarchy = match self.hierarchy_for(table) {
                Ok(hierarchy) => hierarchy,
                Err(err) => {
                    for i in indices {
                        results[i] = Some(Err(err.clone()));
                    }
                    continue;
                }
            };
            let base_handle = self.catalog.table(table).ok();
            let base_guard = base_handle.as_ref().map(|h| h.read());
            let base_table = base_guard.as_deref();

            let mut aggregates: Vec<usize> = Vec::new();
            for i in indices {
                let (query, bounds) = &requests[i];
                match query.kind {
                    QueryKind::Select => {
                        results[i] = Some(
                            self.engine
                                .execute_select(query, &hierarchy, base_table, bounds)
                                .map(QueryOutcome::Rows),
                        );
                    }
                    QueryKind::Aggregate { .. } => aggregates.push(i),
                }
            }
            if aggregates.is_empty() {
                continue;
            }
            let batch: Vec<(&Query, &QueryBounds)> = aggregates
                .iter()
                .map(|&i| (&requests[i].0, &requests[i].1))
                .collect();
            let answers = self
                .engine
                .execute_aggregate_batch(&batch, &hierarchy, base_table);
            for (i, answer) in aggregates.into_iter().zip(answers) {
                results[i] = Some(answer.map(QueryOutcome::Aggregate));
            }
        }

        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let mut result = r.expect("every request answered");
                self.observe_outcome(&mut result, admissions.get(i).cloned().flatten());
                result
            })
            .collect()
    }

    /// Record a finished query into the metrics registry and — when a trace
    /// was collected — stamp the admission verdict onto it and retain it in
    /// the trace ring. Observation only: the result's answer bits are never
    /// touched.
    fn observe_outcome(
        &self,
        result: &mut Result<QueryOutcome>,
        admission: Option<AdmissionTrace>,
    ) {
        let m = &self.engine_metrics;
        m.queries.inc();
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(err) => {
                m.query_errors.inc();
                if matches!(err, SciborqError::Internal { .. }) {
                    m.internal_faults.inc();
                }
                return;
            }
        };
        let (escalations, rows_scanned, elapsed, level_scans, bounds_missed, faults, trace) =
            match outcome {
                QueryOutcome::Aggregate(a) => (
                    a.escalations,
                    a.rows_scanned,
                    a.elapsed,
                    &a.level_scans,
                    (!a.error_bound_met, !a.time_bound_met),
                    (&a.fault_events, a.degraded),
                    &mut a.trace,
                ),
                QueryOutcome::Rows(r) => (
                    r.escalations,
                    r.rows_scanned,
                    r.elapsed,
                    &r.level_scans,
                    (false, !r.time_bound_met),
                    (&r.fault_events, r.degraded),
                    &mut r.trace,
                ),
            };
        for event in faults.0 {
            if event.kind == FaultEventKind::Recovery {
                m.fault_recoveries.inc();
            }
        }
        if faults.1 {
            m.degraded_queries.inc();
        }
        m.escalations.add(escalations as u64);
        m.rows_scanned.add(rows_scanned);
        for scan in level_scans {
            self.metrics
                .counter(&format!("engine.rows_scanned.{}", scan.level.name()))
                .add(scan.rows_scanned);
        }
        m.query_micros
            .observe(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
        if bounds_missed.0 {
            m.error_bound_missed.inc();
        }
        if bounds_missed.1 {
            m.time_bound_missed.inc();
        }
        if let Some(trace) = trace {
            trace.admission = admission;
            self.traces.record(trace.clone());
        }
    }

    /// Check whether the workload focus has shifted beyond the adaptation
    /// threshold and, if so, rebuild every workload-driven hierarchy from its
    /// base table. Returns the maintenance decision that was made.
    ///
    /// The maintainer's workload reference is only advanced when at least
    /// one hierarchy was actually rebuilt: a shift detected while no
    /// workload-driven hierarchy exists stays pending, so the rebuild
    /// happens as soon as such a hierarchy appears instead of being
    /// silently forgotten.
    pub fn adapt(&self) -> Result<MaintenanceDecision> {
        let decision = {
            let predicate_set = self.predicate_set.lock();
            self.maintainer
                .lock()
                .evaluate(&predicate_set, &self.config)
        };
        if !decision.should_rebuild {
            return Ok(decision);
        }
        let tables: Vec<String> = self
            .hierarchies
            .read()
            .iter()
            .filter(|(_, h)| h.policy().is_workload_driven())
            .map(|(name, _)| name.clone())
            .collect();
        let mut rebuilt = 0u64;
        let mut faulted = 0u64;
        for table in tables {
            let handle = self
                .catalog
                .table(&table)
                .map_err(|_| SciborqError::UnknownTable(table.clone()))?;
            // Isolate each rebuild: hierarchies swap copy-on-write, so a
            // panic mid-rebuild (real or an injected `maintenance.rebuild`
            // fault) discards only the half-built clone — the serving
            // hierarchy stays the previous, fully consistent snapshot, and
            // other tables still get their rebuild.
            let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<bool> {
                #[cfg(feature = "fault-injection")]
                sciborq_telemetry::fault_point!("maintenance.rebuild");
                let guard = handle.read();
                let mut hierarchies = self.hierarchies.write();
                if let Some(current) = hierarchies.get(&table) {
                    let mut updated = (**current).clone();
                    {
                        let predicate_set = self.predicate_set.lock();
                        updated.rebuild_from_table(&guard, Some(&predicate_set))?;
                    }
                    hierarchies.insert(table.clone(), Arc::new(updated));
                    return Ok(true);
                }
                Ok(false)
            }));
            match attempt {
                Ok(outcome) => {
                    if outcome? {
                        rebuilt += 1;
                    }
                }
                Err(_) => {
                    faulted += 1;
                    self.metrics.counter("maintenance.rebuild_faults").inc();
                }
            }
        }
        self.rebuilds.fetch_add(rebuilt, Ordering::Relaxed);
        if rebuilt > 0 && faulted == 0 {
            // Only a fully successful round advances the workload reference:
            // a lost rebuild keeps the shift pending, so the next adapt()
            // retries it instead of silently forgetting it.
            let predicate_set = self.predicate_set.lock();
            self.maintainer
                .lock()
                .update_reference(&predicate_set, &self.config);
        }
        if faulted > 0 {
            // The decision stands and any completed rebuilds are kept, but
            // the caller is told a rebuild was lost rather than pretending
            // adaptation fully happened.
            return Err(SciborqError::Internal {
                site: "maintenance.rebuild".to_owned(),
            });
        }
        Ok(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::EvaluationLevel;
    use sciborq_columnar::{
        AggregateKind, DataType, Field, Predicate, RecordBatchBuilder, Schema, SchemaRef, Table,
        Value,
    };

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap()
    }

    fn batch(start: i64, rows: usize, ra_center: Option<f64>) -> RecordBatch {
        let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
        for i in 0..rows as i64 {
            let objid = start + i;
            let ra = match ra_center {
                Some(c) => c + (objid % 100) as f64 * 0.05,
                None => (objid * 13 % 3600) as f64 / 10.0,
            };
            b.push_row(&[
                Value::Int64(objid),
                Value::Float64(ra),
                Value::Float64(15.0 + (objid % 10) as f64),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    fn catalog_with_base(rows: usize) -> Catalog {
        let catalog = Catalog::new();
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&batch(1, rows, None)).unwrap();
        catalog.register(t).unwrap();
        catalog
    }

    fn session(rows: usize) -> ExplorationSession {
        let config = SciborqConfig::with_layers(vec![2_000, 200]);
        ExplorationSession::new(
            catalog_with_base(rows),
            config,
            &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
        )
        .unwrap()
    }

    #[test]
    fn invalid_config_rejected() {
        let err = ExplorationSession::new(Catalog::new(), SciborqConfig::with_layers(vec![]), &[])
            .unwrap_err();
        assert!(matches!(err, SciborqError::InvalidConfig(_)));
    }

    #[test]
    fn query_log_capacity_is_taken_from_config() {
        let config = SciborqConfig::with_layers(vec![2_000, 200]).with_query_log_capacity(3);
        let s = ExplorationSession::new(
            catalog_with_base(5_000),
            config,
            &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
        )
        .unwrap();
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        for _ in 0..10 {
            let q = Query::count("photoobj", Predicate::True);
            s.execute(&q, &QueryBounds::default()).unwrap();
        }
        // the window holds only the configured capacity, but records totals
        assert_eq!(s.query_log().len(), 3);
        assert_eq!(s.query_log().total_recorded(), 10);
    }

    #[test]
    fn create_impressions_requires_known_table() {
        let s = session(5_000);
        assert!(matches!(
            s.create_impressions("missing", SamplingPolicy::Uniform),
            Err(SciborqError::UnknownTable(_))
        ));
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        assert!(s.hierarchy("photoobj").is_some());
        assert_eq!(s.hierarchy("photoobj").unwrap().layer_count(), 2);
    }

    #[test]
    fn query_without_impressions_is_an_error() {
        let s = session(1_000);
        // the table exists but has no hierarchy yet: a recoverable state,
        // reported distinctly from a bad table name
        let q = Query::count("photoobj", Predicate::True);
        assert!(matches!(
            s.execute(&q, &QueryBounds::default()),
            Err(SciborqError::NoImpressions { table }) if table == "photoobj"
        ));
        // a table the catalog has never heard of stays UnknownTable
        let q = Query::count("nonexistent", Predicate::True);
        assert!(matches!(
            s.execute(&q, &QueryBounds::default()),
            Err(SciborqError::UnknownTable(_))
        ));
    }

    #[test]
    fn scan_profile_reports_costs_and_admissibility() {
        let s = session(20_000);
        assert!(matches!(
            s.scan_profile("photoobj"),
            Err(SciborqError::NoImpressions { .. })
        ));
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let profile = s.scan_profile("photoobj").unwrap();
        // escalation order: least detailed first
        assert_eq!(profile.layer_rows, vec![200, 2_000]);
        assert_eq!(profile.base_rows, Some(20_000));
        // no row budget: everything is admissible, the base data is worst
        let unbounded = QueryBounds::default();
        assert_eq!(profile.worst_admissible(&unbounded), Some(20_000));
        assert_eq!(profile.cheapest_admissible(&unbounded), Some(200));
        // a budget between the layers admits only the small one
        let tight = QueryBounds::row_budget(500);
        assert_eq!(profile.worst_admissible(&tight), Some(200));
        assert_eq!(profile.cheapest_admissible(&tight), Some(200));
        // a budget below every level admits nothing
        let impossible = QueryBounds::row_budget(10);
        assert_eq!(profile.worst_admissible(&impossible), None);
        assert!(matches!(
            s.scan_profile("missing"),
            Err(SciborqError::UnknownTable(_))
        ));
    }

    #[test]
    fn aggregate_query_end_to_end() {
        let s = session(50_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let q = Query::count("photoobj", Predicate::lt("ra", 90.0));
        let outcome = s.execute(&q, &QueryBounds::max_error(0.1)).unwrap();
        let answer = outcome.as_aggregate().unwrap();
        let truth = 12_500.0;
        assert!((answer.value.unwrap() - truth).abs() / truth < 0.15);
        assert!(outcome.as_rows().is_none());
        // the query was logged and its predicate values recorded
        assert_eq!(s.query_log().len(), 1);
        assert!(s.predicate_set().observed_values("ra") > 0);
    }

    #[test]
    fn select_query_end_to_end() {
        let s = session(20_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let q = Query::select("photoobj", Predicate::lt("ra", 180.0)).with_limit(25);
        let outcome = s.execute_with_defaults(&q).unwrap();
        let rows = outcome.as_rows().unwrap();
        assert_eq!(rows.returned_rows(), 25);
        assert!(outcome.as_aggregate().is_none());
    }

    #[test]
    fn batched_execution_is_bit_identical_to_serial() {
        let serial = session(50_000);
        let batched = session(50_000);
        serial
            .create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        batched
            .create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();

        let requests: Vec<(Query, QueryBounds)> = vec![
            (
                Query::count("photoobj", Predicate::lt("ra", 90.0)),
                QueryBounds::max_error(0.1),
            ),
            // same predicate + sink as the first query: shares its scan
            (
                Query::count("photoobj", Predicate::lt("ra", 90.0)),
                QueryBounds::max_error(0.02),
            ),
            (
                Query::aggregate(
                    "photoobj",
                    Predicate::lt("ra", 180.0),
                    AggregateKind::Sum,
                    "r_mag",
                ),
                QueryBounds::max_error(0.05),
            ),
            (
                Query::aggregate("photoobj", Predicate::True, AggregateKind::Avg, "r_mag"),
                QueryBounds::max_error(0.05),
            ),
            // escalates all the way into the base data
            (
                Query::count("photoobj", Predicate::lt("objid", 101.0)),
                QueryBounds::max_error(1e-9),
            ),
            // unsatisfiable row budget: a typed error, same as serial
            (
                Query::count("photoobj", Predicate::True),
                QueryBounds::row_budget(10),
            ),
            // a SELECT rides along, executed individually
            (
                Query::select("photoobj", Predicate::lt("ra", 180.0)).with_limit(5),
                QueryBounds::default(),
            ),
        ];

        let batch_results = batched.execute_batch(&requests);
        for ((query, bounds), batch_result) in requests.iter().zip(&batch_results) {
            let serial_result = serial.execute(query, bounds);
            match (&serial_result, batch_result) {
                (Ok(QueryOutcome::Aggregate(a)), Ok(QueryOutcome::Aggregate(b))) => {
                    assert_eq!(
                        a.value.map(f64::to_bits),
                        b.value.map(f64::to_bits),
                        "value bits for {query}"
                    );
                    let bits = |ci: &Option<sciborq_stats::ConfidenceInterval>| {
                        ci.map(|ci| (ci.lower.to_bits(), ci.upper.to_bits()))
                    };
                    assert_eq!(bits(&a.interval), bits(&b.interval), "interval for {query}");
                    assert_eq!(a.level, b.level, "level for {query}");
                    assert_eq!(a.rows_scanned, b.rows_scanned, "rows for {query}");
                    assert_eq!(a.escalations, b.escalations, "escalations for {query}");
                    assert_eq!(a.error_bound_met, b.error_bound_met, "met for {query}");
                }
                (Ok(QueryOutcome::Rows(a)), Ok(QueryOutcome::Rows(b))) => {
                    assert_eq!(a.returned_rows(), b.returned_rows());
                    assert_eq!(a.level, b.level);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "error for {query}"),
                (s, b) => panic!("outcome divergence for {query}: {s:?} vs {b:?}"),
            }
        }
        // both sessions logged everything
        assert_eq!(
            serial.query_log().total_recorded(),
            batched.query_log().total_recorded()
        );
    }

    #[test]
    fn session_records_metrics_per_query() {
        let s = session(20_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        // one answered query escalating into the base data, one typed error
        let q = Query::count("photoobj", Predicate::lt("objid", 101.0));
        s.execute(&q, &QueryBounds::max_error(1e-9)).unwrap();
        let bad = Query::count("photoobj", Predicate::True);
        let _ = s.execute(&bad, &QueryBounds::row_budget(10)).unwrap_err();

        let snap = s.metrics_snapshot();
        assert_eq!(snap.counter("engine.queries"), Some(2));
        assert_eq!(snap.counter("engine.query_errors"), Some(1));
        assert!(snap.counter("engine.escalations").unwrap() >= 2);
        assert!(snap.counter("engine.rows_scanned").unwrap() >= 20_000);
        // per-level counters exist for every visited level
        assert!(snap.counter("engine.rows_scanned.base").unwrap() >= 20_000);
        assert!(snap.counter("engine.rows_scanned.layer-1").unwrap() > 0);
        assert!(snap.counter("engine.rows_scanned.layer-2").unwrap() > 0);
        let hist = snap.histogram("engine.query_micros").unwrap();
        assert_eq!(hist.count, 1, "only answered queries are timed");
        assert_eq!(snap.counter("engine.error_bound_missed"), Some(0));
        assert_eq!(snap.counter("engine.time_bound_missed"), Some(0));
    }

    #[test]
    fn session_retains_traces_with_admission_stamp() {
        let config = SciborqConfig::with_layers(vec![2_000, 200])
            .with_collect_traces(true)
            .with_trace_capacity(2);
        let s = ExplorationSession::new(
            catalog_with_base(20_000),
            config,
            &[("ra", AttributeDomain::new(0.0, 360.0, 36))],
        )
        .unwrap();
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        assert!(s.recent_traces(10).is_empty());

        let q = Query::count("photoobj", Predicate::lt("ra", 90.0));
        let admission = AdmissionTrace {
            outcome: "downgraded".to_owned(),
            queue_wait: std::time::Duration::from_micros(42),
            cost_rows: 2_000,
        };
        let outcome = s
            .execute_with_admission(&q, &QueryBounds::max_error(0.1), Some(admission.clone()))
            .unwrap();
        // the admission verdict rides on both the answer's trace and the ring
        let answer_trace = outcome.as_aggregate().unwrap().trace.as_ref().unwrap();
        assert_eq!(answer_trace.admission, Some(admission.clone()));
        let recent = s.recent_traces(10);
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0], *answer_trace);

        // the ring is bounded: capacity 2 retains only the newest traces
        for _ in 0..3 {
            s.execute(&q, &QueryBounds::max_error(0.1)).unwrap();
        }
        let recent = s.recent_traces(10);
        assert_eq!(recent.len(), 2);
        assert!(recent.iter().all(|t| t.admission.is_none()));

        // batch execution stamps per-request admissions the same way
        let requests = vec![
            (q.clone(), QueryBounds::max_error(0.1)),
            (q.clone(), QueryBounds::max_error(0.1)),
        ];
        let outcomes = s.execute_batch_with_admission(&requests, &[Some(admission.clone()), None]);
        let first = outcomes[0].as_ref().unwrap().as_aggregate().unwrap();
        assert_eq!(first.trace.as_ref().unwrap().admission, Some(admission));
        let second = outcomes[1].as_ref().unwrap().as_aggregate().unwrap();
        assert_eq!(second.trace.as_ref().unwrap().admission, None);
    }

    #[test]
    fn incremental_load_updates_base_and_impressions() {
        let s = session(10_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let before = s.hierarchy("photoobj").unwrap().observed_rows();
        s.load("photoobj", &batch(10_001, 5_000, None)).unwrap();
        let after = s.hierarchy("photoobj").unwrap().observed_rows();
        assert_eq!(after, before + 5_000);
        let base_rows = s.catalog().table("photoobj").unwrap().read().row_count();
        assert_eq!(base_rows, 15_000);
        // counting still reflects the new load: COUNT(*) over everything has
        // zero sampling variance, so even a tiny error bound is satisfied on
        // an impression — and the expanded estimate equals the new base size.
        let q = Query::count("photoobj", Predicate::True);
        let outcome = s.execute(&q, &QueryBounds::max_error(1e-9)).unwrap();
        let answer = outcome.as_aggregate().unwrap();
        assert_eq!(answer.value.unwrap(), 15_000.0);
        assert!(answer.error_bound_met);
        // a genuinely selective predicate with a near-zero error bound must
        // still fall through to the base data
        let selective = Query::count("photoobj", Predicate::lt("objid", 101.0));
        let outcome = s
            .execute(&selective, &QueryBounds::max_error(1e-9))
            .unwrap();
        let exact = outcome.as_aggregate().unwrap();
        assert_eq!(exact.level, EvaluationLevel::BaseData);
        assert_eq!(exact.value.unwrap(), 100.0);
        assert!(matches!(
            s.load("missing", &batch(1, 10, None)),
            Err(SciborqError::UnknownTable(_))
        ));
    }

    #[test]
    fn adaptation_rebuilds_biased_impressions_on_focus_shift() {
        let s = session(40_000);
        // Phase 1: workload focused on ra ≈ 90
        for _ in 0..30 {
            let q = Query::count("photoobj", Predicate::between("ra", 88.0, 92.0));
            s.query_log.lock().record(q.clone());
            s.predicate_set.lock().log_query(&q);
        }
        s.create_impressions("photoobj", SamplingPolicy::biased(["ra"]))
            .unwrap();
        let enrichment = |session: &ExplorationSession, lo: f64, hi: f64| {
            let h = session.hierarchy("photoobj").unwrap();
            let layer = &h.layers()[0];
            Predicate::between("ra", lo, hi)
                .evaluate(layer.data())
                .unwrap()
                .len() as f64
                / layer.row_count() as f64
        };
        let phase1_share = enrichment(&s, 88.0, 92.0);
        assert!(phase1_share > 0.05, "phase-1 focal share {phase1_share}");
        // without a shift, adapt() is a no-op
        let decision = s.adapt().unwrap();
        assert!(!decision.should_rebuild);
        assert_eq!(s.rebuilds(), 0);

        // Phase 2: the scientist moves to ra ≈ 270
        for _ in 0..120 {
            let q = Query::count("photoobj", Predicate::between("ra", 268.0, 272.0));
            let _ = s.execute(&q, &QueryBounds::default());
        }
        let decision = s.adapt().unwrap();
        assert!(decision.should_rebuild, "shift {}", decision.max_shift);
        assert_eq!(s.rebuilds(), 1);
        let phase2_share = enrichment(&s, 268.0, 272.0);
        assert!(
            phase2_share > phase1_share / 2.0,
            "after adaptation the new focus must be enriched (share {phase2_share})"
        );
    }

    #[test]
    fn uniform_hierarchies_are_not_rebuilt_by_adaptation() {
        let s = session(10_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        for _ in 0..100 {
            let q = Query::count("photoobj", Predicate::between("ra", 10.0, 12.0));
            let _ = s.execute(&q, &QueryBounds::default());
        }
        let decision = s.adapt().unwrap();
        // the focus shifted (no reference initially matched), but no
        // workload-driven hierarchy exists, so nothing is rebuilt
        assert!(decision.should_rebuild);
        assert_eq!(s.rebuilds(), 0);
        // … and because nothing was rebuilt, the workload reference must NOT
        // advance: the shift stays pending instead of being forgotten, so a
        // later adapt() still sees it.
        let again = s.adapt().unwrap();
        assert!(
            again.should_rebuild,
            "a shift with no rebuilt hierarchy must stay pending"
        );
        assert_eq!(s.rebuilds(), 0);
    }

    #[test]
    fn session_is_shareable_across_threads() {
        let s = session(20_000);
        s.create_impressions("photoobj", SamplingPolicy::Uniform)
            .unwrap();
        let s = Arc::new(s);
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..5 {
                    let ra = ((t * 5 + i) * 17 % 360) as f64;
                    let q = Query::count("photoobj", Predicate::lt("ra", ra.max(1.0)));
                    s.execute(&q, &QueryBounds::max_error(0.5)).unwrap();
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(s.query_log().total_recorded(), 20);
    }
}
