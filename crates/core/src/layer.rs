//! Multi-layer hierarchies of impressions (§3.1 "Layers").
//!
//! "Each less detailed impression is derived from a previous more detailed
//! one. In such a derivation, the focal point of the larger impression is
//! inherited by the smaller [...]. If the error bounds during query
//! execution are not met, the process continues on a larger impression of the
//! same hierarchy. Moreover, smaller impressions on higher layers are more
//! efficient to maintain since they only touch the data of the impression one
//! layer below, and not the entire base."
//!
//! A [`LayerHierarchy`] owns one [`ImpressionBuilder`] per layer: layer 1
//! samples the base table's loads directly; layer *k+1* samples the
//! materialised data of layer *k*.

use crate::builder::ImpressionBuilder;
use crate::config::SciborqConfig;
use crate::error::{Result, SciborqError};
use crate::impression::Impression;
use crate::policy::SamplingPolicy;
use sciborq_columnar::{RecordBatch, SchemaRef, Table};
use sciborq_workload::PredicateSet;

/// A hierarchy of impressions over one base table.
#[derive(Debug, Clone)]
pub struct LayerHierarchy {
    source_table: String,
    schema: SchemaRef,
    policy: SamplingPolicy,
    /// Builder for layer 1, fed directly by incremental loads.
    root_builder: ImpressionBuilder,
    /// Sizes of layers 2.. (layer 1's size is the root builder's capacity).
    derived_sizes: Vec<usize>,
    /// Materialised impressions, index 0 = layer 1 (most detailed).
    layers: Vec<Impression>,
    seed: u64,
    /// Whether derived layers are stale with respect to layer 1.
    stale: bool,
}

impl LayerHierarchy {
    /// Create an empty hierarchy for a table.
    ///
    /// `layer_sizes` follows [`SciborqConfig::layer_sizes`]: most detailed
    /// layer first, sizes non-increasing.
    pub fn new(
        source_table: impl Into<String>,
        schema: SchemaRef,
        policy: SamplingPolicy,
        layer_sizes: &[usize],
        seed: u64,
    ) -> Result<Self> {
        if layer_sizes.is_empty() {
            return Err(SciborqError::InvalidConfig(
                "a hierarchy needs at least one layer".to_owned(),
            ));
        }
        if layer_sizes.windows(2).any(|w| w[1] > w[0]) {
            return Err(SciborqError::InvalidConfig(
                "layer sizes must be non-increasing".to_owned(),
            ));
        }
        let source_table = source_table.into();
        let root_builder = ImpressionBuilder::new(
            format!("{source_table}.layer1.{}", policy.name()),
            source_table.clone(),
            schema.clone(),
            policy.clone(),
            layer_sizes[0],
            1,
            seed,
        )?;
        Ok(LayerHierarchy {
            source_table,
            schema,
            policy,
            root_builder,
            derived_sizes: layer_sizes[1..].to_vec(),
            layers: Vec::new(),
            seed,
            stale: true,
        })
    }

    /// Build a hierarchy directly from an existing base table (the
    /// "extracted from an existing database" deployment mode).
    pub fn build_from_table(
        table: &Table,
        policy: SamplingPolicy,
        config: &SciborqConfig,
        predicate_set: Option<&PredicateSet>,
    ) -> Result<Self> {
        let mut hierarchy = LayerHierarchy::new(
            table.name(),
            table.schema().clone(),
            policy,
            &config.layer_sizes,
            config.seed,
        )?;
        hierarchy.observe_batch(&table.to_batch(), predicate_set)?;
        hierarchy.refresh()?;
        Ok(hierarchy)
    }

    /// The base table this hierarchy summarises.
    pub fn source_table(&self) -> &str {
        &self.source_table
    }

    /// The sampling policy of every layer.
    pub fn policy(&self) -> &SamplingPolicy {
        &self.policy
    }

    /// Number of layers (excluding the base data).
    pub fn layer_count(&self) -> usize {
        1 + self.derived_sizes.len()
    }

    /// Whether derived layers need a [`LayerHierarchy::refresh`].
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Number of tuples observed by layer 1 (i.e. base-table rows seen).
    pub fn observed_rows(&self) -> u64 {
        self.root_builder.observed()
    }

    /// Feed one incremental-load batch through layer 1.
    ///
    /// Derived layers become stale; call [`LayerHierarchy::refresh`] to
    /// rebuild them from layer 1 (they never touch the base data).
    pub fn observe_batch(
        &mut self,
        batch: &RecordBatch,
        predicate_set: Option<&PredicateSet>,
    ) -> Result<()> {
        self.root_builder.observe_batch(batch, predicate_set)?;
        self.stale = true;
        Ok(())
    }

    /// Rebuild the materialised impressions: layer 1 from its builder,
    /// every further layer by uniformly subsampling the layer above and
    /// inheriting its per-row weights (no predicate set needed — derivation
    /// never recomputes interest).
    pub fn refresh(&mut self) -> Result<()> {
        let mut layers = Vec::with_capacity(self.layer_count());
        layers.push(self.root_builder.materialize()?);
        // Derived layers physically sample the layer above, but estimates
        // from them must expand to the *base* table: re-anchor their
        // population on layer 1's population.
        let base_rows = layers[0].source_rows();
        let base_weight = layers[0].total_observed_weight();
        for (i, &size) in self.derived_sizes.iter().enumerate() {
            let layer_index = i + 2;
            let parent = layers.last().expect("layer 1 exists");
            let mut builder = ImpressionBuilder::derived(
                format!(
                    "{}.layer{layer_index}.{}",
                    self.source_table,
                    self.policy.name()
                ),
                self.source_table.clone(),
                self.schema.clone(),
                self.policy.clone(),
                size,
                layer_index,
                self.seed.wrapping_add(layer_index as u64),
            )?;
            // Derived layers inherit each parent row's stored weight rather
            // than recomputing it from the predicate set: layer 1's weights
            // are the effective (saturation-capped) inclusion weights of the
            // realized design, and the estimator correction must stay
            // consistent with them all the way down the hierarchy.
            let parent_batch = parent.data().to_batch();
            for (idx, &weight) in parent.weights().iter().enumerate() {
                builder.observe_row_weighted(parent_batch.row(idx)?, weight);
            }
            let mut impression = builder.materialize()?;
            impression.rescale_population(base_rows, base_weight);
            layers.push(impression);
        }
        self.layers = layers;
        self.stale = false;
        Ok(())
    }

    /// The materialised impressions, most detailed first (layer 1, 2, …).
    pub fn layers(&self) -> &[Impression] {
        &self.layers
    }

    /// The impression at 1-based layer index.
    pub fn layer(&self, index: usize) -> Option<&Impression> {
        if index == 0 {
            None
        } else {
            self.layers.get(index - 1)
        }
    }

    /// The impressions ordered from least detailed (smallest) to most
    /// detailed — the order in which the bounded query engine escalates.
    pub fn escalation_order(&self) -> impl Iterator<Item = &Impression> {
        self.layers.iter().rev()
    }

    /// Total bytes across all materialised layers.
    pub fn byte_size(&self) -> usize {
        self.layers.iter().map(Impression::byte_size).sum()
    }

    /// Replace the hierarchy's policy and rebuild everything from the base
    /// table (full re-adaptation; used when the workload focus shifts so far
    /// that incremental adjustment is pointless).
    pub fn rebuild_from_table(
        &mut self,
        table: &Table,
        predicate_set: Option<&PredicateSet>,
    ) -> Result<()> {
        let mut sizes = vec![self.root_builder.capacity()];
        sizes.extend_from_slice(&self.derived_sizes);
        let rebuilt = LayerHierarchy::new(
            self.source_table.clone(),
            self.schema.clone(),
            self.policy.clone(),
            &sizes,
            self.seed.wrapping_add(1),
        )?;
        *self = rebuilt;
        self.observe_batch(&table.to_batch(), predicate_set)?;
        self.refresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Predicate, RecordBatchBuilder, Schema, Value};
    use sciborq_workload::AttributeDomain;

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
        ])
        .unwrap()
    }

    fn batch(start: i64, rows: usize) -> RecordBatch {
        let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
        for i in 0..rows as i64 {
            let objid = start + i;
            b.push_row(&[
                Value::Int64(objid),
                Value::Float64((objid * 17 % 360) as f64),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    fn base_table(rows: usize) -> Table {
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&batch(1, rows)).unwrap();
        t
    }

    #[test]
    fn hierarchy_validation() {
        assert!(LayerHierarchy::new("t", schema(), SamplingPolicy::Uniform, &[], 1).is_err());
        assert!(
            LayerHierarchy::new("t", schema(), SamplingPolicy::Uniform, &[100, 500], 1).is_err()
        );
        assert!(
            LayerHierarchy::new("t", schema(), SamplingPolicy::Uniform, &[500, 100], 1).is_ok()
        );
    }

    #[test]
    fn build_from_table_materialises_all_layers() {
        let table = base_table(20_000);
        let config = SciborqConfig::with_layers(vec![2_000, 400, 50]);
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        assert_eq!(h.layer_count(), 3);
        assert_eq!(h.layers().len(), 3);
        assert!(!h.is_stale());
        assert_eq!(h.observed_rows(), 20_000);
        assert_eq!(h.layers()[0].row_count(), 2_000);
        assert_eq!(h.layers()[1].row_count(), 400);
        assert_eq!(h.layers()[2].row_count(), 50);
        // layer names encode their level
        assert!(h.layers()[2].name().contains("layer3"));
        assert!(h.byte_size() > 0);
    }

    #[test]
    fn layer_indexing_is_one_based() {
        let table = base_table(5_000);
        let config = SciborqConfig::with_layers(vec![500, 100]);
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        assert!(h.layer(0).is_none());
        assert_eq!(h.layer(1).unwrap().row_count(), 500);
        assert_eq!(h.layer(2).unwrap().row_count(), 100);
        assert!(h.layer(3).is_none());
    }

    #[test]
    fn escalation_order_is_smallest_first() {
        let table = base_table(5_000);
        let config = SciborqConfig::with_layers(vec![500, 100, 20]);
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        let sizes: Vec<usize> = h.escalation_order().map(Impression::row_count).collect();
        assert_eq!(sizes, vec![20, 100, 500]);
    }

    #[test]
    fn derived_layers_sample_the_layer_above() {
        let table = base_table(50_000);
        let config = SciborqConfig::with_layers(vec![1_000, 100]);
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        assert_eq!(h.layers()[0].source_rows(), 50_000);
        // derived layers are re-anchored on the base population so their
        // estimates expand all the way to the base table
        assert_eq!(h.layers()[1].source_rows(), 50_000);
        // every tuple of layer 2 must also exist in layer 1
        let layer1_ids: std::collections::HashSet<i64> = {
            let col = h.layers()[0].data().column("objid").unwrap();
            (0..h.layers()[0].row_count())
                .filter_map(|i| col.get_i64(i))
                .collect()
        };
        let col2 = h.layers()[1].data().column("objid").unwrap();
        for i in 0..h.layers()[1].row_count() {
            assert!(layer1_ids.contains(&col2.get_i64(i).unwrap()));
        }
    }

    #[test]
    fn incremental_loads_mark_derived_layers_stale() {
        let mut h =
            LayerHierarchy::new("photoobj", schema(), SamplingPolicy::Uniform, &[500, 50], 1)
                .unwrap();
        h.observe_batch(&batch(1, 1_000), None).unwrap();
        assert!(h.is_stale());
        h.refresh().unwrap();
        assert!(!h.is_stale());
        h.observe_batch(&batch(1_001, 1_000), None).unwrap();
        assert!(h.is_stale());
        h.refresh().unwrap();
        assert_eq!(h.observed_rows(), 2_000);
        assert_eq!(h.layers()[0].source_rows(), 2_000);
    }

    #[test]
    fn small_tables_yield_full_copies() {
        let table = base_table(30);
        let config = SciborqConfig::with_layers(vec![500, 50]);
        let h = LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
            .unwrap();
        // the table is smaller than every layer: layer 1 holds everything
        assert_eq!(h.layers()[0].row_count(), 30);
        assert_eq!(h.layers()[1].row_count(), 30);
        assert_eq!(h.layers()[0].sampling_fraction(), 1.0);
    }

    #[test]
    fn biased_hierarchy_inherits_focal_point_downwards() {
        let mut ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        for _ in 0..300 {
            ps.log_value("ra", 120.0);
        }
        // base data: uniform ra over [0,360)
        let table = base_table(40_000);
        let config = SciborqConfig::with_layers(vec![4_000, 400]);
        let h = LayerHierarchy::build_from_table(
            &table,
            SamplingPolicy::biased(["ra"]),
            &config,
            Some(&ps),
        )
        .unwrap();
        let focal = Predicate::between("ra", 110.0, 130.0);
        // base share of the focal window is ~20/360 ≈ 5.6%
        for layer in h.layers() {
            let share =
                focal.evaluate(layer.data()).unwrap().len() as f64 / layer.row_count() as f64;
            assert!(
                share > 0.15,
                "layer {} focal share {share} should be enriched",
                layer.layer()
            );
        }
    }

    #[test]
    fn rebuild_from_table_resets_and_resamples() {
        let table = base_table(10_000);
        let config = SciborqConfig::with_layers(vec![1_000, 100]);
        let mut h =
            LayerHierarchy::build_from_table(&table, SamplingPolicy::Uniform, &config, None)
                .unwrap();
        let bigger = base_table(20_000);
        h.rebuild_from_table(&bigger, None).unwrap();
        assert_eq!(h.observed_rows(), 20_000);
        assert_eq!(h.layers()[0].source_rows(), 20_000);
        assert_eq!(h.layer_count(), 2);
    }
}
