//! Compile-once query execution state.
//!
//! The bounded query engine escalates one query through several impressions
//! and possibly the base table. Historically every level re-resolved column
//! names and re-evaluated the whole predicate row-at-a-time from scratch.
//! [`QueryExecution`] is the per-query object that fixes this: it compiles
//! the predicate into a [`CompiledPredicate`] exactly once (all impressions
//! of a hierarchy share the base table's schema, so one compilation serves
//! every level), runs the vectorized scan kernels per level, and records
//! *measured* scan accounting — rows actually visited by the kernels and
//! per-level wall time. Levels are still *admitted* by their row count (the
//! impression-size knob the paper's runtime bounds turn), but every answer
//! now reports what the kernels really did; for conjunctions with candidate
//! refinement the measured visits can differ from the level's row count in
//! either direction.

use crate::answer::{EvaluationLevel, LevelScan};
use crate::error::Result;
use sciborq_columnar::{
    CompiledPredicate, MomentSketch, Predicate, ScanStats, SelectionVector, Table,
};
use std::time::Instant;

/// Per-query execution state: the compiled predicate plus measured
/// per-level scan accounting.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    predicate: Predicate,
    compiled: Option<CompiledPredicate>,
    levels: Vec<LevelScan>,
}

impl QueryExecution {
    /// Start executing a query with the given predicate.
    pub fn new(predicate: Predicate) -> Self {
        QueryExecution {
            predicate,
            compiled: None,
            levels: Vec::new(),
        }
    }

    /// The compiled predicate for `table`, compiling on first use and
    /// recompiling only if a table with a different schema shows up
    /// (impressions share their base table's schema, so in practice this
    /// compiles once per query).
    fn compiled_for(&mut self, table: &Table) -> Result<&CompiledPredicate> {
        let stale = match &self.compiled {
            None => true,
            Some(c) => !c.matches_schema(table.schema()),
        };
        if stale {
            self.compiled = Some(CompiledPredicate::compile(&self.predicate, table.schema())?);
        }
        Ok(self.compiled.as_ref().expect("compiled just above"))
    }

    fn record(&mut self, level: EvaluationLevel, stats: ScanStats, started: Instant) {
        let elapsed = started.elapsed();
        // merge repeated passes over the same level (e.g. selection + count)
        if let Some(last) = self.levels.last_mut() {
            if last.level == level {
                last.rows_scanned += stats.rows_visited;
                last.elapsed += elapsed;
                return;
            }
        }
        self.levels.push(LevelScan {
            level,
            rows_scanned: stats.rows_visited,
            elapsed,
        });
    }

    /// Materialise the selection of qualifying rows at `level` (used by
    /// SELECT queries and the weighted estimators of biased impressions).
    pub fn selection(&mut self, level: EvaluationLevel, table: &Table) -> Result<SelectionVector> {
        let started = Instant::now();
        let (selection, stats) = self.compiled_for(table)?.evaluate_with_stats(table)?;
        self.record(level, stats, started);
        Ok(selection)
    }

    /// Fused filter+count at `level`: the number of qualifying rows without
    /// materialising a selection.
    pub fn count_matches(&mut self, level: EvaluationLevel, table: &Table) -> Result<usize> {
        let started = Instant::now();
        let (count, stats) = self.compiled_for(table)?.count_matches(table)?;
        self.record(level, stats, started);
        Ok(count)
    }

    /// Fused filter+aggregate at `level`: stream the aggregated column's
    /// values of every qualifying row into a moment sketch in a single
    /// pass.
    pub fn filter_moments(
        &mut self,
        level: EvaluationLevel,
        table: &Table,
        column: &str,
    ) -> Result<MomentSketch> {
        let started = Instant::now();
        let (sketch, stats) = self.compiled_for(table)?.filter_moments(table, column)?;
        self.record(level, stats, started);
        Ok(sketch)
    }

    /// Total measured rows visited by the scan kernels so far.
    pub fn rows_scanned(&self) -> u64 {
        self.levels.iter().map(|l| l.rows_scanned).sum()
    }

    /// Number of levels evaluated so far.
    pub fn levels_visited(&self) -> usize {
        self.levels.len()
    }

    /// The per-level scan records accumulated so far.
    pub fn level_scans(&self) -> &[LevelScan] {
        &self.levels
    }

    /// Consume the execution, yielding the per-level scan records.
    pub fn into_level_scans(self) -> Vec<LevelScan> {
        self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Schema, Value};

    fn table(rows: usize) -> Table {
        let schema = Schema::shared(vec![
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("photoobj", schema);
        for i in 0..rows {
            t.append_row(&[
                Value::Float64(i as f64),
                Value::Float64(15.0 + (i % 10) as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn compiles_once_across_levels_with_shared_schema() {
        let big = table(100);
        let small = big
            .gather(&Predicate::lt("ra", 50.0).evaluate(&big).unwrap(), "small")
            .unwrap();
        let mut exec = QueryExecution::new(Predicate::lt("ra", 10.0));
        let a = exec.selection(EvaluationLevel::Layer(2), &small).unwrap();
        assert_eq!(a.len(), 10);
        let compiled_before = exec.compiled.clone();
        let b = exec.selection(EvaluationLevel::Layer(1), &big).unwrap();
        assert_eq!(b.len(), 10);
        // the impression shares the base schema: no recompilation happened
        assert_eq!(compiled_before, exec.compiled);
        assert_eq!(exec.levels_visited(), 2);
        assert_eq!(exec.rows_scanned(), 150);
    }

    #[test]
    fn fused_paths_record_measured_scans() {
        let t = table(60);
        let mut exec =
            QueryExecution::new(Predicate::lt("ra", 30.0).and(Predicate::gt_eq("r_mag", 15.0)));
        let count = exec.count_matches(EvaluationLevel::Layer(1), &t).unwrap();
        assert_eq!(count, 30);
        // first conjunct scans all 60 rows, the terminal one only the 30
        // candidates
        assert_eq!(exec.rows_scanned(), 90);

        let sketch = exec
            .filter_moments(EvaluationLevel::Layer(1), &t, "r_mag")
            .unwrap();
        assert_eq!(sketch.matched, 30);
        // the repeated pass over the same level merges into one record
        assert_eq!(exec.levels_visited(), 1);
        assert_eq!(exec.level_scans()[0].rows_scanned, 180);
    }

    #[test]
    fn merges_same_level_and_separates_new_levels() {
        let t = table(10);
        let mut exec = QueryExecution::new(Predicate::True);
        exec.selection(EvaluationLevel::Layer(1), &t).unwrap();
        exec.selection(EvaluationLevel::Layer(1), &t).unwrap();
        exec.selection(EvaluationLevel::BaseData, &t).unwrap();
        let scans = exec.into_level_scans();
        assert_eq!(scans.len(), 2);
        assert_eq!(scans[0].rows_scanned, 20);
        assert_eq!(scans[1].level, EvaluationLevel::BaseData);
    }
}
