//! Compile-once query execution state.
//!
//! The bounded query engine escalates one query through several impressions
//! and possibly the base table. Historically every level re-resolved column
//! names and re-evaluated the whole predicate row-at-a-time from scratch.
//! [`QueryExecution`] is the per-query object that fixes this: it compiles
//! the predicate into a [`CompiledPredicate`] exactly once (all impressions
//! of a hierarchy share the base table's schema, so one compilation serves
//! every level), runs the vectorized scan kernels per level, and records
//! *measured* scan accounting — rows actually visited by the kernels and
//! per-level wall time. Levels are still *admitted* by their row count (the
//! impression-size knob the paper's runtime bounds turn), but every answer
//! now reports what the kernels really did; for conjunctions with candidate
//! refinement the measured visits can differ from the level's row count in
//! either direction.
//!
//! All state lives behind interior mutability (`RwLock` for the compiled
//! predicate, `Mutex` for the scan records), so an execution can be driven
//! through `&self` — the shape the serving layer's shared-scan scheduler
//! needs, where one scan pass feeds many executions that each record their
//! own accounting.

use crate::answer::{EvaluationLevel, LevelScan};
use crate::error::Result;
use parking_lot::{Mutex, RwLock};
use sciborq_columnar::{
    CompiledPredicate, MomentSketch, Partitioning, Predicate, ScanStats, SelectionVector, Table,
    WeightedMomentSketch,
};
use sciborq_telemetry::{FaultEvent, FaultEventKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Minimum rows a shard must hold before a scan is worth fanning out: below
/// this, thread spawn/join overhead dwarfs the per-shard scan. Tables
/// smaller than `2 × MIN_ROWS_PER_SHARD` therefore always scan on the
/// calling thread, whatever the configured parallelism.
pub const MIN_ROWS_PER_SHARD: usize = 4_096;

/// Per-query execution state: the compiled predicate plus measured
/// per-level scan accounting.
#[derive(Debug)]
pub struct QueryExecution {
    predicate: Predicate,
    compiled: RwLock<Option<Arc<CompiledPredicate>>>,
    levels: Mutex<Vec<LevelScan>>,
    faults: Mutex<Vec<FaultEvent>>,
    parallelism: usize,
}

impl QueryExecution {
    /// Start executing a query with the given predicate, single-threaded.
    pub fn new(predicate: Predicate) -> Self {
        QueryExecution::with_parallelism(predicate, 1)
    }

    /// Start executing a query that may fan scans out over up to
    /// `parallelism` shards. Sharding engages per table: only tables with at
    /// least [`MIN_ROWS_PER_SHARD`] rows per shard fan out (small
    /// impressions stay on the calling thread), and the shard merge order is
    /// fixed, so results are bit-identical to `parallelism == 1` execution.
    pub fn with_parallelism(predicate: Predicate, parallelism: usize) -> Self {
        QueryExecution {
            predicate,
            compiled: RwLock::new(None),
            levels: Mutex::new(Vec::new()),
            faults: Mutex::new(Vec::new()),
            parallelism: parallelism.max(1),
        }
    }

    /// The shard layout used for a table of `rows` rows: `None` when the
    /// scan should stay single-threaded. Exposed so the shared multi-query
    /// scan path makes the exact same fan-out decision as per-query
    /// execution (a prerequisite of its bit-identity guarantee).
    pub fn partitioning(&self, rows: usize) -> Option<Partitioning> {
        let shards = self.parallelism.min(rows / MIN_ROWS_PER_SHARD);
        if shards >= 2 {
            Some(Partitioning::even(rows, shards))
        } else {
            None
        }
    }

    /// The compiled predicate for `table`, compiling on first use and
    /// recompiling only if a table with a different schema shows up
    /// (impressions share their base table's schema, so in practice this
    /// compiles once per query).
    pub fn compiled_for(&self, table: &Table) -> Result<Arc<CompiledPredicate>> {
        if let Some(compiled) = self.compiled.read().as_ref() {
            if compiled.matches_schema(table.schema()) {
                return Ok(Arc::clone(compiled));
            }
        }
        let fresh = Arc::new(CompiledPredicate::compile(&self.predicate, table.schema())?);
        *self.compiled.write() = Some(Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Record a measured scan over `level`: `stats` as rolled up across all
    /// `shards`, timed from `started`. Repeated passes over the same level
    /// (e.g. selection + count, or one pass per conjunct) merge into one
    /// [`LevelScan`]. Public so the shared multi-query scan can book the
    /// group scan it ran on behalf of this execution.
    pub fn record_scan(
        &self,
        level: EvaluationLevel,
        stats: ScanStats,
        shards: usize,
        started: Instant,
    ) {
        let elapsed = started.elapsed();
        let mut levels = self.levels.lock();
        // merge repeated passes over the same level (e.g. selection + count)
        if let Some(last) = levels.last_mut() {
            if last.level == level {
                last.rows_scanned += stats.rows_visited;
                last.elapsed += elapsed;
                last.shards = last.shards.max(shards);
                return;
            }
        }
        levels.push(LevelScan {
            level,
            rows_scanned: stats.rows_visited,
            elapsed,
            shards,
        });
    }

    /// Roll per-shard scan stats up into one total (the per-shard accounting
    /// surfaces as `LevelScan::{rows_scanned, shards}`).
    fn roll_up(per_shard: &[ScanStats]) -> ScanStats {
        let mut total = ScanStats::default();
        for s in per_shard {
            total.merge(s);
        }
        total
    }

    /// Record a fault-handling event against this execution; the session
    /// turns these into `engine.fault_*` counters when the answer is
    /// observed, and they ride on the answer's trace.
    pub fn record_fault(&self, site: &str, kind: FaultEventKind) {
        self.faults.lock().push(FaultEvent {
            site: site.to_owned(),
            kind,
        });
    }

    /// Drain the fault events accumulated so far (paired with
    /// [`QueryExecution::take_level_scans`] when an answer is finalised).
    pub fn take_fault_events(&self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.faults.lock())
    }

    /// Run a level scan sharded when `parts` says so, isolating shard
    /// panics: a fan-out that panics (a poisoned shard worker, or an
    /// injected `scan.shard` fault) is caught and the level is redone with
    /// the serial kernel — the first rung of the degradation ladder. The
    /// serial kernels are bit-identical to the sharded ones (the standing
    /// kernel-parity contract), so a recovered scan changes no answer
    /// bits; the recovery is recorded via [`QueryExecution::record_fault`]
    /// so telemetry counters and the query trace still see it.
    fn isolate_shards<T>(
        &self,
        parts: Option<Partitioning>,
        sharded: impl Fn(&Partitioning) -> Result<(T, Vec<ScanStats>)>,
        serial: impl Fn() -> Result<(T, ScanStats)>,
    ) -> Result<(T, ScanStats, usize)> {
        if let Some(parts) = parts {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-injection")]
                sciborq_telemetry::fault_point!("scan.shard");
                sharded(&parts)
            }));
            match attempt {
                Ok(result) => {
                    let (value, per_shard) = result?;
                    return Ok((value, Self::roll_up(&per_shard), parts.shard_count()));
                }
                Err(_) => self.record_fault("scan.shard", FaultEventKind::Recovery),
            }
        }
        let (value, stats) = serial()?;
        Ok((value, stats, 1))
    }

    /// Materialise the selection of qualifying rows at `level` (used by
    /// SELECT queries and the weighted estimators of biased impressions).
    pub fn selection(&self, level: EvaluationLevel, table: &Table) -> Result<SelectionVector> {
        let started = Instant::now();
        let parts = self.partitioning(table.row_count());
        let compiled = self.compiled_for(table)?;
        let (selection, stats, shards) = self.isolate_shards(
            parts,
            |parts| Ok(compiled.evaluate_partitioned(table, parts)?),
            || Ok(compiled.evaluate_with_stats(table)?),
        )?;
        self.record_scan(level, stats, shards, started);
        Ok(selection)
    }

    /// Fused filter+count at `level`: the number of qualifying rows without
    /// materialising a selection.
    pub fn count_matches(&self, level: EvaluationLevel, table: &Table) -> Result<usize> {
        let started = Instant::now();
        let parts = self.partitioning(table.row_count());
        let compiled = self.compiled_for(table)?;
        let (count, stats, shards) = self.isolate_shards(
            parts,
            |parts| Ok(compiled.count_matches_partitioned(table, parts)?),
            || Ok(compiled.count_matches(table)?),
        )?;
        self.record_scan(level, stats, shards, started);
        Ok(count)
    }

    /// Fused filter+aggregate at `level`: stream the aggregated column's
    /// values of every qualifying row into a moment sketch in a single
    /// pass (the filter fans out across shards; the fold stays in global
    /// row order, so the sketch is bit-identical either way).
    pub fn filter_moments(
        &self,
        level: EvaluationLevel,
        table: &Table,
        column: &str,
    ) -> Result<MomentSketch> {
        let started = Instant::now();
        let parts = self.partitioning(table.row_count());
        let compiled = self.compiled_for(table)?;
        let (sketch, stats, shards) = self.isolate_shards(
            parts,
            |parts| Ok(compiled.filter_moments_partitioned(table, column, parts)?),
            || Ok(compiled.filter_moments(table, column)?),
        )?;
        self.record_scan(level, stats, shards, started);
        Ok(sketch)
    }

    /// Fused *weighted* filter+count at `level`: accumulate the
    /// Hansen–Hurwitz sufficient statistics of every qualifying row (each
    /// expanded by its cached selection probability) in a single pass —
    /// the streamed estimation path of biased impressions. The filter fans
    /// out across shards; the fold stays in global row order, so the sketch
    /// is bit-identical to single-threaded execution.
    pub fn count_weighted(
        &self,
        level: EvaluationLevel,
        table: &Table,
        probabilities: &[f64],
    ) -> Result<WeightedMomentSketch> {
        let started = Instant::now();
        let parts = self.partitioning(table.row_count());
        let compiled = self.compiled_for(table)?;
        let (sketch, stats, shards) = self.isolate_shards(
            parts,
            |parts| Ok(compiled.count_weighted_partitioned(table, probabilities, parts)?),
            || Ok(compiled.count_weighted(table, probabilities)?),
        )?;
        self.record_scan(level, stats, shards, started);
        Ok(sketch)
    }

    /// Fused weighted filter+aggregate at `level`: stream the aggregated
    /// column's values of every qualifying row, expanded by the cached
    /// selection probabilities, into a [`WeightedMomentSketch`] in a single
    /// pass (sharded filter, fixed-order fold — bit-identical either way).
    pub fn filter_weighted_moments(
        &self,
        level: EvaluationLevel,
        table: &Table,
        column: &str,
        probabilities: &[f64],
    ) -> Result<WeightedMomentSketch> {
        let started = Instant::now();
        let parts = self.partitioning(table.row_count());
        let compiled = self.compiled_for(table)?;
        let (sketch, stats, shards) = self.isolate_shards(
            parts,
            |parts| {
                Ok(compiled.filter_weighted_moments_partitioned(
                    table,
                    column,
                    probabilities,
                    parts,
                )?)
            },
            || Ok(compiled.filter_weighted_moments(table, column, probabilities)?),
        )?;
        self.record_scan(level, stats, shards, started);
        Ok(sketch)
    }

    /// Total measured rows visited by the scan kernels so far.
    pub fn rows_scanned(&self) -> u64 {
        self.levels.lock().iter().map(|l| l.rows_scanned).sum()
    }

    /// Number of levels evaluated so far.
    pub fn levels_visited(&self) -> usize {
        self.levels.lock().len()
    }

    /// A snapshot of the per-level scan records accumulated so far.
    pub fn level_scans(&self) -> Vec<LevelScan> {
        self.levels.lock().clone()
    }

    /// Drain the per-level scan records out of the execution (used when an
    /// answer is finalised; subsequent records would start a fresh list).
    pub fn take_level_scans(&self) -> Vec<LevelScan> {
        std::mem::take(&mut *self.levels.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Schema, Value};

    fn table(rows: usize) -> Table {
        let schema = Schema::shared(vec![
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("photoobj", schema);
        for i in 0..rows {
            t.append_row(&[
                Value::Float64(i as f64),
                Value::Float64(15.0 + (i % 10) as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn compiles_once_across_levels_with_shared_schema() {
        let big = table(100);
        let small = big
            .gather(&Predicate::lt("ra", 50.0).evaluate(&big).unwrap(), "small")
            .unwrap();
        let exec = QueryExecution::new(Predicate::lt("ra", 10.0));
        let a = exec.selection(EvaluationLevel::Layer(2), &small).unwrap();
        assert_eq!(a.len(), 10);
        let compiled_before = exec.compiled.read().clone().expect("compiled on first use");
        let b = exec.selection(EvaluationLevel::Layer(1), &big).unwrap();
        assert_eq!(b.len(), 10);
        // the impression shares the base schema: no recompilation happened
        let compiled_after = exec.compiled.read().clone().expect("still compiled");
        assert!(Arc::ptr_eq(&compiled_before, &compiled_after));
        assert_eq!(exec.levels_visited(), 2);
        assert_eq!(exec.rows_scanned(), 150);
    }

    #[test]
    fn fused_paths_record_measured_scans() {
        let t = table(60);
        let exec =
            QueryExecution::new(Predicate::lt("ra", 30.0).and(Predicate::gt_eq("r_mag", 15.0)));
        let count = exec.count_matches(EvaluationLevel::Layer(1), &t).unwrap();
        assert_eq!(count, 30);
        // first conjunct scans all 60 rows, the terminal one only the 30
        // candidates
        assert_eq!(exec.rows_scanned(), 90);

        let sketch = exec
            .filter_moments(EvaluationLevel::Layer(1), &t, "r_mag")
            .unwrap();
        assert_eq!(sketch.matched, 30);
        // the repeated pass over the same level merges into one record
        assert_eq!(exec.levels_visited(), 1);
        assert_eq!(exec.level_scans()[0].rows_scanned, 180);
    }

    #[test]
    fn merges_same_level_and_separates_new_levels() {
        let t = table(10);
        let exec = QueryExecution::new(Predicate::True);
        exec.selection(EvaluationLevel::Layer(1), &t).unwrap();
        exec.selection(EvaluationLevel::Layer(1), &t).unwrap();
        exec.selection(EvaluationLevel::BaseData, &t).unwrap();
        let scans = exec.take_level_scans();
        assert_eq!(scans.len(), 2);
        assert_eq!(scans[0].rows_scanned, 20);
        assert_eq!(scans[1].level, EvaluationLevel::BaseData);
        // draining resets the accounting
        assert_eq!(exec.levels_visited(), 0);
        assert_eq!(exec.rows_scanned(), 0);
    }
}
