//! Streaming, load-time construction of impressions (§3.3).
//!
//! "Impressions are deployed either as part of a database loading step or
//! extracted from an existing database. [...] The construction algorithms
//! reside in the load process, considering each tuple as it is being loaded,
//! much like a stream, and deciding if it should be part of an impression or
//! not."
//!
//! The [`ImpressionBuilder`] is exactly that: it is fed the same
//! [`RecordBatch`]es that are appended to the base table (or the rows of the
//! impression one layer below), decides tuple by tuple, and finally
//! materialises an [`Impression`].

use crate::error::{Result, SciborqError};
use crate::impression::Impression;
use crate::policy::SamplingPolicy;
use sciborq_columnar::{RecordBatch, SchemaRef, Table, Value};
use sciborq_sampling::{
    BiasedReservoir, LastSeenReservoir, Reservoir, SampledItem, SamplingStrategy,
};
use sciborq_workload::PredicateSet;

/// The concrete reservoir behind a builder, selected by the policy.
#[derive(Debug, Clone)]
enum Sampler {
    Uniform(Reservoir<Vec<Value>>),
    LastSeen(LastSeenReservoir<Vec<Value>>),
    Biased(BiasedReservoir<Vec<Value>>),
}

impl Sampler {
    fn observe(&mut self, row: Vec<Value>, weight: f64) {
        match self {
            Sampler::Uniform(r) => r.observe_weighted(row, weight),
            Sampler::LastSeen(r) => r.observe_weighted(row, weight),
            Sampler::Biased(r) => r.observe_weighted(row, weight),
        }
    }

    fn sample(&self) -> &[SampledItem<Vec<Value>>] {
        match self {
            Sampler::Uniform(r) => r.sample(),
            Sampler::LastSeen(r) => r.sample(),
            Sampler::Biased(r) => r.sample(),
        }
    }

    fn observed(&self) -> u64 {
        match self {
            Sampler::Uniform(r) => r.observed(),
            Sampler::LastSeen(r) => r.observed(),
            Sampler::Biased(r) => r.observed(),
        }
    }
}

/// A streaming impression builder.
///
/// The builder can be kept alive across incremental loads: every new batch is
/// pushed through [`ImpressionBuilder::observe_batch`] and a fresh snapshot
/// can be materialised at any time with [`ImpressionBuilder::materialize`].
#[derive(Debug, Clone)]
pub struct ImpressionBuilder {
    name: String,
    source_table: String,
    schema: SchemaRef,
    policy: SamplingPolicy,
    layer: usize,
    capacity: usize,
    sampler: Sampler,
    total_observed_weight: f64,
    /// Running sum of the *raw* KDE interest weights over every observed
    /// tuple, used to normalise weights to a mean of ≈ 1 before sampling.
    raw_weight_sum: f64,
    /// Column indices of the bias-steering attributes (resolved once).
    bias_columns: Vec<(String, usize)>,
}

impl ImpressionBuilder {
    /// Create a builder for an impression of `capacity` rows over a source
    /// with the given schema.
    pub fn new(
        name: impl Into<String>,
        source_table: impl Into<String>,
        schema: SchemaRef,
        policy: SamplingPolicy,
        capacity: usize,
        layer: usize,
        seed: u64,
    ) -> Result<Self> {
        Self::build(
            name,
            source_table,
            schema,
            policy,
            capacity,
            layer,
            seed,
            false,
        )
    }

    /// Create a builder for a *derived* layer: one that samples the
    /// materialised impression one layer below rather than the base stream.
    ///
    /// Derived layers always subsample their parent **uniformly**, whatever
    /// the hierarchy's policy. The parent's composition is already shaped by
    /// the policy (biased towards the workload's focal regions, say), and a
    /// uniform subsample preserves that composition — the paper's "the focal
    /// point of the larger impression is inherited by the smaller". Applying
    /// a biased sampler a second time would square the inclusion
    /// probabilities (∝ w² instead of ∝ w) and silently break the
    /// Hansen–Hurwitz correction, which assumes a single w-proportional
    /// stage. The builder still records each retained row's interest weight
    /// so the weighted estimators stay applicable.
    #[allow(clippy::too_many_arguments)]
    pub fn derived(
        name: impl Into<String>,
        source_table: impl Into<String>,
        schema: SchemaRef,
        policy: SamplingPolicy,
        capacity: usize,
        layer: usize,
        seed: u64,
    ) -> Result<Self> {
        Self::build(
            name,
            source_table,
            schema,
            policy,
            capacity,
            layer,
            seed,
            true,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: impl Into<String>,
        source_table: impl Into<String>,
        schema: SchemaRef,
        policy: SamplingPolicy,
        capacity: usize,
        layer: usize,
        seed: u64,
        derived: bool,
    ) -> Result<Self> {
        policy.validate().map_err(SciborqError::InvalidConfig)?;
        if capacity == 0 {
            return Err(SciborqError::InvalidConfig(
                "impression capacity must be positive".to_owned(),
            ));
        }
        let sampler = match &policy {
            SamplingPolicy::Uniform => Sampler::Uniform(Reservoir::new(capacity, seed)),
            _ if derived => Sampler::Uniform(Reservoir::new(capacity, seed)),
            SamplingPolicy::LastSeen {
                fresh_fraction,
                daily_ingest,
            } => Sampler::LastSeen(LastSeenReservoir::new(
                capacity,
                fresh_fraction * capacity as f64,
                *daily_ingest,
                seed,
            )?),
            SamplingPolicy::Biased { .. } => Sampler::Biased(BiasedReservoir::new(capacity, seed)?),
        };
        let bias_columns = match &policy {
            SamplingPolicy::Biased { attributes } => {
                let mut cols = Vec::with_capacity(attributes.len());
                for attr in attributes {
                    let idx = schema.index_of(attr)?;
                    cols.push((attr.clone(), idx));
                }
                cols
            }
            _ => Vec::new(),
        };
        Ok(ImpressionBuilder {
            name: name.into(),
            source_table: source_table.into(),
            schema,
            policy,
            layer,
            capacity,
            sampler,
            total_observed_weight: 0.0,
            raw_weight_sum: 0.0,
            bias_columns,
        })
    }

    /// The impression name this builder produces.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured capacity (`n`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of tuples observed so far (`cnt`).
    pub fn observed(&self) -> u64 {
        self.sampler.observed()
    }

    /// The policy driving this builder.
    pub fn policy(&self) -> &SamplingPolicy {
        &self.policy
    }

    /// The interest weight of a row under the current predicate set: 1 for
    /// non-biased policies, the combined KDE weight otherwise.
    fn row_weight(&self, row: &[Value], predicate_set: Option<&PredicateSet>) -> f64 {
        if self.bias_columns.is_empty() {
            return 1.0;
        }
        let Some(ps) = predicate_set else {
            return 1.0;
        };
        let tuple: Vec<(&str, f64)> = self
            .bias_columns
            .iter()
            .filter_map(|(name, idx)| {
                row.get(*idx)
                    .and_then(Value::as_f64)
                    .map(|v| (name.as_str(), v))
            })
            .collect();
        if tuple.is_empty() {
            0.0
        } else {
            ps.combined_weight(&tuple)
        }
    }

    /// Observe one row of an incremental load.
    pub fn observe_row(&mut self, row: Vec<Value>, predicate_set: Option<&PredicateSet>) {
        let weight = self.row_weight(&row, predicate_set);
        let weight = self.effective_weight(weight);
        self.observe_row_weighted(row, weight);
    }

    /// Observe one row with an externally supplied *effective* weight,
    /// bypassing the normalisation bookkeeping of [`Self::observe_row`].
    /// Crate-internal on purpose: only layer derivation may use it (derived
    /// builders sample uniformly and inherit the parent's weights verbatim);
    /// mixing it with `observe_row` on a root biased builder would skew the
    /// running-mean normalisation.
    pub(crate) fn observe_row_weighted(&mut self, row: Vec<Value>, weight: f64) {
        self.total_observed_weight += weight;
        self.sampler.observe(row, weight);
    }

    /// Turn a raw KDE interest weight into the *effective* weight the
    /// sampling design actually uses, in two steps.
    ///
    /// **Normalisation.** The paper's acceptance rule `P = f̆(t)·N·n/cnt`
    /// uses the absolute interest count `f̆·N`, which for a focused workload
    /// is ≫ `cnt/n` over most of the stream: acceptance saturates at 1 for
    /// nearly every tuple and the reservoir degenerates into a near-uniform
    /// recency sample while the estimator still assumes strong
    /// weight-proportionality. Dividing by the running mean interest weight
    /// rescales to mean ≈ 1, so the *average* acceptance rate matches
    /// Algorithm R's `n/cnt` and relative interest is what drives retention —
    /// the enrichment the paper's Figure 7 is actually about.
    ///
    /// **Saturation cap.** Acceptance is `min(1, w·n/cnt)`: beyond
    /// `w = cnt/n` a tuple's realized inclusion stops growing with `w`, so
    /// the weight recorded for the Hansen–Hurwitz correction (and the `Σw`
    /// normaliser) is capped there. Because `min(1, w·n/cnt) =
    /// min(1, w̃·n/cnt)`, feeding the capped weight to the sampler leaves
    /// the sampling behaviour unchanged.
    ///
    /// **Fill phase.** While `cnt ≤ n` the reservoir accepts *every* tuple
    /// with probability 1 whatever its weight, and later uniform eviction is
    /// weight-independent, so the realized inclusion of a fill-phase tuple
    /// does not depend on its interest at all: its effective weight is
    /// exactly 1. This also guarantees no retained row ever records a zero
    /// weight (post-fill, a zero-weight tuple can never be accepted), which
    /// keeps the `1/pᵢ` expansions of the estimators finite.
    fn effective_weight(&mut self, raw: f64) -> f64 {
        if !matches!(self.sampler, Sampler::Biased(_)) {
            return raw;
        }
        let raw = if raw.is_finite() && raw >= 0.0 {
            raw
        } else {
            0.0
        };
        self.raw_weight_sum += raw;
        let cnt_next = (self.sampler.observed() + 1) as f64;
        if cnt_next <= self.capacity as f64 {
            return 1.0;
        }
        let mean = self.raw_weight_sum / cnt_next;
        let relative = if mean > 0.0 { raw / mean } else { 1.0 };
        relative.min(cnt_next / self.capacity as f64)
    }

    /// Observe every row of a batch (the incremental-load entry point).
    pub fn observe_batch(
        &mut self,
        batch: &RecordBatch,
        predicate_set: Option<&PredicateSet>,
    ) -> Result<()> {
        if batch.schema().fields() != self.schema.fields() {
            return Err(SciborqError::Columnar(
                sciborq_columnar::ColumnarError::SchemaMismatch(format!(
                    "batch schema {} does not match impression schema {}",
                    batch.schema(),
                    self.schema
                )),
            ));
        }
        // Value-independent fast path: a uniform reservoir's accept/evict
        // decision depends only on the stream position, and the weight is a
        // constant 1 whenever no bias steering applies — so the boxed row is
        // materialised only when the reservoir actually retains it, instead
        // of cloning every row just to throw most of them away. RNG
        // consumption matches the row-at-a-time path exactly, so the
        // resulting impression is bit-identical.
        let value_independent = matches!(self.sampler, Sampler::Uniform(_))
            && (self.bias_columns.is_empty() || predicate_set.is_none());
        if value_independent {
            let Sampler::Uniform(reservoir) = &mut self.sampler else {
                unreachable!("checked just above");
            };
            for idx in 0..batch.row_count() {
                self.total_observed_weight += 1.0;
                reservoir.observe_with(1.0, || {
                    batch.row(idx).expect("row index within batch bounds")
                });
            }
            return Ok(());
        }
        for idx in 0..batch.row_count() {
            let row = batch.row(idx)?;
            self.observe_row(row, predicate_set);
        }
        Ok(())
    }

    /// Observe every row of an existing table (extraction from a database
    /// that is already loaded, the paper's second deployment mode).
    pub fn observe_table(
        &mut self,
        table: &Table,
        predicate_set: Option<&PredicateSet>,
    ) -> Result<()> {
        self.observe_batch(&table.to_batch(), predicate_set)
    }

    /// Materialise the current reservoir contents into an [`Impression`].
    ///
    /// The builder keeps its state, so construction can continue with later
    /// loads and a fresher impression can be materialised again.
    pub fn materialize(&self) -> Result<Impression> {
        let items = self.sampler.sample();
        let mut table = Table::with_capacity(self.name.clone(), self.schema.clone(), items.len());
        let mut weights = Vec::with_capacity(items.len());
        for item in items {
            table.append_row(&item.item)?;
            weights.push(item.weight);
        }
        Impression::new(
            self.name.clone(),
            self.source_table.clone(),
            table,
            weights,
            self.total_observed_weight,
            self.sampler.observed(),
            self.policy.clone(),
            self.layer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Predicate, RecordBatchBuilder, Schema};
    use sciborq_workload::AttributeDomain;

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap()
    }

    fn batch(start: i64, rows: usize) -> RecordBatch {
        let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
        for i in 0..rows as i64 {
            let objid = start + i;
            // ra spread over [0, 360): a third of rows near 185
            let ra = if objid % 3 == 0 {
                185.0 + (objid % 7) as f64 * 0.3
            } else {
                (objid * 37 % 360) as f64
            };
            b.push_row(&[
                Value::Int64(objid),
                Value::Float64(ra),
                Value::Float64(15.0 + (objid % 10) as f64),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    fn focused_predicate_set() -> PredicateSet {
        let mut ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        for _ in 0..200 {
            ps.log_value("ra", 185.0);
            ps.log_value("ra", 186.5);
        }
        ps
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(
            ImpressionBuilder::new("i", "t", schema(), SamplingPolicy::Uniform, 0, 1, 1).is_err()
        );
        assert!(ImpressionBuilder::new(
            "i",
            "t",
            schema(),
            SamplingPolicy::biased(["unknown_column"]),
            10,
            1,
            1
        )
        .is_err());
        assert!(ImpressionBuilder::new(
            "i",
            "t",
            schema(),
            SamplingPolicy::biased(Vec::<String>::new()),
            10,
            1,
            1
        )
        .is_err());
        assert!(ImpressionBuilder::new(
            "i",
            "t",
            schema(),
            SamplingPolicy::last_seen(2.0, 100.0),
            10,
            1,
            1
        )
        .is_err());
    }

    #[test]
    fn uniform_builder_fills_reservoir() {
        let mut b = ImpressionBuilder::new(
            "photoobj.l1",
            "photoobj",
            schema(),
            SamplingPolicy::Uniform,
            100,
            1,
            7,
        )
        .unwrap();
        b.observe_batch(&batch(1, 5_000), None).unwrap();
        assert_eq!(b.observed(), 5_000);
        assert_eq!(b.capacity(), 100);
        let imp = b.materialize().unwrap();
        assert_eq!(imp.row_count(), 100);
        assert_eq!(imp.source_rows(), 5_000);
        assert_eq!(imp.name(), "photoobj.l1");
        assert_eq!(imp.layer(), 1);
        assert!(imp.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn lazy_batch_path_is_bit_identical_to_row_at_a_time() {
        // observe_batch takes the value-independent fast path for uniform
        // builders; the retained sample must match feeding the same rows
        // through observe_row one by one.
        let mut batched = ImpressionBuilder::new(
            "a",
            "photoobj",
            schema(),
            SamplingPolicy::Uniform,
            64,
            1,
            17,
        )
        .unwrap();
        let mut row_wise = ImpressionBuilder::new(
            "a",
            "photoobj",
            schema(),
            SamplingPolicy::Uniform,
            64,
            1,
            17,
        )
        .unwrap();
        let b = batch(1, 4_000);
        batched.observe_batch(&b, None).unwrap();
        for idx in 0..b.row_count() {
            row_wise.observe_row(b.row(idx).unwrap(), None);
        }
        let from_batch = batched.materialize().unwrap();
        let from_rows = row_wise.materialize().unwrap();
        assert_eq!(from_batch.data(), from_rows.data());
        assert_eq!(from_batch.weights(), from_rows.weights());
        assert_eq!(from_batch.source_rows(), from_rows.source_rows());
        assert_eq!(
            from_batch.total_observed_weight(),
            from_rows.total_observed_weight()
        );
    }

    #[test]
    fn builder_rejects_mismatched_batches() {
        let other_schema = Schema::shared(vec![Field::new("x", DataType::Int64)]).unwrap();
        let mut wrong = RecordBatchBuilder::new(other_schema);
        wrong.push_row(&[Value::Int64(1)]).unwrap();
        let wrong = wrong.finish().unwrap();
        let mut b =
            ImpressionBuilder::new("i", "t", schema(), SamplingPolicy::Uniform, 10, 1, 1).unwrap();
        assert!(b.observe_batch(&wrong, None).is_err());
    }

    #[test]
    fn incremental_loads_accumulate() {
        let mut b =
            ImpressionBuilder::new("i", "photoobj", schema(), SamplingPolicy::Uniform, 50, 1, 3)
                .unwrap();
        b.observe_batch(&batch(1, 1_000), None).unwrap();
        let first = b.materialize().unwrap();
        assert_eq!(first.source_rows(), 1_000);
        b.observe_batch(&batch(1_001, 1_000), None).unwrap();
        let second = b.materialize().unwrap();
        assert_eq!(second.source_rows(), 2_000);
        assert_eq!(second.row_count(), 50);
        // the refreshed impression must contain some tuples from the new load
        let new_tuples = Predicate::gt("objid", 1_000)
            .evaluate(second.data())
            .unwrap();
        assert!(!new_tuples.is_empty());
    }

    #[test]
    fn biased_builder_enriches_focal_region() {
        let ps = focused_predicate_set();
        let mut biased = ImpressionBuilder::new(
            "biased",
            "photoobj",
            schema(),
            SamplingPolicy::biased(["ra"]),
            200,
            1,
            11,
        )
        .unwrap();
        let mut uniform = ImpressionBuilder::new(
            "uniform",
            "photoobj",
            schema(),
            SamplingPolicy::Uniform,
            200,
            1,
            11,
        )
        .unwrap();
        let big = batch(1, 30_000);
        biased.observe_batch(&big, Some(&ps)).unwrap();
        uniform.observe_batch(&big, Some(&ps)).unwrap();
        let focal = Predicate::between("ra", 183.0, 189.0);
        let biased_share = focal
            .evaluate(biased.materialize().unwrap().data())
            .unwrap()
            .len() as f64
            / 200.0;
        let uniform_share = focal
            .evaluate(uniform.materialize().unwrap().data())
            .unwrap()
            .len() as f64
            / 200.0;
        assert!(
            biased_share > uniform_share * 1.5,
            "biased {biased_share} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn biased_builder_without_predicate_set_degrades_to_neutral_weights() {
        let mut b = ImpressionBuilder::new(
            "biased",
            "photoobj",
            schema(),
            SamplingPolicy::biased(["ra"]),
            50,
            1,
            5,
        )
        .unwrap();
        b.observe_batch(&batch(1, 1_000), None).unwrap();
        let imp = b.materialize().unwrap();
        assert_eq!(imp.row_count(), 50);
        assert!(imp.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn last_seen_builder_prefers_recent_loads() {
        let mut b = ImpressionBuilder::new(
            "recent",
            "photoobj",
            schema(),
            SamplingPolicy::last_seen(1.0, 1_000.0),
            200,
            1,
            13,
        )
        .unwrap();
        for day in 0..20i64 {
            b.observe_batch(&batch(day * 1_000 + 1, 1_000), None)
                .unwrap();
        }
        let imp = b.materialize().unwrap();
        let recent = Predicate::gt("objid", 15_000).evaluate(imp.data()).unwrap();
        assert!(
            recent.len() as f64 / imp.row_count() as f64 > 0.5,
            "last-seen impression should be dominated by recent loads"
        );
    }

    #[test]
    fn observe_table_extracts_from_existing_data() {
        let mut base = Table::new("photoobj", schema());
        base.append_batch(&batch(1, 500)).unwrap();
        let mut b =
            ImpressionBuilder::new("i", "photoobj", schema(), SamplingPolicy::Uniform, 20, 1, 9)
                .unwrap();
        b.observe_table(&base, None).unwrap();
        let imp = b.materialize().unwrap();
        assert_eq!(imp.row_count(), 20);
        assert_eq!(imp.source_rows(), 500);
    }

    #[test]
    fn materialized_weights_align_with_rows() {
        let ps = focused_predicate_set();
        let mut b = ImpressionBuilder::new(
            "biased",
            "photoobj",
            schema(),
            SamplingPolicy::biased(["ra"]),
            50,
            1,
            21,
        )
        .unwrap();
        b.observe_batch(&batch(1, 5_000), Some(&ps)).unwrap();
        let imp = b.materialize().unwrap();
        assert_eq!(imp.weights().len(), imp.row_count());
        // retained focal tuples should carry higher weights than background ones
        let focal_sel = Predicate::between("ra", 183.0, 189.0)
            .evaluate(imp.data())
            .unwrap();
        if !focal_sel.is_empty() {
            let focal_avg: f64 =
                focal_sel.iter().map(|i| imp.weights()[i]).sum::<f64>() / focal_sel.len() as f64;
            let other_sel = focal_sel.complement(imp.row_count());
            if !other_sel.is_empty() {
                let other_avg: f64 = other_sel.iter().map(|i| imp.weights()[i]).sum::<f64>()
                    / other_sel.len() as f64;
                assert!(focal_avg > other_avg);
            }
        }
    }
}
