//! Shared-scan batch execution of aggregate queries.
//!
//! A serving front end often holds several concurrent bounded queries over
//! the *same* impression hierarchy. Answering them one by one re-scans the
//! same impression once per query; [`BoundedQueryEngine::execute_aggregate_batch`]
//! instead drives the whole batch through **one shared scan pass per
//! escalation level**: queries that agree on their predicate and sink
//! flavour (see `SinkSpec`) are deduplicated into a single
//! [`multi_scan`] item whose sketch then feeds every member's estimator.
//!
//! The batch path is a re-orchestration, not a re-implementation, of serial
//! escalation: admission (row budgets), the honest wall-clock rule, the
//! sampled-zero rule, and best-effort finalisation replay
//! [`BoundedQueryEngine::execute_aggregate`] per query, and the estimation
//! itself goes through the same [`estimate_level`] seam. Given identical
//! sketches — which the multi-scan kernels guarantee bit-for-bit — batched
//! answers are bit-identical to serial ones.

use crate::answer::{ApproximateAnswer, EvaluationLevel, LevelEstimate};
use crate::engine::{estimate_level, BoundedQueryEngine, LevelSketch, QueryBounds};
use crate::error::{Result, SciborqError};
use crate::execution::QueryExecution;
use crate::impression::Impression;
use crate::layer::LayerHierarchy;
use sciborq_columnar::{
    multi_scan, numeric_source, AggregateKind, CompiledPredicate, CountSink, MomentSink,
    MultiScanItem, SelectionSink, Table, WeightedMomentSink,
};
use sciborq_stats::ConfidenceInterval;
use sciborq_telemetry::FaultEventKind;
use sciborq_workload::{Query, QueryKind};
use std::sync::Arc;
use std::time::Instant;

/// Which fused sink a query needs at one escalation level. Two queries with
/// equal predicates and equal sink specs are served by literally the same
/// scan and the same sketch.
#[derive(Debug, Clone, PartialEq)]
enum SinkSpec {
    /// Plain match counting (COUNT on a self-weighted impression).
    Count,
    /// Hansen–Hurwitz counting (COUNT on a biased impression).
    WeightedCount,
    /// Unweighted moments over a column (SUM/AVG/MIN/MAX/VAR).
    Moments(String),
    /// Weighted moments over a column (SUM/AVG on a biased impression).
    WeightedMoments(String),
}

/// The per-group accumulator driven by the shared scan — exactly the sinks
/// the serial fused entry points fold into.
enum GroupSink<'a> {
    Count(CountSink),
    Moments(MomentSink<'a>),
    Weighted(WeightedMomentSink<'a>),
}

impl SelectionSink for GroupSink<'_> {
    #[inline]
    fn accept(&mut self, row: usize) {
        match self {
            GroupSink::Count(s) => s.accept(row),
            GroupSink::Moments(s) => s.accept(row),
            GroupSink::Weighted(s) => s.accept(row),
        }
    }
}

impl GroupSink<'_> {
    fn sketch(&self) -> LevelSketch {
        match self {
            GroupSink::Count(s) => LevelSketch::Count(s.0),
            GroupSink::Moments(s) => LevelSketch::Moments(s.sketch),
            GroupSink::Weighted(s) => LevelSketch::Weighted(s.sketch),
        }
    }
}

/// One query's in-flight escalation state.
struct QState<'q> {
    query: &'q Query,
    bounds: &'q QueryBounds,
    agg_kind: AggregateKind,
    agg_column: Option<String>,
    max_error: f64,
    exec: QueryExecution,
    escalations: usize,
    best: Option<(Option<f64>, Option<ConfidenceInterval>, EvaluationLevel)>,
    /// Set once the query has its final result (met bound, base data,
    /// or error); later levels skip it.
    done: Option<Result<ApproximateAnswer>>,
    /// Set when the wall-clock budget was blown with a best effort in hand:
    /// serial execution breaks out of escalation at that point.
    stopped: bool,
    start: Instant,
    /// Whether to build a [`sciborq_telemetry::QueryTrace`] at finalisation
    /// (the engine's `collect_traces` knob). Strictly observational.
    tracing: bool,
    /// The engine's scan fan-out, reported on the trace.
    parallelism: usize,
    /// Per-level quality accounting, collected only when tracing.
    estimates: Vec<LevelEstimate>,
}

impl QState<'_> {
    fn time_ok(&self) -> bool {
        self.bounds
            .time_budget
            .is_none_or(|budget| self.start.elapsed() <= budget)
    }

    /// The sink this query needs on `impression` (weighted estimators or
    /// not), or the error serial execution would raise.
    fn sink_spec(&self, weighted: bool) -> Result<SinkSpec> {
        match self.agg_kind {
            AggregateKind::Count => Ok(if weighted {
                SinkSpec::WeightedCount
            } else {
                SinkSpec::Count
            }),
            AggregateKind::Sum | AggregateKind::Avg => {
                let column = self.require_column()?;
                Ok(if weighted {
                    SinkSpec::WeightedMoments(column)
                } else {
                    SinkSpec::Moments(column)
                })
            }
            AggregateKind::Min | AggregateKind::Max | AggregateKind::Variance => {
                Ok(SinkSpec::Moments(self.require_column()?))
            }
        }
    }

    fn require_column(&self) -> Result<String> {
        self.agg_column.clone().ok_or_else(|| {
            SciborqError::InvalidConfig(format!("{} requires a column", self.agg_kind))
        })
    }

    fn finalize(
        &mut self,
        value: Option<f64>,
        interval: Option<ConfidenceInterval>,
        level: EvaluationLevel,
        error_bound_met: bool,
    ) {
        let time_bound_met = self.time_ok();
        // Shared scans are not shard-isolated (a panicked batch pass is
        // caught by the serving scheduler, which replays its members
        // serially), so these are empty today — the derivation keeps the
        // batch/serial bit-identity contract explicit rather than assumed.
        let fault_events = self.exec.take_fault_events();
        let degraded = fault_events
            .iter()
            .any(|e| e.kind == FaultEventKind::Degradation);
        let mut answer = ApproximateAnswer {
            query: self.query.to_string(),
            value,
            interval,
            level,
            rows_scanned: self.exec.rows_scanned(),
            escalations: self.escalations,
            elapsed: self.start.elapsed(),
            level_scans: self.exec.take_level_scans(),
            error_bound_met,
            time_bound_met,
            degraded,
            fault_events,
            trace: None,
        };
        if self.tracing {
            answer.trace = Some(answer.build_trace(&self.estimates, self.bounds, self.parallelism));
        }
        self.done = Some(Ok(answer));
    }

    fn fail(&mut self, err: SciborqError) {
        self.done = Some(Err(err));
    }
}

/// One deduplicated scan item: every member query shares the predicate, the
/// sink, and therefore the resulting sketch.
struct Group {
    compiled: Arc<CompiledPredicate>,
    spec: SinkSpec,
    members: Vec<usize>,
}

impl BoundedQueryEngine {
    /// Answer a batch of aggregate queries over one hierarchy, sharing scan
    /// passes between queries. Results come back in request order; each
    /// query gets exactly the answer (bit for bit) that
    /// [`BoundedQueryEngine::execute_aggregate`] would have produced for it
    /// alone, including typed errors for unsatisfiable bounds.
    pub fn execute_aggregate_batch(
        &self,
        requests: &[(&Query, &QueryBounds)],
        hierarchy: &LayerHierarchy,
        base_table: Option<&Table>,
    ) -> Vec<Result<ApproximateAnswer>> {
        let parallelism = self.config().parallelism;
        let tracing = self.config().collect_traces;
        let mut states: Vec<QState<'_>> = requests
            .iter()
            .map(|(query, bounds)| {
                let mut st = QState {
                    query,
                    bounds,
                    agg_kind: AggregateKind::Count,
                    agg_column: None,
                    max_error: bounds.max_relative_error.unwrap_or(f64::INFINITY),
                    exec: QueryExecution::with_parallelism(query.predicate.clone(), parallelism),
                    escalations: 0,
                    best: None,
                    done: None,
                    stopped: false,
                    start: Instant::now(),
                    tracing,
                    parallelism,
                    estimates: Vec::new(),
                };
                if let Err(err) = bounds.validate() {
                    st.fail(err);
                    return st;
                }
                match &query.kind {
                    QueryKind::Aggregate { kind, column } => {
                        st.agg_kind = *kind;
                        st.agg_column = column.clone();
                    }
                    QueryKind::Select => st.fail(SciborqError::InvalidConfig(
                        "execute_aggregate called with a SELECT query; use execute_select"
                            .to_owned(),
                    )),
                }
                st
            })
            .collect();

        // Escalate the whole batch level by level, sharing each level's scan.
        for impression in hierarchy.escalation_order() {
            let level_rows = impression.row_count() as u64;
            let mut active: Vec<usize> = Vec::new();
            for (i, st) in states.iter_mut().enumerate() {
                if st.done.is_some() || st.stopped {
                    continue;
                }
                if st.bounds.max_rows_scanned.is_some_and(|b| level_rows > b) {
                    // Over this query's row budget: skip the level but keep
                    // escalating (the order may not be sorted by size).
                    continue;
                }
                if st.best.is_some() && !st.time_ok() {
                    st.stopped = true;
                    continue;
                }
                if st.best.is_some() {
                    st.escalations += 1;
                }
                active.push(i);
            }
            if active.is_empty() {
                continue;
            }
            self.scan_level(
                &mut states,
                &active,
                impression.data(),
                Some(impression),
                EvaluationLevel::Layer(impression.layer()),
            );
        }

        // Base-data fall-through, still shared: exact answers for everything
        // that is admissible within its budgets.
        if let Some(table) = base_table {
            let base_rows = table.row_count() as u64;
            let mut active: Vec<usize> = Vec::new();
            for (i, st) in states.iter_mut().enumerate() {
                if st.done.is_some() {
                    continue;
                }
                let admissible = st.bounds.max_rows_scanned.is_none_or(|b| base_rows <= b);
                if !admissible || !st.time_ok() {
                    continue;
                }
                if st.best.is_some() {
                    st.escalations += 1;
                }
                active.push(i);
            }
            if !active.is_empty() {
                self.scan_level(&mut states, &active, table, None, EvaluationLevel::BaseData);
            }
        }

        // Best-effort finalisation for whatever is still unresolved —
        // identical to the serial tail, including the sampled-zero rule.
        for st in states.iter_mut() {
            if st.done.is_some() {
                continue;
            }
            match st.best.take() {
                Some((value, interval, level)) => {
                    let sampled_zero = value == Some(0.0) && st.max_error.is_finite();
                    let error_bound_met = !sampled_zero
                        && interval
                            .as_ref()
                            .map(|ci| ci.satisfies_error_bound(st.max_error))
                            .unwrap_or(false);
                    st.finalize(value, interval, level, error_bound_met);
                }
                None => st.fail(SciborqError::BoundsUnsatisfiable(format!(
                    "no impression of {} fits a row budget of {:?}",
                    hierarchy.source_table(),
                    st.bounds.max_rows_scanned
                ))),
            }
        }

        states
            .into_iter()
            .map(|st| st.done.expect("every query resolved"))
            .collect()
    }

    /// Run one shared scan pass over `table` for the `active` queries:
    /// deduplicate (predicate, sink) pairs into groups, multi-scan once,
    /// then book accounting and estimates per member. `impression` is
    /// `None` for the base-data pass (exact evaluation, no estimators).
    fn scan_level(
        &self,
        states: &mut [QState<'_>],
        active: &[usize],
        table: &Table,
        impression: Option<&Impression>,
        level: EvaluationLevel,
    ) {
        let weighted = impression.is_some_and(Impression::uses_weighted_estimators);
        let probabilities = impression.map(Impression::selection_probabilities);

        // Group the active queries by (predicate, sink flavour).
        let mut groups: Vec<Group> = Vec::new();
        for &i in active {
            let spec = match states[i].sink_spec(weighted) {
                Ok(spec) => spec,
                Err(err) => {
                    states[i].fail(err);
                    continue;
                }
            };
            let compiled = match states[i].exec.compiled_for(table) {
                Ok(compiled) => compiled,
                Err(err) => {
                    states[i].fail(err);
                    continue;
                }
            };
            match groups.iter_mut().find(|g| {
                g.spec == spec && states[g.members[0]].query.predicate == states[i].query.predicate
            }) {
                Some(group) => group.members.push(i),
                None => groups.push(Group {
                    compiled,
                    spec,
                    members: vec![i],
                }),
            }
        }

        // Build each group's sink; a group whose aggregation column cannot
        // be resolved fails exactly as its members' serial scans would.
        let mut sinks: Vec<GroupSink<'_>> = Vec::with_capacity(groups.len());
        let mut live_groups: Vec<Group> = Vec::with_capacity(groups.len());
        for group in groups {
            let built = match &group.spec {
                SinkSpec::Count => Ok(GroupSink::Count(CountSink::default())),
                SinkSpec::WeightedCount => Ok(GroupSink::Weighted(WeightedMomentSink::counting(
                    probabilities.expect("weighted sinks only exist on impressions"),
                ))),
                SinkSpec::Moments(column) => {
                    numeric_source(table, column).map(|s| GroupSink::Moments(MomentSink::new(s)))
                }
                SinkSpec::WeightedMoments(column) => numeric_source(table, column).map(|s| {
                    GroupSink::Weighted(WeightedMomentSink::new(
                        s,
                        probabilities.expect("weighted sinks only exist on impressions"),
                    ))
                }),
            };
            match built {
                Ok(sink) => {
                    sinks.push(sink);
                    live_groups.push(group);
                }
                Err(err) => {
                    for &i in &group.members {
                        states[i].fail(err.clone().into());
                    }
                }
            }
        }
        if live_groups.is_empty() {
            return;
        }

        // One shared sweep. The fan-out decision replays per-query
        // execution (all executions share the engine's parallelism), which
        // the bit-identity of sharded scans depends on.
        let parts = states[live_groups[0].members[0]]
            .exec
            .partitioning(table.row_count());
        let shards = parts.as_ref().map_or(1, |p| p.shard_count());
        let started = Instant::now();
        let mut items: Vec<MultiScanItem<'_, '_>> = live_groups
            .iter()
            .zip(sinks.iter_mut())
            .map(|(group, sink)| MultiScanItem {
                predicate: &group.compiled,
                sink,
            })
            .collect();
        let results = multi_scan(table, &mut items, parts.as_ref());
        drop(items);

        // Book the group scan for every member and fold the shared sketch
        // through each member's estimator — or produce the exact base-data
        // value. Estimation reuses the serial `estimate_level` seam.
        for ((group, sink), result) in live_groups.iter().zip(&sinks).zip(results) {
            match result {
                Ok(stats) => {
                    let sketch = sink.sketch();
                    for &i in &group.members {
                        let st = &mut states[i];
                        st.exec.record_scan(level, stats, shards, started);
                        match impression {
                            Some(impression) => {
                                match estimate_level(
                                    impression,
                                    st.agg_kind,
                                    st.bounds.confidence,
                                    &sketch,
                                ) {
                                    Ok((value, interval)) => {
                                        let sampled_zero =
                                            value == Some(0.0) && st.max_error.is_finite();
                                        let met = !sampled_zero
                                            && interval
                                                .as_ref()
                                                .map(|ci| ci.satisfies_error_bound(st.max_error))
                                                .unwrap_or(false);
                                        if st.tracing {
                                            st.estimates.push(LevelEstimate {
                                                level,
                                                relative_error: interval
                                                    .as_ref()
                                                    .map(|ci| ci.relative_half_width()),
                                                error_bound_met: met,
                                            });
                                        }
                                        st.best = Some((value, interval, level));
                                        if met {
                                            st.finalize(value, interval, level, true);
                                        } else if !st.time_ok() {
                                            // Serial execution breaks out of
                                            // escalation here: the level blew
                                            // the clock without meeting the
                                            // bound.
                                            st.stopped = true;
                                        }
                                    }
                                    Err(err) => st.fail(err),
                                }
                            }
                            None => {
                                // Base data: exact values, degenerate
                                // intervals, no estimators involved.
                                let value = match &sketch {
                                    LevelSketch::Count(matched) => Some(*matched as f64),
                                    LevelSketch::Moments(s) => s.aggregate(st.agg_kind),
                                    LevelSketch::Weighted(_) => {
                                        unreachable!("base-data groups never use weighted sinks")
                                    }
                                };
                                let interval = value.map(ConfidenceInterval::exact);
                                if st.tracing {
                                    st.estimates.push(LevelEstimate {
                                        level: EvaluationLevel::BaseData,
                                        relative_error: Some(0.0),
                                        // analyzer:allow(bounds_honesty, reason = "base-data evaluation is exact (relative error identically zero), so any finite error bound is met by construction")
                                        error_bound_met: true,
                                    });
                                }
                                st.finalize(value, interval, EvaluationLevel::BaseData, true);
                            }
                        }
                    }
                }
                Err(err) => {
                    for &i in &group.members {
                        states[i].fail(err.clone().into());
                    }
                }
            }
        }
    }
}
