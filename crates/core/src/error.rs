//! Error type of the SciBORQ core crate.

use sciborq_columnar::ColumnarError;
use sciborq_sampling::SamplingError;
use sciborq_stats::StatsError;
use std::fmt;

/// Errors produced by impression construction and bounded query processing.
#[derive(Debug, Clone, PartialEq)]
pub enum SciborqError {
    /// An error bubbled up from the columnar substrate.
    Columnar(ColumnarError),
    /// An error bubbled up from the statistics crate.
    Stats(StatsError),
    /// An error bubbled up from the sampling crate.
    Sampling(SamplingError),
    /// The configuration is invalid.
    InvalidConfig(String),
    /// A query referenced a table the catalog does not know at all.
    UnknownTable(String),
    /// A query referenced a table that exists in the catalog but has no
    /// impression hierarchy yet. Distinct from [`SciborqError::UnknownTable`]
    /// so a serving front end can tell a bad request ("no such table") from
    /// a recoverable state ("build impressions first").
    NoImpressions {
        /// The table that lacks an impression hierarchy.
        table: String,
    },
    /// The requested bounds cannot be satisfied even by the base data.
    BoundsUnsatisfiable(String),
    /// Query execution was poisoned by a panic (real or injected) that the
    /// isolation layer caught at the named seam. The query is lost but the
    /// worker, the session and every concurrent query are unaffected.
    Internal {
        /// The seam where the panic was caught (`"session.query"`,
        /// `"serve.scheduler"`, ...).
        site: String,
    },
}

impl fmt::Display for SciborqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SciborqError::Columnar(e) => write!(f, "columnar error: {e}"),
            SciborqError::Stats(e) => write!(f, "statistics error: {e}"),
            SciborqError::Sampling(e) => write!(f, "sampling error: {e}"),
            SciborqError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SciborqError::UnknownTable(name) => {
                write!(f, "no impressions or base table known for table {name}")
            }
            SciborqError::NoImpressions { table } => {
                write!(
                    f,
                    "table {table} exists but has no impression hierarchy; \
                     call create_impressions first"
                )
            }
            SciborqError::BoundsUnsatisfiable(msg) => {
                write!(f, "query bounds cannot be satisfied: {msg}")
            }
            SciborqError::Internal { site } => {
                write!(f, "internal fault isolated at {site}; query abandoned")
            }
        }
    }
}

impl std::error::Error for SciborqError {}

impl From<ColumnarError> for SciborqError {
    fn from(e: ColumnarError) -> Self {
        SciborqError::Columnar(e)
    }
}

impl From<StatsError> for SciborqError {
    fn from(e: StatsError) -> Self {
        SciborqError::Stats(e)
    }
}

impl From<SamplingError> for SciborqError {
    fn from(e: SamplingError) -> Self {
        SciborqError::Sampling(e)
    }
}

/// Result alias for the core crate.
pub type Result<T> = std::result::Result<T, SciborqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SciborqError = ColumnarError::TableNotFound("x".into()).into();
        assert!(e.to_string().contains("columnar error"));
        let e: SciborqError = StatsError::EmptyInput("y").into();
        assert!(e.to_string().contains("statistics error"));
        let e: SciborqError = SamplingError::InvalidWeight(-1.0).into();
        assert!(e.to_string().contains("sampling error"));
        assert!(SciborqError::UnknownTable("t".into())
            .to_string()
            .contains("t"));
        let e = SciborqError::NoImpressions {
            table: "photoobj".into(),
        };
        assert!(e.to_string().contains("photoobj"));
        assert!(e.to_string().contains("no impression hierarchy"));
        assert!(SciborqError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(SciborqError::BoundsUnsatisfiable("why".into())
            .to_string()
            .contains("why"));
        let e = SciborqError::Internal {
            site: "session.query".into(),
        };
        assert!(e.to_string().contains("session.query"));
        assert!(e.to_string().contains("internal fault"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&SciborqError::InvalidConfig("x".into()));
    }
}
