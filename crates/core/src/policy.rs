//! Sampling policies for impressions.
//!
//! An impression "gathers data according to a sampling strategy" (§3.1). The
//! policy enumerates the strategies the paper describes — uniform (Figure 2),
//! Last-Seen (Figure 3) and workload-biased (Figure 6) — plus the stratified
//! baseline used by the ablation experiments.

use serde::{Deserialize, Serialize};

/// How an impression selects the tuples it retains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum SamplingPolicy {
    /// Uniform reservoir sampling (Algorithm R, Figure 2).
    #[default]
    Uniform,
    /// Recency-biased Last-Seen sampling (Figure 3).
    LastSeen {
        /// Fraction `k/n` of the reservoir reserved for fresh tuples.
        fresh_fraction: f64,
        /// Expected tuples per ingest window (`D`).
        daily_ingest: f64,
    },
    /// KDE-biased sampling steered by the workload's predicate set
    /// (Figure 6). The listed attributes are the "interesting attributes"
    /// whose requested values are logged.
    Biased {
        /// Attributes whose workload density steers the bias.
        attributes: Vec<String>,
    },
}

impl SamplingPolicy {
    /// A biased policy over the given attributes.
    pub fn biased<I, S>(attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        SamplingPolicy::Biased {
            attributes: attributes.into_iter().map(Into::into).collect(),
        }
    }

    /// A Last-Seen policy with the given parameters.
    pub fn last_seen(fresh_fraction: f64, daily_ingest: f64) -> Self {
        SamplingPolicy::LastSeen {
            fresh_fraction,
            daily_ingest,
        }
    }

    /// Whether the policy produces equal-probability samples, i.e. whether
    /// classical SRS estimators apply.
    pub fn is_uniform(&self) -> bool {
        matches!(self, SamplingPolicy::Uniform)
    }

    /// Whether the policy reacts to the observed workload (and therefore
    /// needs re-adaptation when the focus shifts).
    pub fn is_workload_driven(&self) -> bool {
        matches!(self, SamplingPolicy::Biased { .. })
    }

    /// Short name used in reports and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingPolicy::Uniform => "uniform",
            SamplingPolicy::LastSeen { .. } => "last-seen",
            SamplingPolicy::Biased { .. } => "biased",
        }
    }

    /// Validate the policy parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SamplingPolicy::Uniform => Ok(()),
            SamplingPolicy::LastSeen {
                fresh_fraction,
                daily_ingest,
            } => {
                if !(*fresh_fraction > 0.0 && *fresh_fraction <= 1.0) {
                    Err("fresh_fraction must lie in (0, 1]".to_owned())
                } else if !(*daily_ingest > 0.0) {
                    Err("daily_ingest must be positive".to_owned())
                } else {
                    Ok(())
                }
            }
            SamplingPolicy::Biased { attributes } => {
                if attributes.is_empty() {
                    Err("biased policy needs at least one steering attribute".to_owned())
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_names() {
        assert_eq!(SamplingPolicy::Uniform.name(), "uniform");
        assert_eq!(SamplingPolicy::last_seen(0.5, 1000.0).name(), "last-seen");
        assert_eq!(SamplingPolicy::biased(["ra", "dec"]).name(), "biased");
        assert_eq!(SamplingPolicy::default(), SamplingPolicy::Uniform);
    }

    #[test]
    fn classification_helpers() {
        assert!(SamplingPolicy::Uniform.is_uniform());
        assert!(!SamplingPolicy::biased(["ra"]).is_uniform());
        assert!(SamplingPolicy::biased(["ra"]).is_workload_driven());
        assert!(!SamplingPolicy::last_seen(1.0, 10.0).is_workload_driven());
    }

    #[test]
    fn validation() {
        assert!(SamplingPolicy::Uniform.validate().is_ok());
        assert!(SamplingPolicy::last_seen(0.5, 100.0).validate().is_ok());
        assert!(SamplingPolicy::last_seen(0.0, 100.0).validate().is_err());
        assert!(SamplingPolicy::last_seen(1.5, 100.0).validate().is_err());
        assert!(SamplingPolicy::last_seen(0.5, 0.0).validate().is_err());
        assert!(SamplingPolicy::biased(["ra"]).validate().is_ok());
        assert!(SamplingPolicy::biased(Vec::<String>::new())
            .validate()
            .is_err());
    }

    #[test]
    fn biased_records_attributes() {
        match SamplingPolicy::biased(["ra", "dec"]) {
            SamplingPolicy::Biased { attributes } => {
                assert_eq!(attributes, vec!["ra".to_owned(), "dec".to_owned()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
