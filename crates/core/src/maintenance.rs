//! Workload-shift detection and impression adaptation (§3.1 "Adaptive").
//!
//! "An impression constantly adapts to the focal point of the scientist's
//! exploration [...] there are two phases where an impression has the
//! opportunity to re-adjust its focus: as a side-effect of query processing
//! and, alternatively, by triggering impression maintenance on subsequent
//! incremental loads."
//!
//! The [`AdaptiveMaintainer`] keeps, per tracked attribute, the focal regions
//! the current impressions were built for. After new queries arrive it
//! measures how much of the current workload falls outside those regions
//! ([`sciborq_workload::focal_shift`]); when the shift exceeds the configured
//! threshold the session rebuilds the workload-driven impressions from the
//! base data.

use crate::config::SciborqConfig;
use sciborq_workload::{extract_focal_regions, focal_shift, FocalRegion, PredicateSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The outcome of a maintenance check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceDecision {
    /// The measured workload shift per attribute, in [0, 1].
    pub shifts: BTreeMap<String, f64>,
    /// The largest per-attribute shift.
    pub max_shift: f64,
    /// Whether the shift exceeds the adaptation threshold and the biased
    /// impressions should be rebuilt.
    pub should_rebuild: bool,
}

/// Tracks the focal regions impressions were built against and decides when
/// they have drifted too far from the live workload.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveMaintainer {
    reference: BTreeMap<String, Vec<FocalRegion>>,
}

impl AdaptiveMaintainer {
    /// Create a maintainer with no reference focus yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a reference focus has been recorded for an attribute.
    pub fn has_reference(&self, attribute: &str) -> bool {
        self.reference.contains_key(attribute)
    }

    /// The reference focal regions of an attribute, if any.
    pub fn reference(&self, attribute: &str) -> Option<&[FocalRegion]> {
        self.reference.get(attribute).map(Vec::as_slice)
    }

    /// Record the current workload focus as the new reference (called right
    /// after impressions are (re)built).
    pub fn update_reference(&mut self, predicate_set: &PredicateSet, config: &SciborqConfig) {
        self.reference.clear();
        for attribute in predicate_set.attributes() {
            if let Some(hist) = predicate_set.histogram(attribute) {
                let regions = extract_focal_regions(attribute, hist, config.focal_threshold);
                self.reference.insert(attribute.to_owned(), regions);
            }
        }
    }

    /// Measure the drift of the current workload from the reference focus
    /// and decide whether to rebuild.
    pub fn evaluate(
        &self,
        predicate_set: &PredicateSet,
        config: &SciborqConfig,
    ) -> MaintenanceDecision {
        let mut shifts = BTreeMap::new();
        for attribute in predicate_set.attributes() {
            let current = predicate_set
                .histogram(attribute)
                .map(|hist| extract_focal_regions(attribute, hist, config.focal_threshold))
                .unwrap_or_default();
            let reference = self
                .reference
                .get(attribute)
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            // with no reference recorded yet, any focus counts as a full shift
            let shift = if reference.is_empty() && !current.is_empty() {
                1.0
            } else {
                focal_shift(reference, &current)
            };
            shifts.insert(attribute.to_owned(), shift);
        }
        let max_shift = shifts.values().copied().fold(0.0, f64::max);
        MaintenanceDecision {
            max_shift,
            should_rebuild: max_shift > config.adapt_threshold,
            shifts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_workload::AttributeDomain;

    fn predicate_set_focused_at(ra: f64) -> PredicateSet {
        let mut ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        for _ in 0..200 {
            ps.log_value("ra", ra);
            ps.log_value("ra", ra + 2.0);
        }
        ps
    }

    #[test]
    fn no_reference_and_no_focus_means_no_rebuild() {
        let maintainer = AdaptiveMaintainer::new();
        let ps = PredicateSet::new(&[("ra", AttributeDomain::new(0.0, 360.0, 36))]).unwrap();
        let decision = maintainer.evaluate(&ps, &SciborqConfig::default());
        assert_eq!(decision.max_shift, 0.0);
        assert!(!decision.should_rebuild);
    }

    #[test]
    fn first_focus_without_reference_triggers_rebuild() {
        let maintainer = AdaptiveMaintainer::new();
        let ps = predicate_set_focused_at(185.0);
        let decision = maintainer.evaluate(&ps, &SciborqConfig::default());
        assert_eq!(decision.max_shift, 1.0);
        assert!(decision.should_rebuild);
        assert!(!maintainer.has_reference("ra"));
    }

    #[test]
    fn stable_focus_does_not_trigger_rebuild() {
        let mut maintainer = AdaptiveMaintainer::new();
        let config = SciborqConfig::default();
        let ps = predicate_set_focused_at(185.0);
        maintainer.update_reference(&ps, &config);
        assert!(maintainer.has_reference("ra"));
        assert!(!maintainer.reference("ra").unwrap().is_empty());
        let decision = maintainer.evaluate(&ps, &config);
        assert!(decision.max_shift < 0.2, "shift {}", decision.max_shift);
        assert!(!decision.should_rebuild);
    }

    #[test]
    fn focus_shift_triggers_rebuild() {
        let mut maintainer = AdaptiveMaintainer::new();
        let config = SciborqConfig::default();
        let before = predicate_set_focused_at(185.0);
        maintainer.update_reference(&before, &config);
        // the scientist moves to a completely different sky region
        let after = predicate_set_focused_at(40.0);
        let decision = maintainer.evaluate(&after, &config);
        assert!(decision.max_shift > 0.8, "shift {}", decision.max_shift);
        assert!(decision.should_rebuild);
        assert_eq!(decision.shifts.len(), 1);
    }

    #[test]
    fn partial_shift_respects_threshold() {
        let mut maintainer = AdaptiveMaintainer::new();
        let mut config = SciborqConfig::default();
        let before = predicate_set_focused_at(185.0);
        maintainer.update_reference(&before, &config);
        // half of the new workload still targets the old region
        let mut after = predicate_set_focused_at(185.0);
        for _ in 0..400 {
            after.log_value("ra", 40.0);
        }
        let decision = maintainer.evaluate(&after, &config);
        assert!(decision.max_shift > 0.2 && decision.max_shift < 0.8);
        config.adapt_threshold = 0.9;
        let strict = maintainer.evaluate(&after, &config);
        assert!(!strict.should_rebuild);
        config.adapt_threshold = 0.1;
        let loose = maintainer.evaluate(&after, &config);
        assert!(loose.should_rebuild);
    }

    #[test]
    fn update_reference_replaces_old_reference() {
        let mut maintainer = AdaptiveMaintainer::new();
        let config = SciborqConfig::default();
        maintainer.update_reference(&predicate_set_focused_at(185.0), &config);
        maintainer.update_reference(&predicate_set_focused_at(40.0), &config);
        let decision = maintainer.evaluate(&predicate_set_focused_at(40.0), &config);
        assert!(!decision.should_rebuild);
    }
}
