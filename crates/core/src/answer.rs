//! Approximate answers with explicit quality and runtime metadata.

use crate::engine::QueryBounds;
use sciborq_columnar::Table;
use sciborq_stats::ConfidenceInterval;
use sciborq_telemetry::{FaultEvent, LevelTrace, QueryTrace};
use std::fmt;
use std::time::Duration;

/// Where a query was (finally) evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvaluationLevel {
    /// An impression at the given 1-based layer index (1 = most detailed).
    Layer(usize),
    /// The base table (exact answer, zero error).
    BaseData,
}

impl EvaluationLevel {
    /// The level's stable telemetry name: `"layer-N"` or `"base"`. Used as
    /// a metric-name suffix and as the level identifier in query traces
    /// (the telemetry crate identifies levels by name to stay free of core
    /// types).
    pub fn name(&self) -> String {
        match self {
            EvaluationLevel::Layer(i) => format!("layer-{i}"),
            EvaluationLevel::BaseData => "base".to_owned(),
        }
    }
}

impl fmt::Display for EvaluationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvaluationLevel::Layer(i) => write!(f, "layer {i}"),
            EvaluationLevel::BaseData => write!(f, "base data"),
        }
    }
}

/// What a visited escalation level's estimate achieved — the quality-side
/// complement to [`LevelScan`]'s cost accounting. Collected by the engine
/// only when trace collection is on, and joined with the level scans to
/// build a [`QueryTrace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelEstimate {
    /// The level the estimate was computed at.
    pub level: EvaluationLevel,
    /// The relative error the estimate achieved (half-width over estimate),
    /// when an interval existed.
    pub relative_error: Option<f64>,
    /// Whether the estimate satisfied the requested error bound.
    pub error_bound_met: bool,
}

/// Join per-level scans with per-level estimates into trace levels.
fn trace_levels(scans: &[LevelScan], estimates: &[LevelEstimate]) -> Vec<LevelTrace> {
    scans
        .iter()
        .map(|scan| {
            let estimate = estimates.iter().find(|e| e.level == scan.level);
            LevelTrace {
                level: scan.level.name(),
                rows_scanned: scan.rows_scanned,
                elapsed: scan.elapsed,
                shards: scan.shards,
                relative_error: estimate.and_then(|e| e.relative_error),
                error_bound_met: estimate.is_some_and(|e| e.error_bound_met),
            }
        })
        .collect()
}

fn finite(value: Option<f64>) -> Option<f64> {
    value.filter(|v| v.is_finite())
}

/// Measured scan work for one visited escalation level.
///
/// `rows_scanned` counts the row positions the scan kernels actually
/// visited at this level — with candidate-list refinement, the later
/// predicates of a conjunction touch fewer rows, so this is *measured*
/// work rather than the old `level row count` assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelScan {
    /// The level that was evaluated.
    pub level: EvaluationLevel,
    /// Row positions visited by the scan kernels at this level, summed
    /// across all shards when the scan fanned out (`rows_scanned` is the
    /// rolled-up per-shard accounting, so it stays comparable between
    /// single-threaded and sharded runs).
    pub rows_scanned: u64,
    /// Wall-clock time spent evaluating this level.
    pub elapsed: Duration,
    /// Number of parallel scan shards used at this level (1 = the scan ran
    /// on the calling thread). When several passes hit the same level, the
    /// widest fan-out is reported.
    pub shards: usize,
}

/// The answer to an aggregate query evaluated under bounds.
#[derive(Debug, Clone)]
pub struct ApproximateAnswer {
    /// Rendered form of the executed query.
    pub query: String,
    /// The point estimate (None when the aggregate was undefined, e.g. AVG
    /// over zero matching rows).
    pub value: Option<f64>,
    /// The confidence interval around the estimate (None when undefined).
    pub interval: Option<ConfidenceInterval>,
    /// Where the final evaluation happened.
    pub level: EvaluationLevel,
    /// Measured number of row positions the scan kernels visited across all
    /// attempted levels.
    pub rows_scanned: u64,
    /// Number of escalations to a more detailed level that were needed.
    pub escalations: usize,
    /// Wall-clock time spent answering.
    pub elapsed: Duration,
    /// Per-level measured scan accounting, in escalation order.
    pub level_scans: Vec<LevelScan>,
    /// Whether the requested error bound was met.
    pub error_bound_met: bool,
    /// Whether the runtime bounds were *actually* respected: the final
    /// evaluation stayed within the row budget **and** the wall-clock
    /// elapsed when the answer was produced was within `time_budget`. This
    /// is measured, never assumed — an engine that blows the budget while
    /// evaluating its final level reports `false` here.
    pub time_bound_met: bool,
    /// Whether the answer was degraded by a fault: an escalation level (or
    /// the base-data fall-through) was lost to a panic and the answer came
    /// from the best level that *did* complete. `error_bound_met` and
    /// `time_bound_met` are still measured honestly against what was
    /// returned — `degraded` flags that the engine could not attempt the
    /// level it wanted, not that the reported bounds are wrong. Always
    /// `false` on the fault-free path.
    pub degraded: bool,
    /// Faults, recoveries and degradations observed while answering, in
    /// occurrence order (empty on the fault-free path).
    pub fault_events: Vec<FaultEvent>,
    /// The structured execution trace, present when the configuration's
    /// `collect_traces` knob is on. Strictly observational — carries no
    /// information that feeds back into the answer.
    pub trace: Option<QueryTrace>,
}

impl ApproximateAnswer {
    /// Build this answer's execution trace from the engine's per-level
    /// quality estimates, the requested bounds, and the configured scan
    /// fan-out. The admission slot stays `None`; the serving layer fills it
    /// in when the query arrived through the front end.
    pub(crate) fn build_trace(
        &self,
        estimates: &[LevelEstimate],
        bounds: &QueryBounds,
        parallelism: usize,
    ) -> QueryTrace {
        QueryTrace {
            query: self.query.clone(),
            admission: None,
            levels: trace_levels(&self.level_scans, estimates),
            parallelism,
            final_level: self.level.name(),
            escalations: self.escalations,
            error_bound_met: self.error_bound_met,
            time_bound_met: self.time_bound_met,
            elapsed: self.elapsed,
            requested_error: finite(bounds.max_relative_error),
            time_budget: bounds.time_budget,
            degraded: self.degraded,
            faults: self.fault_events.clone(),
        }
    }
    /// Whether the answer is exact (evaluated on base data).
    pub fn is_exact(&self) -> bool {
        self.level == EvaluationLevel::BaseData
    }

    /// Number of levels (impressions and/or the base data) that were
    /// evaluated while answering.
    pub fn levels_visited(&self) -> usize {
        self.level_scans.len()
    }

    /// The relative half-width of the confidence interval (0 for exact
    /// answers, infinity when no interval could be computed).
    pub fn relative_error(&self) -> f64 {
        match &self.interval {
            Some(ci) => ci.relative_half_width(),
            None => {
                if self.is_exact() {
                    0.0
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

impl fmt::Display for ApproximateAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.value, &self.interval) {
            (Some(v), Some(ci)) => write!(
                f,
                "{v:.4} ± {:.4} ({}% CI, {}, {} rows scanned)",
                ci.half_width(),
                (ci.confidence * 100.0).round(),
                self.level,
                self.rows_scanned
            ),
            (Some(v), None) => write!(f, "{v:.4} (exact, {})", self.level),
            _ => write!(f, "undefined ({})", self.level),
        }
    }
}

/// The answer to a SELECT query evaluated against impressions.
#[derive(Debug, Clone)]
pub struct SelectAnswer {
    /// Rendered form of the executed query.
    pub query: String,
    /// The returned rows (an excerpt of the impression or base table).
    pub rows: Table,
    /// Estimated number of base-table rows matching the predicate.
    pub estimated_total_matches: f64,
    /// Where the final evaluation happened.
    pub level: EvaluationLevel,
    /// Measured number of row positions the scan kernels visited across all
    /// attempted levels.
    pub rows_scanned: u64,
    /// Number of escalations that were needed.
    pub escalations: usize,
    /// Wall-clock time spent answering.
    pub elapsed: Duration,
    /// Per-level measured scan accounting, in escalation order.
    pub level_scans: Vec<LevelScan>,
    /// Whether the runtime bounds were respected: escalation never exceeded
    /// the row budget and the answer was produced within `time_budget`
    /// (measured, like [`ApproximateAnswer::time_bound_met`]).
    pub time_bound_met: bool,
    /// Whether the answer was degraded by a fault (see
    /// [`ApproximateAnswer::degraded`]). Always `false` on the fault-free
    /// path.
    pub degraded: bool,
    /// Faults, recoveries and degradations observed while answering, in
    /// occurrence order (empty on the fault-free path).
    pub fault_events: Vec<FaultEvent>,
    /// The structured execution trace, present when the configuration's
    /// `collect_traces` knob is on (see [`ApproximateAnswer::trace`]).
    pub trace: Option<QueryTrace>,
}

impl SelectAnswer {
    /// Build this answer's execution trace. Selections carry no per-level
    /// error estimates: a level either returned enough rows (bound met) or
    /// escalation continued, so every visited level reports `relative_error:
    /// None` and the final bound verdict lives on the trace itself.
    pub(crate) fn build_trace(&self, bounds: &QueryBounds, parallelism: usize) -> QueryTrace {
        QueryTrace {
            query: self.query.clone(),
            admission: None,
            levels: trace_levels(&self.level_scans, &[]),
            parallelism,
            final_level: self.level.name(),
            escalations: self.escalations,
            error_bound_met: true,
            time_bound_met: self.time_bound_met,
            elapsed: self.elapsed,
            requested_error: finite(bounds.max_relative_error),
            time_budget: bounds.time_budget,
            degraded: self.degraded,
            faults: self.fault_events.clone(),
        }
    }
    /// Number of rows returned to the user.
    pub fn returned_rows(&self) -> usize {
        self.rows.row_count()
    }

    /// Number of levels (impressions and/or the base data) that were
    /// evaluated while answering.
    pub fn levels_visited(&self) -> usize {
        self.level_scans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Schema};

    fn interval() -> ConfidenceInterval {
        ConfidenceInterval::normal(100.0, 5.0, 0.95).unwrap()
    }

    #[test]
    fn evaluation_level_display() {
        assert_eq!(EvaluationLevel::Layer(2).to_string(), "layer 2");
        assert_eq!(EvaluationLevel::BaseData.to_string(), "base data");
        assert_eq!(EvaluationLevel::Layer(2).name(), "layer-2");
        assert_eq!(EvaluationLevel::BaseData.name(), "base");
    }

    #[test]
    fn approximate_answer_helpers() {
        let a = ApproximateAnswer {
            query: "q".into(),
            value: Some(100.0),
            interval: Some(interval()),
            level: EvaluationLevel::Layer(3),
            rows_scanned: 1_000,
            escalations: 1,
            elapsed: Duration::from_millis(5),
            level_scans: vec![
                LevelScan {
                    level: EvaluationLevel::Layer(4),
                    rows_scanned: 500,
                    elapsed: Duration::from_millis(2),
                    shards: 1,
                },
                LevelScan {
                    level: EvaluationLevel::Layer(3),
                    rows_scanned: 500,
                    elapsed: Duration::from_millis(3),
                    shards: 4,
                },
            ],
            error_bound_met: true,
            time_bound_met: true,
            degraded: false,
            fault_events: Vec::new(),
            trace: None,
        };
        assert!(!a.is_exact());
        assert_eq!(a.levels_visited(), 2);
        assert!(a.relative_error() > 0.0 && a.relative_error() < 0.2);
        let s = a.to_string();
        assert!(s.contains("layer 3"));
        assert!(s.contains("1000 rows"));
    }

    #[test]
    fn exact_answer_has_zero_error() {
        let a = ApproximateAnswer {
            query: "q".into(),
            value: Some(42.0),
            interval: None,
            level: EvaluationLevel::BaseData,
            rows_scanned: 10,
            escalations: 2,
            elapsed: Duration::ZERO,
            level_scans: Vec::new(),
            error_bound_met: true,
            time_bound_met: false,
            degraded: false,
            fault_events: Vec::new(),
            trace: None,
        };
        assert!(a.is_exact());
        assert_eq!(a.relative_error(), 0.0);
        assert!(a.to_string().contains("exact"));
    }

    #[test]
    fn undefined_answer_displays_and_reports_infinite_error() {
        let a = ApproximateAnswer {
            query: "q".into(),
            value: None,
            interval: None,
            level: EvaluationLevel::Layer(1),
            rows_scanned: 0,
            escalations: 0,
            elapsed: Duration::ZERO,
            level_scans: Vec::new(),
            error_bound_met: false,
            time_bound_met: true,
            degraded: false,
            fault_events: Vec::new(),
            trace: None,
        };
        assert_eq!(a.relative_error(), f64::INFINITY);
        assert!(a.to_string().contains("undefined"));
    }

    #[test]
    fn select_answer_counts_rows() {
        let schema = Schema::shared(vec![Field::new("x", DataType::Int64)]).unwrap();
        let mut rows = Table::new("result", schema);
        rows.append_row(&[1i64.into()]).unwrap();
        rows.append_row(&[2i64.into()]).unwrap();
        let a = SelectAnswer {
            query: "q".into(),
            rows,
            estimated_total_matches: 200.0,
            level: EvaluationLevel::Layer(1),
            rows_scanned: 50,
            escalations: 0,
            elapsed: Duration::from_micros(10),
            level_scans: Vec::new(),
            time_bound_met: true,
            degraded: false,
            fault_events: Vec::new(),
            trace: None,
        };
        assert_eq!(a.returned_rows(), 2);
        assert_eq!(a.estimated_total_matches, 200.0);
    }
}
