//! Impressions: the biased, bounded-size samples at the heart of SciBORQ.
//!
//! An impression is a materialised sample of a table (or of a more detailed
//! impression one layer below) together with the metadata the bounded query
//! engine needs: which policy built it, how many tuples the source held when
//! it was built, and — for biased impressions — the interest weight of every
//! retained tuple, so that estimates can be corrected for the unequal
//! selection probabilities.
//!
//! ## Lifecycle of the probability cache
//!
//! The weighted (Hansen–Hurwitz) estimators need every retained row's
//! single-draw selection probability. Deriving it per query (`wᵢ / Σw`) would
//! put a division on the hottest loop in the system, so a biased impression
//! precomputes the whole slice **once per impression**: at construction, and
//! again on [`Impression::rescale_population`] (re-anchoring changes the
//! normaliser). Queries — and the fused weighted scan kernels — borrow the
//! cached slice via [`Impression::selection_probabilities`] and never
//! recompute it. Self-weighted impressions skip the cache entirely: every
//! row's probability is the constant `1/cnt` and their estimators never
//! read it per row.

use crate::config::{SciborqConfig, StorageClass};
use crate::error::{Result, SciborqError};
use crate::policy::SamplingPolicy;
use sciborq_columnar::{MomentSketch, SelectionVector, Table};
use sciborq_stats::{
    Estimate, SrsEstimator, WeightedEstimator, WeightedMomentSketch, WeightedObservation,
};

/// A materialised sample of a source table plus sampling metadata.
#[derive(Debug, Clone)]
pub struct Impression {
    /// Name of this impression (e.g. `photoobj.layer1.biased`).
    name: String,
    /// Name of the source table (the base fact table).
    source_table: String,
    /// The sampled rows, materialised as a columnar table.
    data: Table,
    /// Interest weight of each retained row (aligned with `data` rows).
    weights: Vec<f64>,
    /// Per-row single-draw selection probabilities, precomputed once per
    /// impression (see the module docs) so the weighted estimators and the
    /// fused weighted scan kernels never derive them per query.
    probabilities: Vec<f64>,
    /// Sum of the interest weights over *all* tuples observed during
    /// construction (the normaliser for selection probabilities).
    total_observed_weight: f64,
    /// Number of tuples observed during construction (`cnt`).
    source_rows: u64,
    /// The policy that built this impression.
    policy: SamplingPolicy,
    /// Which layer this impression sits on (1 = most detailed impression).
    layer: usize,
}

/// Maximum distinct-value count for which an impression's Utf8 columns are
/// dictionary-encoded at construction. Scientific category columns (object
/// class, filter band, processing flags) sit orders of magnitude below this;
/// columns that exceed it (identifiers, free text) would pay dictionary
/// maintenance without ever winning on scan speed and stay plain.
pub const DICT_MAX_CARDINALITY: usize = 1 << 16;

impl Impression {
    /// Assemble an impression from its parts. Intended to be called by the
    /// [`crate::builder::ImpressionBuilder`].
    ///
    /// Utf8 columns with at most [`DICT_MAX_CARDINALITY`] distinct values
    /// are dictionary-encoded here, once, so every later scan of the
    /// impression runs string predicates as integer-code compares.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        source_table: impl Into<String>,
        mut data: Table,
        weights: Vec<f64>,
        total_observed_weight: f64,
        source_rows: u64,
        policy: SamplingPolicy,
        layer: usize,
    ) -> Result<Self> {
        if weights.len() != data.row_count() {
            return Err(SciborqError::InvalidConfig(format!(
                "impression has {} rows but {} weights",
                data.row_count(),
                weights.len()
            )));
        }
        data.dict_encode_strings(DICT_MAX_CARDINALITY);
        let mut imp = Impression {
            name: name.into(),
            source_table: source_table.into(),
            data,
            weights,
            probabilities: Vec::new(),
            total_observed_weight,
            source_rows,
            policy,
            layer,
        };
        imp.recompute_probabilities();
        Ok(imp)
    }

    /// Rebuild the cached selection-probability slice. Called at
    /// construction and whenever the population anchoring changes. Only
    /// biased impressions materialise the slice — self-weighted policies
    /// never read per-row probabilities on any estimation path, so caching
    /// an n-length constant vector for them would only waste memory (and
    /// skew `byte_size`-based storage-class placement).
    fn recompute_probabilities(&mut self) {
        self.probabilities = match &self.policy {
            SamplingPolicy::Biased { .. } if self.total_observed_weight > 0.0 => {
                let total = self.total_observed_weight;
                self.weights
                    .iter()
                    .map(|w| (w / total).max(f64::MIN_POSITIVE))
                    .collect()
            }
            SamplingPolicy::Biased { .. } => {
                // no weight ever observed: degrade to uniform draws
                vec![self.uniform_probability(); self.weights.len()]
            }
            _ => Vec::new(),
        };
    }

    /// The impression's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The name of the base table this impression summarises.
    pub fn source_table(&self) -> &str {
        &self.source_table
    }

    /// The sampled rows.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// Number of retained rows (`n`).
    pub fn row_count(&self) -> usize {
        self.data.row_count()
    }

    /// Number of tuples the source held when the impression was built
    /// (`cnt`).
    pub fn source_rows(&self) -> u64 {
        self.source_rows
    }

    /// The total interest weight observed during construction (the
    /// normaliser of biased selection probabilities).
    pub fn total_observed_weight(&self) -> f64 {
        self.total_observed_weight
    }

    /// Re-anchor the population this impression is treated as a sample of.
    ///
    /// Derived layers are physically sampled from the impression one layer
    /// below, but statistically they summarise the *base* table: the
    /// hierarchy rescales their population size (and, for biased policies,
    /// the total interest weight) to the base table's, so that estimates
    /// expand all the way to the base data rather than to the parent layer.
    pub fn rescale_population(&mut self, source_rows: u64, total_observed_weight: f64) {
        self.source_rows = source_rows;
        self.total_observed_weight = total_observed_weight;
        // both inputs feed the cached probability slice
        self.recompute_probabilities();
    }

    /// The sampling fraction `n / cnt`.
    pub fn sampling_fraction(&self) -> f64 {
        if self.source_rows == 0 {
            1.0
        } else {
            self.row_count() as f64 / self.source_rows as f64
        }
    }

    /// The policy that built the impression.
    pub fn policy(&self) -> &SamplingPolicy {
        &self.policy
    }

    /// The layer index (1 = sampled directly from the base data).
    pub fn layer(&self) -> usize {
        self.layer
    }

    /// Interest weights of the retained rows.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Approximate memory footprint in bytes (including the cached
    /// selection-probability slice).
    pub fn byte_size(&self) -> usize {
        self.data.byte_size() + (self.weights.len() + self.probabilities.len()) * 8
    }

    /// The storage class (CPU cache / RAM / disk) this impression falls in.
    pub fn storage_class(&self, config: &SciborqConfig) -> StorageClass {
        StorageClass::classify(self.byte_size(), config)
    }

    /// The uniform single-draw probability `1/cnt` (the self-weighted
    /// policies' probability, and the biased fallback when no weight was
    /// ever observed).
    fn uniform_probability(&self) -> f64 {
        if self.source_rows == 0 {
            1.0
        } else {
            1.0 / self.source_rows as f64
        }
    }

    /// The single-draw selection probability of retained row `idx`, suitable
    /// for Hansen–Hurwitz estimation. For self-weighted policies this is
    /// simply `1/cnt`; for biased policies it is `wᵢ / Σ w` over all
    /// observed tuples, read from the cached slice.
    pub fn selection_probability(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.row_count());
        if self.uses_weighted_estimators() {
            self.probabilities[idx]
        } else {
            self.uniform_probability()
        }
    }

    /// The per-row single-draw selection probabilities, precomputed once per
    /// impression. This is the slice the fused weighted scan kernels
    /// (`CompiledPredicate::{count_weighted, filter_weighted_moments}`)
    /// expand matching rows by. Empty for self-weighted policies, whose
    /// streamed estimators never read per-row probabilities (every row's is
    /// the constant `1/cnt`, see [`Impression::selection_probability`]).
    pub fn selection_probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Whether this impression's estimators use the weighted
    /// (Hansen–Hurwitz / Hájek) family, i.e. whether streamed estimation
    /// goes through the `*_weighted` entry points and the probability slice.
    /// Every policy streams: self-weighted policies (uniform, last-seen)
    /// stream match counts and [`MomentSketch`]es into the SRS estimators;
    /// biased policies stream [`WeightedMomentSketch`]es into the
    /// Hansen–Hurwitz estimators.
    pub fn uses_weighted_estimators(&self) -> bool {
        matches!(self.policy, SamplingPolicy::Biased { .. })
    }

    /// Guard for the SRS streamed entry points, which remain exclusive to
    /// self-weighted policies (biased impressions stream through the
    /// `*_weighted` counterparts).
    fn require_self_weighted(&self, what: &str) -> Result<()> {
        if self.uses_weighted_estimators() {
            return Err(SciborqError::InvalidConfig(format!(
                "streamed {what} estimation requires a self-weighted impression; \
                 biased impressions use the weighted streamed estimators"
            )));
        }
        Ok(())
    }

    /// Estimate COUNT from a fused filter+count kernel's match count,
    /// without a selection vector. Only valid for self-weighted policies;
    /// biased impressions use [`Impression::estimate_count_weighted`].
    pub fn estimate_count_streamed(&self, matched: usize) -> Result<Estimate> {
        self.require_self_weighted("COUNT")?;
        let est = SrsEstimator::new(self.source_rows, self.row_count() as u64)?
            .estimate_count(matched)?;
        Ok(est)
    }

    /// Estimate SUM from a fused filter+aggregate moment sketch, without
    /// re-walking any selection. Only valid for self-weighted policies;
    /// biased impressions use [`Impression::estimate_sum_weighted`].
    pub fn estimate_sum_streamed(&self, sketch: &MomentSketch) -> Result<Estimate> {
        self.require_self_weighted("SUM")?;
        let est = SrsEstimator::new(self.source_rows, self.row_count() as u64)?
            .estimate_sum_parts(sketch.count, sketch.sum, sketch.sum_sq)?;
        Ok(est)
    }

    /// Estimate AVG from a fused filter+aggregate moment sketch, without
    /// re-walking any selection. Only valid for self-weighted policies;
    /// biased impressions use [`Impression::estimate_avg_weighted`].
    pub fn estimate_avg_streamed(&self, sketch: &MomentSketch) -> Result<Estimate> {
        self.require_self_weighted("AVG")?;
        let est = SrsEstimator::new(self.source_rows, self.row_count() as u64)?
            .estimate_avg_parts(sketch.count, sketch.mean, sketch.m2)?;
        Ok(est)
    }

    /// Shared tail of the weighted COUNT / SUM streamed estimators: both are
    /// Hansen–Hurwitz totals over this impression's draws (COUNT feeds value
    /// `1.0` through the same fold).
    fn estimate_total_weighted(&self, sketch: &WeightedMomentSketch) -> Result<Estimate> {
        if self.row_count() == 0 {
            return Ok(Estimate::exact(0.0, 0));
        }
        Ok(WeightedEstimator::estimate_total_from_sketch(
            sketch,
            self.row_count(),
        )?)
    }

    /// Estimate COUNT from a fused *weighted* filter+count sketch
    /// (`CompiledPredicate::count_weighted` over
    /// [`Impression::selection_probabilities`]) — the streamed
    /// Hansen–Hurwitz path: no selection vector, no observation vector.
    ///
    /// Bit-identical to [`Impression::estimate_count`] on the equivalent
    /// selection: both fold the same expansions in the same row order.
    pub fn estimate_count_weighted(&self, sketch: &WeightedMomentSketch) -> Result<Estimate> {
        self.estimate_total_weighted(sketch)
    }

    /// Estimate SUM from a fused weighted filter+aggregate sketch
    /// (`CompiledPredicate::filter_weighted_moments`) — the streamed
    /// Hansen–Hurwitz path. Bit-identical to [`Impression::estimate_sum`]
    /// on the equivalent selection.
    pub fn estimate_sum_weighted(&self, sketch: &WeightedMomentSketch) -> Result<Estimate> {
        self.estimate_total_weighted(sketch)
    }

    /// Estimate AVG from a fused weighted filter+aggregate sketch — the
    /// streamed Hájek ratio path. Bit-identical to
    /// [`Impression::estimate_avg`] on the equivalent selection; errors when
    /// no matching draw carried a non-NULL value, like the selection path.
    pub fn estimate_avg_weighted(&self, sketch: &WeightedMomentSketch) -> Result<Estimate> {
        if sketch.count == 0 {
            return Err(SciborqError::Stats(sciborq_stats::StatsError::EmptyInput(
                "no matching rows in impression",
            )));
        }
        Ok(WeightedEstimator::estimate_mean_from_sketch(sketch)?)
    }

    /// Estimate the number of source-table rows matching a selection of this
    /// impression's rows.
    pub fn estimate_count(&self, selection: &SelectionVector) -> Result<Estimate> {
        match self.policy {
            SamplingPolicy::Uniform | SamplingPolicy::LastSeen { .. } => {
                let est = SrsEstimator::new(self.source_rows, self.row_count() as u64)?
                    .estimate_count(selection.len())?;
                Ok(est)
            }
            SamplingPolicy::Biased { .. } => {
                if self.row_count() == 0 {
                    return Ok(Estimate::exact(0.0, 0));
                }
                // Walk only the selected rows (ascending, so the fold order
                // matches the streamed kernels); non-matching draws are
                // zero-valued and left implicit — the estimator zero-extends
                // over the full draw count.
                let observations: Vec<WeightedObservation> = selection
                    .iter()
                    .map(|i| WeightedObservation {
                        value: 1.0,
                        probability: self.probabilities[i],
                    })
                    .collect();
                let mut est = WeightedEstimator::estimate_total_zero_extended(
                    &observations,
                    self.row_count(),
                )?;
                // Degrees of freedom for the interval come from the draws
                // that matched the predicate, mirroring `SrsEstimator`.
                if !selection.is_empty() {
                    est.sample_size = selection.len();
                }
                Ok(est)
            }
        }
    }

    /// Estimate the source-table SUM of `column` over the selected rows.
    pub fn estimate_sum(&self, column: &str, selection: &SelectionVector) -> Result<Estimate> {
        match self.policy {
            SamplingPolicy::Uniform | SamplingPolicy::LastSeen { .. } => {
                let values = self.data.numeric_values(column, selection)?;
                Ok(
                    SrsEstimator::new(self.source_rows, self.row_count() as u64)?
                        .estimate_sum(&values)?,
                )
            }
            SamplingPolicy::Biased { .. } => {
                let col = self.numeric_column(column)?;
                if self.row_count() == 0 {
                    return Ok(Estimate::exact(0.0, 0));
                }
                // Selected rows only, in row order; NULL values are skipped —
                // like non-matching draws they are zero-valued, so the
                // zero-extension already accounts for them.
                let observations: Vec<WeightedObservation> = selection
                    .iter()
                    .filter_map(|i| {
                        col.get_f64(i).map(|value| WeightedObservation {
                            value,
                            probability: self.probabilities[i],
                        })
                    })
                    .collect();
                let mut est = WeightedEstimator::estimate_total_zero_extended(
                    &observations,
                    self.row_count(),
                )?;
                if !selection.is_empty() {
                    est.sample_size = selection.len();
                }
                Ok(est)
            }
        }
    }

    /// Look up a column and insist it is numeric, without materialising its
    /// values (the weighted estimators scan it exactly once themselves).
    fn numeric_column(&self, column: &str) -> Result<&sciborq_columnar::Column> {
        let col = self.data.column(column)?;
        if !col.data_type().is_numeric() {
            return Err(SciborqError::Columnar(
                sciborq_columnar::ColumnarError::NotNumeric(column.to_owned()),
            ));
        }
        Ok(col)
    }

    /// Estimate the source-table AVG of `column` over the selected rows.
    pub fn estimate_avg(&self, column: &str, selection: &SelectionVector) -> Result<Estimate> {
        match self.policy {
            SamplingPolicy::Uniform | SamplingPolicy::LastSeen { .. } => {
                let values = self.data.numeric_values(column, selection)?;
                Ok(
                    SrsEstimator::new(self.source_rows, self.row_count() as u64)?
                        .estimate_avg(&values)?,
                )
            }
            SamplingPolicy::Biased { .. } => {
                let col = self.numeric_column(column)?;
                let observations: Vec<WeightedObservation> = selection
                    .iter()
                    .filter_map(|i| {
                        col.get_f64(i).map(|value| WeightedObservation {
                            value,
                            probability: self.selection_probability(i),
                        })
                    })
                    .collect();
                if observations.is_empty() {
                    return Err(SciborqError::Stats(sciborq_stats::StatsError::EmptyInput(
                        "no matching rows in impression",
                    )));
                }
                Ok(WeightedEstimator::estimate_mean(&observations)?)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciborq_columnar::{DataType, Field, Predicate, Schema, Value};

    fn impression_with(policy: SamplingPolicy) -> Impression {
        let schema = Schema::shared(vec![
            Field::new("ra", DataType::Float64),
            Field::new("r_mag", DataType::Float64),
        ])
        .unwrap();
        let mut data = Table::new("sample", schema);
        let rows = [(180.0, 17.0), (185.0, 18.0), (190.0, 19.0), (200.0, 20.0)];
        for (ra, mag) in rows {
            data.append_row(&[Value::Float64(ra), Value::Float64(mag)])
                .unwrap();
        }
        let weights = vec![1.0, 2.0, 1.0, 0.5];
        Impression::new(
            "photoobj.l1",
            "photoobj",
            data,
            weights,
            100.0,
            1_000,
            policy,
            1,
        )
        .unwrap()
    }

    #[test]
    fn metadata_accessors() {
        let imp = impression_with(SamplingPolicy::Uniform);
        assert_eq!(imp.name(), "photoobj.l1");
        assert_eq!(imp.source_table(), "photoobj");
        assert_eq!(imp.row_count(), 4);
        assert_eq!(imp.source_rows(), 1_000);
        assert!((imp.sampling_fraction() - 0.004).abs() < 1e-12);
        assert_eq!(imp.layer(), 1);
        assert_eq!(imp.policy().name(), "uniform");
        assert_eq!(imp.weights().len(), 4);
        assert!(imp.byte_size() > 0);
        assert_eq!(
            imp.storage_class(&SciborqConfig::default()),
            StorageClass::CpuCache
        );
    }

    #[test]
    fn weight_length_mismatch_rejected() {
        let schema = Schema::shared(vec![Field::new("x", DataType::Float64)]).unwrap();
        let mut data = Table::new("s", schema);
        data.append_row(&[Value::Float64(1.0)]).unwrap();
        let err = Impression::new("i", "t", data, vec![], 0.0, 10, SamplingPolicy::Uniform, 1)
            .unwrap_err();
        assert!(matches!(err, SciborqError::InvalidConfig(_)));
    }

    #[test]
    fn uniform_selection_probability_is_one_over_cnt() {
        let imp = impression_with(SamplingPolicy::Uniform);
        assert!((imp.selection_probability(0) - 0.001).abs() < 1e-12);
        assert!((imp.selection_probability(3) - 0.001).abs() < 1e-12);
    }

    #[test]
    fn biased_selection_probability_proportional_to_weight() {
        let imp = impression_with(SamplingPolicy::biased(["ra"]));
        assert!((imp.selection_probability(1) / imp.selection_probability(0) - 2.0).abs() < 1e-9);
        assert!((imp.selection_probability(0) - 1.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_count_estimate_scales() {
        let imp = impression_with(SamplingPolicy::Uniform);
        let sel = Predicate::lt_eq("ra", 190.0).evaluate(imp.data()).unwrap();
        assert_eq!(sel.len(), 3);
        let est = imp.estimate_count(&sel).unwrap();
        // 3 of 4 sample rows match -> 750 of 1000
        assert!((est.value - 750.0).abs() < 1e-9);
        assert!(est.standard_error > 0.0);
    }

    #[test]
    fn uniform_avg_estimate() {
        let imp = impression_with(SamplingPolicy::Uniform);
        let sel = SelectionVector::all(4);
        let est = imp.estimate_avg("r_mag", &sel).unwrap();
        assert!((est.value - 18.5).abs() < 1e-9);
        let sum = imp.estimate_sum("r_mag", &sel).unwrap();
        assert!((sum.value - 1000.0 * 18.5).abs() < 1e-6);
    }

    #[test]
    fn biased_count_estimate_uses_weights() {
        let imp = impression_with(SamplingPolicy::biased(["ra"]));
        // all rows selected: HH estimator averages 1/p over draws; with the
        // chosen weights the estimate differs from the naive n/cnt expansion
        let est = imp.estimate_count(&SelectionVector::all(4)).unwrap();
        assert!(est.value > 0.0);
        // a selection of only the heavily weighted row should expand by less
        // than a selection of the lightly weighted row
        let heavy = imp
            .estimate_count(&SelectionVector::from_rows(vec![1]))
            .unwrap();
        let light = imp
            .estimate_count(&SelectionVector::from_rows(vec![3]))
            .unwrap();
        assert!(
            light.value > heavy.value,
            "low-probability rows must expand more: {} vs {}",
            light.value,
            heavy.value
        );
    }

    #[test]
    fn biased_avg_requires_matches() {
        let imp = impression_with(SamplingPolicy::biased(["ra"]));
        assert!(imp
            .estimate_avg("r_mag", &SelectionVector::empty())
            .is_err());
        let est = imp.estimate_avg("r_mag", &SelectionVector::all(4)).unwrap();
        assert!(est.value > 17.0 && est.value < 20.0);
    }

    #[test]
    fn estimates_on_missing_column_error() {
        let imp = impression_with(SamplingPolicy::Uniform);
        assert!(imp
            .estimate_avg("missing", &SelectionVector::all(4))
            .is_err());
        assert!(imp
            .estimate_sum("missing", &SelectionVector::all(4))
            .is_err());
    }

    #[test]
    fn streamed_estimates_match_selection_estimates() {
        use sciborq_columnar::CompiledPredicate;
        let imp = impression_with(SamplingPolicy::Uniform);
        assert!(!imp.uses_weighted_estimators());
        let predicate = Predicate::lt_eq("ra", 190.0);
        let sel = predicate.evaluate(imp.data()).unwrap();
        let compiled = CompiledPredicate::compile(&predicate, imp.data().schema()).unwrap();
        let (matched, _) = compiled.count_matches(imp.data()).unwrap();
        assert_eq!(
            imp.estimate_count(&sel).unwrap(),
            imp.estimate_count_streamed(matched).unwrap()
        );
        let (sketch, _) = compiled.filter_moments(imp.data(), "r_mag").unwrap();
        assert_eq!(
            imp.estimate_sum("r_mag", &sel).unwrap(),
            imp.estimate_sum_streamed(&sketch).unwrap()
        );
        // the selection path computes a naive sum/m mean while the sketch
        // accumulates a Welford mean — equal up to rounding, not bitwise
        let by_selection = imp.estimate_avg("r_mag", &sel).unwrap();
        let streamed = imp.estimate_avg_streamed(&sketch).unwrap();
        assert!(
            (by_selection.value - streamed.value).abs() <= 1e-12 * (1.0 + by_selection.value.abs())
        );
        assert!((by_selection.standard_error - streamed.standard_error).abs() < 1e-12);
    }

    #[test]
    fn biased_impressions_reject_srs_streamed_estimates() {
        let imp = impression_with(SamplingPolicy::biased(["ra"]));
        // biased impressions stream too — but through the weighted entry
        // points, not the SRS ones
        assert!(imp.uses_weighted_estimators());
        assert!(imp.estimate_count_streamed(2).is_err());
        assert!(imp.estimate_sum_streamed(&MomentSketch::new()).is_err());
        assert!(imp.estimate_avg_streamed(&MomentSketch::new()).is_err());
    }

    #[test]
    fn cached_probabilities_align_and_rescale() {
        let mut imp = impression_with(SamplingPolicy::biased(["ra"]));
        assert_eq!(imp.selection_probabilities().len(), imp.row_count());
        assert!((imp.selection_probabilities()[1] - 2.0 / 100.0).abs() < 1e-15);
        // re-anchoring the population renormalises the cached slice
        imp.rescale_population(2_000, 200.0);
        assert!((imp.selection_probabilities()[1] - 2.0 / 200.0).abs() < 1e-15);
        // self-weighted impressions don't materialise the slice (their
        // estimators never read per-row probabilities); the per-row accessor
        // still answers 1/cnt
        let mut uni = impression_with(SamplingPolicy::Uniform);
        assert!(uni.selection_probabilities().is_empty());
        assert_eq!(uni.selection_probability(0), 1e-3);
        uni.rescale_population(500, 0.0);
        assert_eq!(uni.selection_probability(0), 2e-3);
    }

    #[test]
    fn weighted_streamed_estimates_match_selection_estimates_bitwise() {
        use sciborq_columnar::CompiledPredicate;
        let imp = impression_with(SamplingPolicy::biased(["ra"]));
        let predicate = Predicate::lt_eq("ra", 190.0);
        let sel = predicate.evaluate(imp.data()).unwrap();
        let compiled = CompiledPredicate::compile(&predicate, imp.data().schema()).unwrap();
        let probs = imp.selection_probabilities();

        let (count_sketch, _) = compiled.count_weighted(imp.data(), probs).unwrap();
        assert_eq!(
            imp.estimate_count(&sel).unwrap(),
            imp.estimate_count_weighted(&count_sketch).unwrap()
        );
        let (agg_sketch, _) = compiled
            .filter_weighted_moments(imp.data(), "r_mag", probs)
            .unwrap();
        assert_eq!(
            imp.estimate_sum("r_mag", &sel).unwrap(),
            imp.estimate_sum_weighted(&agg_sketch).unwrap()
        );
        assert_eq!(
            imp.estimate_avg("r_mag", &sel).unwrap(),
            imp.estimate_avg_weighted(&agg_sketch).unwrap()
        );
        // the empty case mirrors the selection path: count/sum estimate 0,
        // avg errors
        let none = CompiledPredicate::compile(&Predicate::False, imp.data().schema()).unwrap();
        let (empty_count, _) = none.count_weighted(imp.data(), probs).unwrap();
        assert_eq!(
            imp.estimate_count(&SelectionVector::empty()).unwrap(),
            imp.estimate_count_weighted(&empty_count).unwrap()
        );
        let (empty_agg, _) = none
            .filter_weighted_moments(imp.data(), "r_mag", probs)
            .unwrap();
        assert!(imp.estimate_avg_weighted(&empty_agg).is_err());
    }

    #[test]
    fn last_seen_uses_srs_estimators() {
        let imp = impression_with(SamplingPolicy::last_seen(0.5, 100.0));
        let est = imp.estimate_count(&SelectionVector::all(4)).unwrap();
        assert!((est.value - 1000.0).abs() < 1e-9);
    }
}
