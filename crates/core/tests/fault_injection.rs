//! Deterministic fault-injection tests for the core degradation ladder.
//!
//! These tests install process-global fault plans, so they live in their own
//! integration binary (one process, no unrelated tests to disturb) and are
//! serialized through [`serial`]. Panics injected here are expected and
//! caught by the isolation seams; the default panic hook is silenced for the
//! duration of each test to keep the output readable.

#![cfg(feature = "fault-injection")]

use sciborq_columnar::{
    DataType, Field, Predicate, RecordBatchBuilder, Schema, SchemaRef, Table, Value,
};
use sciborq_core::answer::EvaluationLevel;
use sciborq_core::engine::{BoundedQueryEngine, QueryBounds};
use sciborq_core::layer::LayerHierarchy;
use sciborq_core::{QueryExecution, SamplingPolicy, SciborqConfig, SciborqError};
use sciborq_telemetry::faults::{self, FaultPlan, Trigger};
use sciborq_telemetry::FaultEventKind;
use sciborq_workload::Query;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// One fault plan at a time: the registry is process-global.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// While a plan is active, suppress panic-hook output for *injected*
/// panics only (they are part of the test, not noise); real assertion
/// failures still print through the previous hook.
static QUIET: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn init_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault at"));
            if !(QUIET.load(std::sync::atomic::Ordering::Relaxed) && injected) {
                prev(info);
            }
        }));
    });
}

/// Run `f` with `plan` installed; the registry is cleared (and the quiet
/// flag dropped) even if `f` panics.
fn with_plan<T>(plan: FaultPlan, f: impl FnOnce() -> T) -> T {
    struct Cleanup;
    impl Drop for Cleanup {
        fn drop(&mut self) {
            QUIET.store(false, std::sync::atomic::Ordering::Relaxed);
            faults::clear();
        }
    }
    init_quiet_hook();
    faults::install(plan);
    QUIET.store(true, std::sync::atomic::Ordering::Relaxed);
    let _cleanup = Cleanup;
    f()
}

fn schema() -> SchemaRef {
    Schema::shared(vec![
        Field::new("objid", DataType::Int64),
        Field::new("ra", DataType::Float64),
        Field::new("r_mag", DataType::Float64),
    ])
    .unwrap()
}

fn base_table(rows: usize) -> Table {
    let mut b = RecordBatchBuilder::with_capacity(schema(), rows);
    for i in 0..rows as i64 {
        b.push_row(&[
            Value::Int64(i),
            Value::Float64((i % 3600) as f64 / 10.0),
            Value::Float64(15.0 + (i % 10) as f64),
        ])
        .unwrap();
    }
    let mut t = Table::new("photoobj", schema());
    t.append_batch(&b.finish().unwrap()).unwrap();
    t
}

fn hierarchy(table: &Table, sizes: Vec<usize>) -> LayerHierarchy {
    let config = SciborqConfig::with_layers(sizes);
    LayerHierarchy::build_from_table(table, SamplingPolicy::Uniform, &config, None).unwrap()
}

fn engine() -> BoundedQueryEngine {
    BoundedQueryEngine::new(SciborqConfig::default()).unwrap()
}

/// Degradation ladder, first rung: a shard worker lost to a panic is redone
/// with the serial kernel, bit-identically (kernel parity), and the recovery
/// is recorded without flagging the answer degraded.
#[test]
fn shard_panic_falls_back_to_the_serial_kernel_bit_identically() {
    let _guard = serial();
    // Big enough to fan out at parallelism 2 (the engine only shards levels
    // of at least 4096 rows per shard).
    let t = base_table(2 * 4096);
    let serial_exec = QueryExecution::new(Predicate::lt("ra", 1_000.0));
    let expected = serial_exec
        .count_matches(EvaluationLevel::Layer(1), &t)
        .unwrap();

    let exec = QueryExecution::with_parallelism(Predicate::lt("ra", 1_000.0), 2);
    let count = with_plan(
        FaultPlan::new(9).panic_at("scan.shard", Trigger::Nth(1)),
        || exec.count_matches(EvaluationLevel::Layer(1), &t).unwrap(),
    );

    assert_eq!(count, expected, "recovered scan must be bit-identical");
    let scans = exec.take_level_scans();
    assert_eq!(scans[0].shards, 1, "fallback ran serially");
    let events = exec.take_fault_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].site, "scan.shard");
    assert_eq!(events[0].kind, FaultEventKind::Recovery);

    // A fresh scan with no plan installed fans out again, no events.
    let exec = QueryExecution::with_parallelism(Predicate::lt("ra", 1_000.0), 2);
    let count = exec.count_matches(EvaluationLevel::Layer(1), &t).unwrap();
    assert_eq!(count, expected);
    assert!(exec.take_fault_events().is_empty());
    assert_eq!(exec.take_level_scans()[0].shards, 2);
}

/// Degradation ladder, second rung: a whole level lost to a panic is
/// skipped, escalation continues, and the answer that does come back is
/// flagged `degraded` with the skip on its fault-event record.
#[test]
fn level_fault_degrades_to_the_next_level() {
    let _guard = serial();
    let table = base_table(20_000);
    let h = hierarchy(&table, vec![2_000, 200]);
    let query = Query::count("photoobj", Predicate::lt("ra", 180.0));
    let bounds = QueryBounds::max_error(0.2);

    // Oracle first: fault-free, the loose bound is met on the smallest
    // (200-row) layer.
    let clean = engine()
        .execute_aggregate(&query, &h, Some(&table), &bounds)
        .unwrap();
    assert_eq!(clean.level, EvaluationLevel::Layer(2));
    assert!(!clean.degraded);
    assert!(clean.fault_events.is_empty());

    // Kill the first level evaluation: the engine must skip it, answer from
    // the next layer, and say so.
    let degraded = with_plan(
        FaultPlan::new(11).panic_at("engine.level", Trigger::Nth(1)),
        || engine().execute_aggregate(&query, &h, Some(&table), &bounds),
    )
    .unwrap();
    assert_eq!(degraded.level, EvaluationLevel::Layer(1));
    assert!(degraded.degraded);
    assert_eq!(degraded.fault_events.len(), 1);
    assert_eq!(degraded.fault_events[0].site, "engine.level");
    assert_eq!(degraded.fault_events[0].kind, FaultEventKind::Degradation);
    // Bounds stay honest: the verdict is measured on the layer actually
    // returned, which also meets the loose bound here.
    assert!(degraded.error_bound_met);
}

/// When *every* rung of the ladder is lost, the query fails typed — the
/// caller gets `Internal`, never a silent wrong answer or a hang.
#[test]
fn total_level_loss_fails_typed() {
    let _guard = serial();
    let table = base_table(20_000);
    let h = hierarchy(&table, vec![2_000, 200]);
    let query = Query::count("photoobj", Predicate::lt("ra", 180.0));

    let result = with_plan(
        FaultPlan::new(12).panic_at("engine.level", Trigger::Always),
        || engine().execute_aggregate(&query, &h, Some(&table), &QueryBounds::max_error(0.2)),
    );
    assert_eq!(
        result.err(),
        Some(SciborqError::Internal {
            site: "engine.level".to_owned()
        })
    );
}

/// SELECT path: a panicked level is skipped the same way, and the degraded
/// flag travels on the select answer.
#[test]
fn select_level_fault_degrades() {
    let _guard = serial();
    let table = base_table(20_000);
    let h = hierarchy(&table, vec![2_000, 200]);
    let query = Query::select("photoobj", Predicate::lt("ra", 36.0)).with_limit(10);

    let clean = engine()
        .execute_select(&query, &h, Some(&table), &QueryBounds::default())
        .unwrap();
    assert!(!clean.degraded);

    let degraded = with_plan(
        FaultPlan::new(13).panic_at("engine.level", Trigger::Nth(1)),
        || engine().execute_select(&query, &h, Some(&table), &QueryBounds::default()),
    )
    .unwrap();
    assert!(degraded.degraded);
    assert_eq!(degraded.fault_events[0].site, "engine.level");
    assert!(degraded.returned_rows() > 0);
}

/// Delay faults never corrupt anything: the answer is bit-identical to the
/// fault-free one, only slower.
#[test]
fn delay_fault_only_slows_the_query() {
    let _guard = serial();
    let table = base_table(20_000);
    let h = hierarchy(&table, vec![2_000, 200]);
    let query = Query::count("photoobj", Predicate::lt("ra", 180.0));
    let bounds = QueryBounds::max_error(0.2);

    let clean = engine()
        .execute_aggregate(&query, &h, Some(&table), &bounds)
        .unwrap();
    let delayed = with_plan(
        FaultPlan::new(14).delay_at(
            "engine.level",
            std::time::Duration::from_millis(5),
            Trigger::Always,
        ),
        || engine().execute_aggregate(&query, &h, Some(&table), &bounds),
    )
    .unwrap();
    assert_eq!(
        delayed.value.map(f64::to_bits),
        clean.value.map(f64::to_bits)
    );
    assert_eq!(delayed.level, clean.level);
    assert!(!delayed.degraded);
    assert!(delayed.fault_events.is_empty());
}
