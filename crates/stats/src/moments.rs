//! Streaming moments: numerically stable running mean / variance.
//!
//! Impressions and predicate-set histograms are maintained over unbounded
//! streams of tuples, so every statistic SciBORQ keeps must be updatable in
//! O(1) per observation. This module provides Welford-style accumulation used
//! by the histogram bins, the estimators and the test oracles.

use serde::{Deserialize, Serialize};

/// A streaming accumulator of count, mean, variance, min and max.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        RunningMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Observe one value.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observe every value of a slice.
    pub fn extend(&mut self, values: &[f64]) {
        for &v in values {
            self.push(v);
        }
    }

    /// Merge another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 1 observation).
    pub fn variance_population(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 when fewer than 2
    /// observations).
    pub fn variance_sample(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev_population(&self) -> f64 {
        self.variance_population().sqrt()
    }

    /// Sample standard deviation.
    pub fn std_dev_sample(&self) -> f64 {
        self.variance_sample().sqrt()
    }

    /// Sum of the observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

impl FromIterator<f64> for RunningMoments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = RunningMoments::new();
        for v in iter {
            m.push(v);
        }
        m
    }
}

/// Exact mean of a slice (helper used by tests and estimators).
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Exact population variance of a slice.
pub fn variance_population(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64)
}

/// Relative error |estimate − truth| / |truth|, with the convention that the
/// error is 0 when both are 0 and infinite when only the truth is 0.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_moments() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance_population(), 0.0);
        assert_eq!(m.variance_sample(), 0.0);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
        assert_eq!(m.sum(), 0.0);
    }

    #[test]
    fn known_values() {
        let m: RunningMoments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance_population() - 4.0).abs() < 1e-12);
        assert!((m.std_dev_population() - 2.0).abs() < 1e-12);
        assert!((m.variance_sample() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(9.0));
        assert!((m.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut m = RunningMoments::new();
        m.push(3.5);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.variance_population(), 0.0);
        assert_eq!(m.variance_sample(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let sequential: RunningMoments = data.iter().copied().collect();
        let mut left: RunningMoments = data[..37].iter().copied().collect();
        let right: RunningMoments = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-10);
        assert!((left.variance_population() - sequential.variance_population()).abs() < 1e-10);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: RunningMoments = [1.0, 2.0].into_iter().collect();
        let before = m;
        m.merge(&RunningMoments::new());
        assert_eq!(m, before);
        let mut e = RunningMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(variance_population(&[]), None);
        assert_eq!(variance_population(&[1.0, 3.0]), Some(1.0));
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(90.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(-90.0, -100.0) - 0.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn streaming_matches_exact(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let m: RunningMoments = values.iter().copied().collect();
            let exact_mean = mean(&values).unwrap();
            let exact_var = variance_population(&values).unwrap();
            prop_assert!((m.mean() - exact_mean).abs() <= 1e-6 * (1.0 + exact_mean.abs()));
            prop_assert!((m.variance_population() - exact_var).abs() <= 1e-5 * (1.0 + exact_var.abs()));
            prop_assert_eq!(m.count() as usize, values.len());
        }

        #[test]
        fn merge_is_associative_enough(
            a in proptest::collection::vec(-1e3f64..1e3, 0..50),
            b in proptest::collection::vec(-1e3f64..1e3, 0..50),
        ) {
            let mut merged: RunningMoments = a.iter().copied().collect();
            let right: RunningMoments = b.iter().copied().collect();
            merged.merge(&right);
            let all: RunningMoments = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(merged.count(), all.count());
            prop_assert!((merged.mean() - all.mean()).abs() <= 1e-8 * (1.0 + all.mean().abs()));
        }

        #[test]
        fn variance_is_non_negative(values in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let m: RunningMoments = values.iter().copied().collect();
            prop_assert!(m.variance_population() >= -1e-9);
            prop_assert!(m.variance_sample() >= -1e-9);
        }
    }
}
