//! Confidence intervals and error bounds.
//!
//! SciBORQ promises queries "strict bounds on errors": the bounded-query
//! engine compares the *relative half-width* of a confidence interval around
//! an approximate answer against the user's error budget, and escalates to a
//! more detailed impression when the budget is exceeded. This module converts
//! [`Estimate`](crate::estimator::Estimate)s into intervals and error
//! metrics.

use crate::error::{Result, StatsError};
use crate::estimator::Estimate;
use crate::kernel::{standard_normal_quantile, standard_t_quantile};
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level in (0, 1), e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Shared validation + assembly for quantile-based intervals.
    fn with_quantile(
        estimate: f64,
        standard_error: f64,
        confidence: f64,
        quantile: impl FnOnce(f64) -> f64,
    ) -> Result<Self> {
        if !(0.0 < confidence && confidence < 1.0) {
            return Err(StatsError::invalid(
                "confidence",
                "must lie strictly between 0 and 1",
            ));
        }
        if standard_error < 0.0 || !standard_error.is_finite() {
            return Err(StatsError::invalid(
                "standard_error",
                "must be non-negative and finite",
            ));
        }
        let half = quantile(0.5 + confidence / 2.0) * standard_error;
        Ok(ConfidenceInterval {
            estimate,
            lower: estimate - half,
            upper: estimate + half,
            confidence,
        })
    }

    /// Build a normal-approximation interval `estimate ± z·se`.
    pub fn normal(estimate: f64, standard_error: f64, confidence: f64) -> Result<Self> {
        Self::with_quantile(
            estimate,
            standard_error,
            confidence,
            standard_normal_quantile,
        )
    }

    /// Build an interval from an [`Estimate`], widening by a Student-t
    /// quantile with `sample_size − 1` degrees of freedom.
    ///
    /// `Estimate::sample_size` records the number of observations that
    /// actually contributed information (the matching sample rows for COUNT
    /// and domain aggregates), so intervals built from a handful of matches
    /// widen the way a finite-sample analysis demands; for large samples the
    /// t quantile converges to the normal one.
    pub fn from_estimate(estimate: &Estimate, confidence: f64) -> Result<Self> {
        let df = estimate.sample_size.saturating_sub(1).max(1) as u64;
        Self::with_quantile(estimate.value, estimate.standard_error, confidence, |p| {
            standard_t_quantile(p, df)
        })
    }

    /// An exact, zero-width interval (base-data answers).
    pub fn exact(value: f64) -> Self {
        ConfidenceInterval {
            estimate: value,
            lower: value,
            upper: value,
            confidence: 1.0,
        }
    }

    /// The half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// The *relative* half-width (half-width / |estimate|), the quantity the
    /// bounded query engine compares against the user's error budget.
    ///
    /// When the estimate is zero the relative error is defined as 0 if the
    /// interval is also degenerate at zero, and infinity otherwise.
    pub fn relative_half_width(&self) -> f64 {
        if self.estimate == 0.0 {
            if self.half_width() == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width() / self.estimate.abs()
        }
    }

    /// Whether the relative half-width is at most the requested error bound.
    pub fn satisfies_error_bound(&self, max_relative_error: f64) -> bool {
        self.relative_half_width() <= max_relative_error
    }

    /// Whether a (known) true value falls inside the interval — used by the
    /// experiment harness to measure empirical coverage.
    pub fn covers(&self, truth: f64) -> bool {
        self.lower <= truth && truth <= self.upper
    }
}

/// Minimum uniform-sample size needed to achieve a target relative error for
/// a selectivity (COUNT) query, using the normal approximation
/// `n ≥ z²·(1−p)/(p·ε²)` (ignoring the finite-population correction, so the
/// result is conservative).
///
/// This is the planning calculation the engine uses to pick the smallest
/// layer that can possibly satisfy an error bound.
pub fn required_sample_size_for_count(
    selectivity: f64,
    max_relative_error: f64,
    confidence: f64,
) -> Result<u64> {
    if !(0.0 < selectivity && selectivity <= 1.0) {
        return Err(StatsError::invalid("selectivity", "must lie in (0, 1]"));
    }
    if !(max_relative_error > 0.0) {
        return Err(StatsError::invalid(
            "max_relative_error",
            "must be positive",
        ));
    }
    if !(0.0 < confidence && confidence < 1.0) {
        return Err(StatsError::invalid(
            "confidence",
            "must lie strictly between 0 and 1",
        ));
    }
    let z = standard_normal_quantile(0.5 + confidence / 2.0);
    let n = z * z * (1.0 - selectivity) / (selectivity * max_relative_error * max_relative_error);
    Ok(n.ceil().max(1.0) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normal_interval_95() {
        let ci = ConfidenceInterval::normal(100.0, 10.0, 0.95).unwrap();
        assert!((ci.half_width() - 19.6).abs() < 0.05);
        assert!(ci.lower < 100.0 && ci.upper > 100.0);
        assert!((ci.relative_half_width() - 0.196).abs() < 0.001);
        assert!(ci.covers(100.0));
        assert!(ci.covers(85.0));
        assert!(!ci.covers(130.0));
    }

    #[test]
    fn interval_validation() {
        assert!(ConfidenceInterval::normal(1.0, 1.0, 0.0).is_err());
        assert!(ConfidenceInterval::normal(1.0, 1.0, 1.0).is_err());
        assert!(ConfidenceInterval::normal(1.0, -1.0, 0.9).is_err());
        assert!(ConfidenceInterval::normal(1.0, f64::NAN, 0.9).is_err());
    }

    #[test]
    fn exact_interval_has_zero_width() {
        let ci = ConfidenceInterval::exact(5.0);
        assert_eq!(ci.half_width(), 0.0);
        assert_eq!(ci.relative_half_width(), 0.0);
        assert!(ci.satisfies_error_bound(0.0));
        assert!(ci.covers(5.0));
        assert!(!ci.covers(5.1));
    }

    #[test]
    fn zero_estimate_relative_width() {
        let ci = ConfidenceInterval::normal(0.0, 1.0, 0.95).unwrap();
        assert_eq!(ci.relative_half_width(), f64::INFINITY);
        assert!(!ci.satisfies_error_bound(0.5));
        let degenerate = ConfidenceInterval::normal(0.0, 0.0, 0.95).unwrap();
        assert_eq!(degenerate.relative_half_width(), 0.0);
    }

    #[test]
    fn from_estimate_widens_for_small_samples_and_converges_to_normal() {
        let make = |sample_size| Estimate {
            value: 50.0,
            standard_error: 5.0,
            sample_size,
        };
        let normal = ConfidenceInterval::normal(50.0, 5.0, 0.9).unwrap();
        // few effective observations: a t interval is strictly wider
        let small = ConfidenceInterval::from_estimate(&make(5), 0.9).unwrap();
        assert!(small.half_width() > normal.half_width() * 1.05);
        // monotone: more observations, tighter interval
        let medium = ConfidenceInterval::from_estimate(&make(30), 0.9).unwrap();
        assert!(medium.half_width() < small.half_width());
        // large samples: t ≈ z
        let large = ConfidenceInterval::from_estimate(&make(100_000), 0.9).unwrap();
        assert!((large.half_width() - normal.half_width()).abs() < 1e-3 * normal.half_width());
        // invalid inputs still rejected
        assert!(ConfidenceInterval::from_estimate(&make(10), 1.0).is_err());
        let bad = Estimate {
            value: 1.0,
            standard_error: f64::NAN,
            sample_size: 10,
        };
        assert!(ConfidenceInterval::from_estimate(&bad, 0.9).is_err());
    }

    #[test]
    fn higher_confidence_widens_interval() {
        let narrow = ConfidenceInterval::normal(10.0, 2.0, 0.80).unwrap();
        let wide = ConfidenceInterval::normal(10.0, 2.0, 0.99).unwrap();
        assert!(wide.half_width() > narrow.half_width());
    }

    #[test]
    fn error_bound_check() {
        let ci = ConfidenceInterval::normal(1000.0, 10.0, 0.95).unwrap();
        // relative half width ≈ 0.0196
        assert!(ci.satisfies_error_bound(0.05));
        assert!(!ci.satisfies_error_bound(0.01));
    }

    #[test]
    fn required_sample_size_reasonable() {
        // 10% selectivity, 5% relative error, 95% confidence:
        // n ≈ 1.96² * 0.9 / (0.1 * 0.0025) ≈ 13_830
        let n = required_sample_size_for_count(0.1, 0.05, 0.95).unwrap();
        assert!(n > 13_000 && n < 15_000, "n = {n}");
        // rarer predicates need more samples
        let n_rare = required_sample_size_for_count(0.01, 0.05, 0.95).unwrap();
        assert!(n_rare > n);
        // looser error budgets need fewer
        let n_loose = required_sample_size_for_count(0.1, 0.2, 0.95).unwrap();
        assert!(n_loose < n);
        // full selectivity needs only a single sample
        assert_eq!(required_sample_size_for_count(1.0, 0.05, 0.95).unwrap(), 1);
    }

    #[test]
    fn required_sample_size_validation() {
        assert!(required_sample_size_for_count(0.0, 0.1, 0.95).is_err());
        assert!(required_sample_size_for_count(1.5, 0.1, 0.95).is_err());
        assert!(required_sample_size_for_count(0.5, 0.0, 0.95).is_err());
        assert!(required_sample_size_for_count(0.5, 0.1, 1.0).is_err());
    }

    proptest! {
        #[test]
        fn interval_always_contains_estimate(
            est in -1e6f64..1e6,
            se in 0.0f64..1e3,
            conf in 0.5f64..0.999,
        ) {
            let ci = ConfidenceInterval::normal(est, se, conf).unwrap();
            prop_assert!(ci.lower <= est + 1e-9);
            prop_assert!(ci.upper >= est - 1e-9);
            prop_assert!(ci.half_width() >= 0.0);
        }

        #[test]
        fn required_sample_size_monotone_in_error(
            sel in 0.01f64..0.99,
            conf in 0.8f64..0.99,
        ) {
            let tight = required_sample_size_for_count(sel, 0.01, conf).unwrap();
            let loose = required_sample_size_for_count(sel, 0.1, conf).unwrap();
            prop_assert!(tight >= loose);
        }
    }
}
