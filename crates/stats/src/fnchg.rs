//! Fisher's non-central hypergeometric distribution.
//!
//! The paper (Section 4, citing Fog 2008) observes that assigning weights to
//! the probability of picking an item from a finite population leads to a
//! non-central hypergeometric distribution — specifically Fisher's variant —
//! and that "these mathematical tools provide the theory to calculate the
//! variance, the mean, and the support function of the biased sample".
//!
//! This module implements the distribution for a two-colour population: `m1`
//! items of the "interesting" colour (e.g. tuples inside the focal region),
//! `m2` items of the other colour, a sample of size `n`, and an odds ratio
//! `ω` expressing how strongly the interesting colour is favoured. The
//! SciBORQ error-bound machinery uses its mean/variance to predict how many
//! focal-region tuples a biased impression will contain and to bound the
//! selectivity estimates derived from it.

use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Fisher's non-central hypergeometric distribution `FNCH(m1, m2, n, ω)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FisherNoncentralHypergeometric {
    /// Number of items of the favoured colour in the population.
    pub m1: u64,
    /// Number of items of the other colour in the population.
    pub m2: u64,
    /// Sample size.
    pub n: u64,
    /// Odds ratio ω > 0 favouring the first colour (ω = 1 recovers the
    /// central hypergeometric distribution).
    pub omega: f64,
}

impl FisherNoncentralHypergeometric {
    /// Create the distribution, validating its parameters.
    pub fn new(m1: u64, m2: u64, n: u64, omega: f64) -> Result<Self> {
        if n > m1 + m2 {
            return Err(StatsError::invalid(
                "n",
                format!("sample size {n} exceeds population {}", m1 + m2),
            ));
        }
        if !(omega > 0.0) || !omega.is_finite() {
            return Err(StatsError::invalid(
                "omega",
                "odds ratio must be positive and finite",
            ));
        }
        Ok(FisherNoncentralHypergeometric { m1, m2, n, omega })
    }

    /// Lower end of the support: `max(0, n − m2)`.
    pub fn support_min(&self) -> u64 {
        self.n.saturating_sub(self.m2)
    }

    /// Upper end of the support: `min(n, m1)`.
    pub fn support_max(&self) -> u64 {
        self.n.min(self.m1)
    }

    /// Unnormalised log-weight of outcome `x`:
    /// `ln C(m1, x) + ln C(m2, n−x) + x·ln ω`.
    fn log_weight(&self, x: u64) -> f64 {
        ln_choose(self.m1, x) + ln_choose(self.m2, self.n - x) + x as f64 * self.omega.ln()
    }

    /// Probability mass function `P(X = x)`.
    ///
    /// Outcomes outside the support have probability zero. The computation
    /// normalises in log-space over the (finite) support, so it is exact up
    /// to floating-point error even for populations of millions.
    pub fn pmf(&self, x: u64) -> f64 {
        let (lo, hi) = (self.support_min(), self.support_max());
        if x < lo || x > hi {
            return 0.0;
        }
        let max_log = (lo..=hi)
            .map(|k| self.log_weight(k))
            .fold(f64::NEG_INFINITY, f64::max);
        let normaliser: f64 = (lo..=hi)
            .map(|k| (self.log_weight(k) - max_log).exp())
            .sum();
        ((self.log_weight(x) - max_log).exp()) / normaliser
    }

    /// Exact mean `E[X]`, computed by summing over the support.
    pub fn mean(&self) -> f64 {
        self.moments().0
    }

    /// Exact variance `Var[X]`, computed by summing over the support.
    pub fn variance(&self) -> f64 {
        self.moments().1
    }

    /// Mean and variance in a single pass over the support.
    pub fn moments(&self) -> (f64, f64) {
        let (lo, hi) = (self.support_min(), self.support_max());
        let max_log = (lo..=hi)
            .map(|k| self.log_weight(k))
            .fold(f64::NEG_INFINITY, f64::max);
        let mut norm = 0.0;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for k in lo..=hi {
            let w = (self.log_weight(k) - max_log).exp();
            norm += w;
            sum += w * k as f64;
            sum_sq += w * (k as f64) * (k as f64);
        }
        let mean = sum / norm;
        let variance = (sum_sq / norm - mean * mean).max(0.0);
        (mean, variance)
    }

    /// The mode of the distribution (most probable outcome), computed with
    /// Fog's closed-form expression via the quadratic for Fisher's NCH.
    pub fn mode(&self) -> u64 {
        // Fog (2008): mode is floor of the root of
        // A x^2 + B x + C with
        // A = ω − 1, B = (m1+n+2)ω ... use the standard textbook form:
        let omega = self.omega;
        let m1 = self.m1 as f64;
        let m2 = self.m2 as f64;
        let n = self.n as f64;
        if (omega - 1.0).abs() < 1e-12 {
            // central hypergeometric mode
            return (((n + 1.0) * (m1 + 1.0) / (m1 + m2 + 2.0)).floor() as u64)
                .clamp(self.support_min(), self.support_max());
        }
        let a = omega - 1.0;
        let b = -((m1 + n + 2.0) * omega + (m2 - n));
        let c = omega * (m1 + 1.0) * (n + 1.0);
        let disc = (b * b - 4.0 * a * c).max(0.0).sqrt();
        // numerically stable root selection
        let q = -0.5 * (b + b.signum() * disc);
        let r1 = q / a;
        let r2 = c / q;
        let candidate = if r1 >= 0.0 && r1 <= n + 1.0 { r1 } else { r2 };
        (candidate.floor() as u64).clamp(self.support_min(), self.support_max())
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    pub fn cdf(&self, x: u64) -> f64 {
        let (lo, hi) = (self.support_min(), self.support_max());
        if x < lo {
            return 0.0;
        }
        let x = x.min(hi);
        (lo..=x).map(|k| self.pmf(k)).sum()
    }
}

/// Natural log of the binomial coefficient `C(n, k)` using `ln Γ`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` via the Lanczos-free Stirling series for large `n`
/// and a small lookup for `n < 2`.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0)
}

/// Log-gamma via the Lanczos approximation (g = 7, n = 9 coefficients).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parameter_validation() {
        assert!(FisherNoncentralHypergeometric::new(5, 5, 11, 1.0).is_err());
        assert!(FisherNoncentralHypergeometric::new(5, 5, 5, 0.0).is_err());
        assert!(FisherNoncentralHypergeometric::new(5, 5, 5, -1.0).is_err());
        assert!(FisherNoncentralHypergeometric::new(5, 5, 5, f64::INFINITY).is_err());
        assert!(FisherNoncentralHypergeometric::new(5, 5, 5, 2.0).is_ok());
    }

    #[test]
    fn ln_factorial_known_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-9);
        assert!((ln_factorial(10) - 3_628_800f64.ln()).abs() < 1e-8);
        // Stirling regime
        assert!((ln_factorial(170) - 706.573_062_245_787).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(4.0) - 6f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_choose_known_values() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_choose(52, 5) - 2_598_960f64.ln()).abs() < 1e-7);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert_eq!(ln_choose(7, 0), 0.0);
    }

    #[test]
    fn support_bounds() {
        let d = FisherNoncentralHypergeometric::new(3, 10, 8, 1.5).unwrap();
        assert_eq!(d.support_min(), 0);
        assert_eq!(d.support_max(), 3);
        let d = FisherNoncentralHypergeometric::new(10, 3, 8, 1.5).unwrap();
        assert_eq!(d.support_min(), 5);
        assert_eq!(d.support_max(), 8);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = FisherNoncentralHypergeometric::new(20, 30, 15, 2.5).unwrap();
        let total: f64 = (0..=15).map(|x| d.pmf(x)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert_eq!(d.pmf(16), 0.0);
        assert_eq!(d.pmf(100), 0.0);
    }

    #[test]
    fn omega_one_recovers_central_hypergeometric() {
        // Central hypergeometric mean: n*m1/(m1+m2)
        let d = FisherNoncentralHypergeometric::new(30, 70, 20, 1.0).unwrap();
        let expected_mean = 20.0 * 30.0 / 100.0;
        assert!((d.mean() - expected_mean).abs() < 1e-9);
        // variance: n * (m1/N) * (m2/N) * (N-n)/(N-1)
        let expected_var = 20.0 * 0.3 * 0.7 * (80.0 / 99.0);
        assert!((d.variance() - expected_var).abs() < 1e-9);
    }

    #[test]
    fn larger_omega_shifts_mass_upwards() {
        let d1 = FisherNoncentralHypergeometric::new(50, 50, 30, 1.0).unwrap();
        let d2 = FisherNoncentralHypergeometric::new(50, 50, 30, 3.0).unwrap();
        let d3 = FisherNoncentralHypergeometric::new(50, 50, 30, 10.0).unwrap();
        assert!(d2.mean() > d1.mean());
        assert!(d3.mean() > d2.mean());
        assert!(d3.mean() <= d3.support_max() as f64);
    }

    #[test]
    fn omega_below_one_shifts_mass_down() {
        let d = FisherNoncentralHypergeometric::new(50, 50, 30, 0.2).unwrap();
        let central = FisherNoncentralHypergeometric::new(50, 50, 30, 1.0).unwrap();
        assert!(d.mean() < central.mean());
    }

    #[test]
    fn mode_is_argmax_of_pmf() {
        for &(m1, m2, n, omega) in &[
            (20u64, 30u64, 15u64, 2.5f64),
            (50, 50, 30, 0.3),
            (10, 90, 25, 5.0),
            (40, 10, 20, 1.0),
        ] {
            let d = FisherNoncentralHypergeometric::new(m1, m2, n, omega).unwrap();
            let (lo, hi) = (d.support_min(), d.support_max());
            let argmax = (lo..=hi)
                .max_by(|&a, &b| d.pmf(a).partial_cmp(&d.pmf(b)).unwrap())
                .unwrap();
            let mode = d.mode();
            // the closed-form mode may land on the neighbour when two bins tie
            assert!(
                mode == argmax || mode + 1 == argmax || argmax + 1 == mode,
                "mode {mode} vs argmax {argmax} for ({m1},{m2},{n},{omega})"
            );
        }
    }

    #[test]
    fn cdf_monotone_and_reaches_one() {
        let d = FisherNoncentralHypergeometric::new(25, 40, 18, 1.7).unwrap();
        let mut prev = 0.0;
        for x in 0..=18 {
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((d.cdf(18) - 1.0).abs() < 1e-9);
        assert_eq!(d.cdf(0), d.pmf(0));
    }

    #[test]
    fn large_population_is_numerically_stable() {
        let d = FisherNoncentralHypergeometric::new(600_000, 400_000, 10_000, 4.0).unwrap();
        let (mean, var) = d.moments();
        assert!(mean.is_finite() && var.is_finite());
        // with omega=4 favouring the 60% colour, the mean fraction should
        // exceed 0.6 * 10_000
        assert!(mean > 6_000.0);
        assert!(mean < 10_000.0);
        assert!(var > 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pmf_normalised_and_mean_in_support(
            m1 in 1u64..60,
            m2 in 1u64..60,
            n_frac in 0.1f64..0.9,
            omega in 0.1f64..10.0,
        ) {
            let n = (((m1 + m2) as f64) * n_frac).floor() as u64;
            let d = FisherNoncentralHypergeometric::new(m1, m2, n, omega).unwrap();
            let total: f64 = (d.support_min()..=d.support_max()).map(|x| d.pmf(x)).sum();
            prop_assert!((total - 1.0).abs() < 1e-8);
            let mean = d.mean();
            prop_assert!(mean >= d.support_min() as f64 - 1e-9);
            prop_assert!(mean <= d.support_max() as f64 + 1e-9);
            prop_assert!(d.variance() >= 0.0);
        }
    }
}
