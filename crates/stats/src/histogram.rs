//! Equi-width streaming histograms over the predicate set (paper Figure 5).
//!
//! SciBORQ does not materialise the full histograms of Figure 4. Instead it
//! keeps, per bin, only two numbers: the count `c_i` of predicate values that
//! fell into the bin and their running mean `m_i`. These statistics are
//! sufficient for the binned density estimator f̆ of Section 4, and they can
//! be maintained in O(1) per observed predicate value.

use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// Per-bin statistics: the count and the running mean of the values that
/// landed in the bin (the `struct histo_stats {int c; float m;}` of Figure 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinStats {
    /// Number of values observed in this bin.
    pub count: u64,
    /// Mean of the values observed in this bin (0 when the bin is empty).
    pub mean: f64,
}

impl BinStats {
    /// Incorporate one value into the bin, exactly like the update
    /// `hs[i].m = (hs[i].m × (hs[i].c−1) + v) / hs[i].c` in Figure 5.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.mean += (value - self.mean) / self.count as f64;
    }

    /// Merge another bin's statistics into this one.
    pub fn merge(&mut self, other: &BinStats) {
        if other.count == 0 {
            return;
        }
        let total = self.count + other.count;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.count = total;
    }
}

/// An equi-width histogram with `β` bins over a fixed domain `[min, max)`.
///
/// The domain, number of bins and width are "considered to be known
/// beforehand" in the paper; out-of-domain observations are clamped into the
/// first/last bin so no predicate value is ever lost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiWidthHistogram {
    min: f64,
    max: f64,
    width: f64,
    bins: Vec<BinStats>,
    total: u64,
}

impl EquiWidthHistogram {
    /// Create a histogram with `bins` equal-width bins over `[min, max)`.
    pub fn new(min: f64, max: f64, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(StatsError::invalid("bins", "must be at least 1"));
        }
        if !(max > min) {
            return Err(StatsError::invalid(
                "max",
                format!("domain max ({max}) must exceed min ({min})"),
            ));
        }
        if !min.is_finite() || !max.is_finite() {
            return Err(StatsError::invalid("domain", "bounds must be finite"));
        }
        let width = (max - min) / bins as f64;
        Ok(EquiWidthHistogram {
            min,
            max,
            width,
            bins: vec![BinStats::default(); bins],
            total: 0,
        })
    }

    /// Lower bound of the domain.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the domain.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The bin width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// The number of bins `β`.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Total number of observed values `N`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The per-bin statistics.
    pub fn bins(&self) -> &[BinStats] {
        &self.bins
    }

    /// The index of the bin value `v` falls into; values outside the domain
    /// are clamped into the boundary bins.
    pub fn bin_index(&self, value: f64) -> usize {
        if value <= self.min {
            return 0;
        }
        if value >= self.max {
            return self.bins.len() - 1;
        }
        let idx = ((value - self.min) / self.width).floor() as usize;
        idx.min(self.bins.len() - 1)
    }

    /// The centre of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.min + (i as f64 + 0.5) * self.width
    }

    /// The half-open value range `[lo, hi)` of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let lo = self.min + i as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Observe one value, updating count and running mean of its bin
    /// (the body of the Figure 5 loop).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            // NaN/inf cannot be placed meaningfully; ignore rather than
            // poison the running means.
            return;
        }
        let idx = self.bin_index(value);
        self.bins[idx].push(value);
        self.total += 1;
    }

    /// Observe every value of a slice.
    pub fn observe_all(&mut self, values: &[f64]) {
        for &v in values {
            self.observe(v);
        }
    }

    /// Merge another histogram with identical layout into this one.
    pub fn merge(&mut self, other: &EquiWidthHistogram) -> Result<()> {
        if self.bins.len() != other.bins.len()
            || (self.min - other.min).abs() > f64::EPSILON
            || (self.max - other.max).abs() > f64::EPSILON
        {
            return Err(StatsError::invalid(
                "histogram",
                "cannot merge histograms with different layouts",
            ));
        }
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            a.merge(b);
        }
        self.total += other.total;
        Ok(())
    }

    /// The relative frequency (count / total) of bin `i`; 0 when empty.
    pub fn frequency(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[i].count as f64 / self.total as f64
        }
    }

    /// The empirical density of bin `i` (frequency / width), i.e. the height
    /// of the normalised histogram bar.
    pub fn density(&self, i: usize) -> f64 {
        self.frequency(i) / self.width
    }

    /// Bin counts as a vector (convenience for plotting/analysis).
    pub fn counts(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.count).collect()
    }

    /// The index of the most populated bin, if any observation was made.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.bins
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.count)
            .map(|(i, _)| i)
    }

    /// Total sum of squared differences between per-bin frequencies of two
    /// histograms — a simple distance used by the experiments to compare a
    /// sample's distribution against the base data's.
    pub fn frequency_distance(&self, other: &EquiWidthHistogram) -> Result<f64> {
        if self.bins.len() != other.bins.len() {
            return Err(StatsError::invalid(
                "histogram",
                "cannot compare histograms with different bin counts",
            ));
        }
        Ok(self
            .bins
            .iter()
            .enumerate()
            .map(|(i, _)| (self.frequency(i) - other.frequency(i)).powi(2))
            .sum())
    }
}

/// Build a histogram whose domain is derived from the data (min/max of the
/// values, padded slightly so the maximum falls inside the last bin).
pub fn histogram_from_data(values: &[f64], bins: usize) -> Result<EquiWidthHistogram> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput("histogram_from_data"));
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return Err(StatsError::EmptyInput("no finite values"));
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let pad = (hi - lo) * 1e-9;
    let mut h = EquiWidthHistogram::new(lo, hi + pad, bins)?;
    h.observe_all(values);
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(EquiWidthHistogram::new(0.0, 1.0, 0).is_err());
        assert!(EquiWidthHistogram::new(1.0, 1.0, 4).is_err());
        assert!(EquiWidthHistogram::new(2.0, 1.0, 4).is_err());
        assert!(EquiWidthHistogram::new(f64::NEG_INFINITY, 1.0, 4).is_err());
    }

    #[test]
    fn layout_accessors() {
        let h = EquiWidthHistogram::new(100.0, 200.0, 10).unwrap();
        assert_eq!(h.min(), 100.0);
        assert_eq!(h.max(), 200.0);
        assert_eq!(h.bin_count(), 10);
        assert!((h.width() - 10.0).abs() < 1e-12);
        assert!((h.bin_center(0) - 105.0).abs() < 1e-12);
        assert_eq!(h.bin_range(1), (110.0, 120.0));
    }

    #[test]
    fn bin_index_boundaries() {
        let h = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_index(0.0), 0);
        assert_eq!(h.bin_index(1.999), 0);
        assert_eq!(h.bin_index(2.0), 1);
        assert_eq!(h.bin_index(9.999), 4);
        // clamping
        assert_eq!(h.bin_index(-5.0), 0);
        assert_eq!(h.bin_index(10.0), 4);
        assert_eq!(h.bin_index(99.0), 4);
    }

    #[test]
    fn observe_updates_count_and_mean() {
        let mut h = EquiWidthHistogram::new(0.0, 10.0, 2).unwrap();
        h.observe(1.0);
        h.observe(2.0);
        h.observe(3.0);
        h.observe(7.0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bins()[0].count, 3);
        assert!((h.bins()[0].mean - 2.0).abs() < 1e-12);
        assert_eq!(h.bins()[1].count, 1);
        assert!((h.bins()[1].mean - 7.0).abs() < 1e-12);
    }

    #[test]
    fn counts_are_conserved() {
        let mut h = EquiWidthHistogram::new(-5.0, 5.0, 7).unwrap();
        let values: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 100) as f64 / 10.0 - 5.0)
            .collect();
        h.observe_all(&values);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.counts().iter().sum::<u64>(), 1000);
    }

    #[test]
    fn non_finite_values_are_ignored() {
        let mut h = EquiWidthHistogram::new(0.0, 1.0, 2).unwrap();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(0.5);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn frequencies_and_densities() {
        let mut h = EquiWidthHistogram::new(0.0, 4.0, 4).unwrap();
        h.observe_all(&[0.5, 1.5, 1.6, 3.5]);
        assert!((h.frequency(1) - 0.5).abs() < 1e-12);
        assert!((h.density(1) - 0.5).abs() < 1e-12); // width = 1
        assert_eq!(h.frequency(2), 0.0);
        let empty = EquiWidthHistogram::new(0.0, 4.0, 4).unwrap();
        assert_eq!(empty.frequency(0), 0.0);
    }

    #[test]
    fn mode_bin() {
        let mut h = EquiWidthHistogram::new(0.0, 3.0, 3).unwrap();
        assert_eq!(h.mode_bin(), None);
        h.observe_all(&[0.1, 1.1, 1.2, 2.9]);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn merge_combines_statistics() {
        let mut a = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        let mut b = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        a.observe_all(&[1.0, 2.0]);
        b.observe_all(&[1.5, 9.0]);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 4);
        // bin 0 covers [0, 2): values 1.0 and 1.5
        assert_eq!(a.bins()[0].count, 2);
        assert!((a.bins()[0].mean - 1.25).abs() < 1e-12);
        // bin 1 covers [2, 4): value 2.0
        assert_eq!(a.bins()[1].count, 1);
        assert_eq!(a.bins()[4].count, 1);
    }

    #[test]
    fn merge_rejects_mismatched_layouts() {
        let mut a = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        let b = EquiWidthHistogram::new(0.0, 10.0, 6).unwrap();
        assert!(a.merge(&b).is_err());
        let c = EquiWidthHistogram::new(0.0, 11.0, 5).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn frequency_distance_zero_for_identical() {
        let mut a = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        a.observe_all(&[1.0, 5.0, 9.0]);
        let d = a.frequency_distance(&a.clone()).unwrap();
        assert!(d.abs() < 1e-15);
        let b = EquiWidthHistogram::new(0.0, 10.0, 4).unwrap();
        assert!(a.frequency_distance(&b).is_err());
    }

    #[test]
    fn from_data_covers_all_values() {
        let values: Vec<f64> = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let h = histogram_from_data(&values, 4).unwrap();
        assert_eq!(h.total(), values.len() as u64);
        assert!(histogram_from_data(&[], 4).is_err());
    }

    #[test]
    fn from_data_constant_values() {
        let h = histogram_from_data(&[2.0, 2.0, 2.0], 3).unwrap();
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins()[0].count, 3);
    }

    #[test]
    fn bin_mean_matches_figure5_update_rule() {
        // Explicitly follow the Fig. 5 recurrence and compare.
        let values = [3.2, 3.7, 3.9, 3.1];
        let mut c = 0u64;
        let mut m = 0.0f64;
        for v in values {
            c += 1;
            m = (m * (c - 1) as f64 + v) / c as f64;
        }
        let mut bin = BinStats::default();
        for v in values {
            bin.push(v);
        }
        assert_eq!(bin.count, c);
        assert!((bin.mean - m).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn total_equals_sum_of_counts(values in proptest::collection::vec(-100.0f64..100.0, 0..300)) {
            let mut h = EquiWidthHistogram::new(-100.0, 100.0, 16).unwrap();
            h.observe_all(&values);
            prop_assert_eq!(h.total(), values.len() as u64);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), values.len() as u64);
        }

        #[test]
        fn bin_means_stay_within_domain(values in proptest::collection::vec(0.0f64..50.0, 1..200)) {
            let mut h = EquiWidthHistogram::new(0.0, 50.0, 10).unwrap();
            h.observe_all(&values);
            for (i, b) in h.bins().iter().enumerate() {
                if b.count > 0 {
                    let (lo, hi) = h.bin_range(i);
                    prop_assert!(b.mean >= lo - 1e-9 && b.mean <= hi + 1e-9,
                        "bin {i} mean {} outside [{lo},{hi})", b.mean);
                }
            }
        }

        #[test]
        fn frequencies_sum_to_one(values in proptest::collection::vec(-10.0f64..10.0, 1..100)) {
            let mut h = EquiWidthHistogram::new(-10.0, 10.0, 8).unwrap();
            h.observe_all(&values);
            let sum: f64 = (0..h.bin_count()).map(|i| h.frequency(i)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
