//! Error types for the statistics substrate.

use std::fmt;

/// Errors produced by histogram, KDE and estimator construction.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the violated constraint.
        message: String,
    },
    /// An operation required at least one observation but none were present.
    EmptyInput(&'static str),
    /// A numerical routine failed to converge.
    NonConvergence {
        /// Routine name.
        routine: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
}

impl StatsError {
    /// Convenience constructor for invalid parameters.
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        StatsError::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            StatsError::EmptyInput(what) => write!(f, "empty input: {what}"),
            StatsError::NonConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} did not converge after {iterations} iterations"
            ),
        }
    }
}

impl std::error::Error for StatsError {}

/// Result alias for the stats crate.
pub type Result<T> = std::result::Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StatsError::invalid("bins", "must be > 0");
        assert_eq!(e.to_string(), "invalid parameter bins: must be > 0");
        let e = StatsError::EmptyInput("predicate set");
        assert!(e.to_string().contains("predicate set"));
        let e = StatsError::NonConvergence {
            routine: "fnchg_mean",
            iterations: 50,
        };
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&StatsError::EmptyInput("x"));
    }
}
