//! Kernel functions for density estimation.
//!
//! The paper uses the standard normal (Gaussian) kernel
//! `φ(u) = (1/√(2π)) e^{−u²/2}` for its kernel density estimator. Additional
//! compact-support kernels are provided so the ablation benches can compare
//! the sensitivity of impression quality to the kernel choice.

use serde::{Deserialize, Serialize};

/// 1/sqrt(2π), the normalisation constant of the Gaussian kernel.
pub const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// A symmetric, normalised kernel function `K(u)` with `∫K(u)du = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Kernel {
    /// Standard normal density — the paper's choice.
    #[default]
    Gaussian,
    /// Epanechnikov kernel `3/4 (1 − u²)` on \[−1, 1\].
    Epanechnikov,
    /// Uniform (boxcar) kernel `1/2` on \[−1, 1\].
    Uniform,
    /// Triangular kernel `1 − |u|` on \[−1, 1\].
    Triangular,
}

impl Kernel {
    /// Evaluate the kernel at `u`.
    pub fn evaluate(&self, u: f64) -> f64 {
        match self {
            Kernel::Gaussian => INV_SQRT_2PI * (-0.5 * u * u).exp(),
            Kernel::Epanechnikov => {
                if u.abs() <= 1.0 {
                    0.75 * (1.0 - u * u)
                } else {
                    0.0
                }
            }
            Kernel::Uniform => {
                if u.abs() <= 1.0 {
                    0.5
                } else {
                    0.0
                }
            }
            Kernel::Triangular => {
                if u.abs() <= 1.0 {
                    1.0 - u.abs()
                } else {
                    0.0
                }
            }
        }
    }

    /// Evaluate the scaled kernel `K_h(x) = K(x/h)/h`.
    ///
    /// Panics in debug builds if `h <= 0`.
    pub fn evaluate_scaled(&self, x: f64, h: f64) -> f64 {
        debug_assert!(h > 0.0, "bandwidth must be positive");
        self.evaluate(x / h) / h
    }

    /// The kernel's second moment `∫u²K(u)du`, needed by plug-in bandwidth
    /// rules.
    pub fn second_moment(&self) -> f64 {
        match self {
            Kernel::Gaussian => 1.0,
            Kernel::Epanechnikov => 0.2,
            Kernel::Uniform => 1.0 / 3.0,
            Kernel::Triangular => 1.0 / 6.0,
        }
    }

    /// The kernel's roughness `∫K(u)²du`, needed by plug-in bandwidth rules.
    pub fn roughness(&self) -> f64 {
        match self {
            Kernel::Gaussian => 0.5 * INV_SQRT_2PI * std::f64::consts::SQRT_2, // 1/(2√π)
            Kernel::Epanechnikov => 0.6,
            Kernel::Uniform => 0.5,
            Kernel::Triangular => 2.0 / 3.0,
        }
    }

    /// A human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Gaussian => "gaussian",
            Kernel::Epanechnikov => "epanechnikov",
            Kernel::Uniform => "uniform",
            Kernel::Triangular => "triangular",
        }
    }

    /// All available kernels (useful for ablation sweeps).
    pub fn all() -> [Kernel; 4] {
        [
            Kernel::Gaussian,
            Kernel::Epanechnikov,
            Kernel::Uniform,
            Kernel::Triangular,
        ]
    }
}

/// The standard normal density `φ(u)`, the kernel the paper's f̂ and f̆ use.
pub fn standard_normal_pdf(u: f64) -> f64 {
    Kernel::Gaussian.evaluate(u)
}

/// The standard normal cumulative distribution function, computed via the
/// complementary error function (Abramowitz & Stegun 7.1.26 approximation).
///
/// Accuracy is ~1.5e-7 absolute which is ample for confidence intervals.
pub fn standard_normal_cdf(x: f64) -> f64 {
    // erf via A&S 7.1.26
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * z.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf_abs = 1.0 - poly * (-z * z).exp();
    let erf = if z >= 0.0 { erf_abs } else { -erf_abs };
    0.5 * (1.0 + erf)
}

/// The inverse standard normal CDF (probit function), computed with the
/// Acklam rational approximation (relative error < 1.15e-9).
///
/// Returns `f64::NAN` outside (0, 1).
pub fn standard_normal_quantile(p: f64) -> f64 {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        return f64::NAN;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let p_high = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= p_high {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Quantile of Student's t-distribution with `df` degrees of freedom.
///
/// Exact closed forms for 1 and 2 degrees of freedom; the Cornish–Fisher
/// expansion around the normal quantile otherwise. At the 97.5th percentile
/// the expansion's relative error is ≈ 7e-3 at df = 3, ≈ 1e-3 at df = 5 and
/// below 2e-4 from df = 10 — ample for interval construction, where the df
/// itself is only an effective-sample-size approximation. Used instead of
/// the plain normal quantile so that intervals built from few effective
/// observations widen the way a finite-sample analysis demands.
pub fn standard_t_quantile(p: f64, df: u64) -> f64 {
    if !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    match df {
        0 => f64::NAN,
        1 => (std::f64::consts::PI * (p - 0.5)).tan(),
        2 => {
            let a = 2.0 * p - 1.0;
            a * (2.0 / (1.0 - a * a)).sqrt()
        }
        _ => {
            let d = df as f64;
            let z = standard_normal_quantile(p);
            let z3 = z * z * z;
            let z5 = z3 * z * z;
            let z7 = z5 * z * z;
            z + (z3 + z) / (4.0 * d)
                + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * d * d)
                + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * d * d * d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn t_quantile_matches_reference_values() {
        // Reference values from standard t tables (two-sided 95% → p = 0.975).
        for (df, expected, tol) in [
            (1u64, 12.706, 0.01),
            (2, 4.303, 0.01),
            (5, 2.571, 0.02),
            (10, 2.228, 0.01),
            (30, 2.042, 0.005),
            (100, 1.984, 0.005),
        ] {
            let t = standard_t_quantile(0.975, df);
            assert!(
                (t - expected).abs() < tol,
                "t(0.975, {df}) = {t}, expected {expected}"
            );
        }
        // symmetric around the median, degenerate edges
        assert!((standard_t_quantile(0.5, 7)).abs() < 1e-12);
        assert!((standard_t_quantile(0.1, 7) + standard_t_quantile(0.9, 7)).abs() < 1e-9);
        assert_eq!(standard_t_quantile(0.0, 5), f64::NEG_INFINITY);
        assert_eq!(standard_t_quantile(1.0, 5), f64::INFINITY);
        assert!(standard_t_quantile(0.9, 0).is_nan());
        assert!(standard_t_quantile(-0.1, 5).is_nan());
        // converges to the normal quantile for large df
        let z = standard_normal_quantile(0.975);
        assert!((standard_t_quantile(0.975, 1_000_000) - z).abs() < 1e-4);
    }

    #[test]
    fn gaussian_at_zero() {
        assert!((Kernel::Gaussian.evaluate(0.0) - INV_SQRT_2PI).abs() < 1e-12);
        assert!((standard_normal_pdf(0.0) - 0.398_942_280_4).abs() < 1e-9);
    }

    #[test]
    fn kernels_are_symmetric() {
        for k in Kernel::all() {
            for u in [0.1, 0.5, 0.9, 1.5, 3.0] {
                assert!(
                    (k.evaluate(u) - k.evaluate(-u)).abs() < 1e-14,
                    "{} not symmetric at {u}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn compact_kernels_vanish_outside_support() {
        for k in [Kernel::Epanechnikov, Kernel::Uniform, Kernel::Triangular] {
            assert_eq!(k.evaluate(1.01), 0.0);
            assert_eq!(k.evaluate(-2.0), 0.0);
        }
        assert!(Kernel::Gaussian.evaluate(5.0) > 0.0);
    }

    #[test]
    fn kernels_integrate_to_one() {
        // trapezoidal integration over a wide grid
        for k in Kernel::all() {
            let (lo, hi, steps) = (-8.0, 8.0, 16_000);
            let dx = (hi - lo) / steps as f64;
            let mut sum = 0.0;
            for i in 0..=steps {
                let x = lo + i as f64 * dx;
                let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
                sum += w * k.evaluate(x);
            }
            let integral = sum * dx;
            assert!(
                (integral - 1.0).abs() < 1e-3,
                "{} integrates to {integral}",
                k.name()
            );
        }
    }

    #[test]
    fn scaled_kernel_scales_correctly() {
        // K_h(x) = K(x/h)/h
        let k = Kernel::Gaussian;
        let x = 1.2;
        let h = 0.5;
        assert!((k.evaluate_scaled(x, h) - k.evaluate(x / h) / h).abs() < 1e-15);
    }

    #[test]
    fn second_moment_and_roughness_gaussian() {
        assert!((Kernel::Gaussian.second_moment() - 1.0).abs() < 1e-12);
        // 1/(2*sqrt(pi)) ≈ 0.28209479
        assert!((Kernel::Gaussian.roughness() - 0.282_094_791_77).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
        assert!(standard_normal_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((standard_normal_quantile(0.5)).abs() < 1e-9);
        assert!((standard_normal_quantile(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.025) + 1.959_963_985).abs() < 1e-6);
        assert!((standard_normal_quantile(0.995) - 2.575_829_3).abs() < 1e-5);
        assert_eq!(standard_normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(standard_normal_quantile(1.0), f64::INFINITY);
        assert!(standard_normal_quantile(-0.1).is_nan());
        assert!(standard_normal_quantile(1.1).is_nan());
    }

    #[test]
    fn default_kernel_is_gaussian() {
        assert_eq!(Kernel::default(), Kernel::Gaussian);
        assert_eq!(Kernel::default().name(), "gaussian");
    }

    proptest! {
        #[test]
        fn kernel_values_non_negative(u in -10.0f64..10.0) {
            for k in Kernel::all() {
                prop_assert!(k.evaluate(u) >= 0.0);
            }
        }

        #[test]
        fn cdf_quantile_roundtrip(p in 0.001f64..0.999) {
            let x = standard_normal_quantile(p);
            let back = standard_normal_cdf(x);
            prop_assert!((back - p).abs() < 1e-4, "p={p} x={x} back={back}");
        }

        #[test]
        fn cdf_is_monotone(a in -5.0f64..5.0, b in -5.0f64..5.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(standard_normal_cdf(lo) <= standard_normal_cdf(hi) + 1e-12);
        }
    }
}
