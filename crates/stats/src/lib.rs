//! # sciborq-stats
//!
//! Statistical machinery for the SciBORQ reproduction: streaming histograms,
//! kernel density estimation, sampling distributions and error bounds.
//!
//! The modules map directly onto Section 4 of the paper:
//!
//! * [`histogram`] — the equi-width predicate-set histograms of Figure 5
//!   (per-bin count `cᵢ` and running mean `mᵢ`, maintained in O(1) per
//!   observed predicate value).
//! * [`kde`] — the full kernel density estimator `f̂` and the binned,
//!   constant-time estimator `f̆` that SciBORQ uses to weight newly ingested
//!   tuples.
//! * [`bandwidth`] — Silverman/Scott bandwidth rules plus the deliberate
//!   over/under-smoothing factors of Figure 4.
//! * [`kernel`] — the Gaussian kernel `φ` (and alternatives), the normal CDF
//!   and quantile function.
//! * [`fnchg`] — Fisher's non-central hypergeometric distribution (Fog 2008),
//!   the theory behind biased-sample error bounds.
//! * [`estimator`] — expansion estimators for uniform samples and
//!   Horvitz–Thompson/Hansen–Hurwitz style estimators for biased samples.
//! * [`confidence`] — confidence intervals, relative error bounds, and
//!   sample-size planning.
//! * [`moments`] — Welford-style streaming moments shared by everything
//!   above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod confidence;
pub mod error;
pub mod estimator;
pub mod fnchg;
pub mod histogram;
pub mod kde;
pub mod kernel;
pub mod moments;

pub use bandwidth::{
    oversmoothed_bandwidth, reference_bandwidth, silverman_bandwidth, undersmoothed_bandwidth,
    BandwidthRule, BaseRule,
};
pub use confidence::{required_sample_size_for_count, ConfidenceInterval};
pub use error::{Result, StatsError};
pub use estimator::{
    Estimate, SrsEstimator, WeightedEstimator, WeightedMomentSketch, WeightedObservation,
};
pub use fnchg::FisherNoncentralHypergeometric;
pub use histogram::{histogram_from_data, BinStats, EquiWidthHistogram};
pub use kde::{integrate_density, mean_absolute_deviation, BinnedKde, FullKde};
pub use kernel::{
    standard_normal_cdf, standard_normal_pdf, standard_normal_quantile, standard_t_quantile, Kernel,
};
pub use moments::{mean, relative_error, variance_population, RunningMoments};
