//! Estimators that scale sample aggregates up to population aggregates.
//!
//! Two families are needed by SciBORQ:
//!
//! * **Simple random sampling (SRS)** estimators for uniform impressions
//!   (Algorithm R reservoirs): the classical expansion estimator with a
//!   finite-population correction.
//! * **Unequal-probability** estimators for biased impressions: each tuple
//!   carries the inclusion probability implied by its KDE interest weight,
//!   and totals are estimated Horvitz–Thompson style (`Σ yᵢ/πᵢ`) with a
//!   Hansen–Hurwitz style variance approximation.
//!
//! The estimators report both a point estimate and a standard error; the
//! confidence-interval machinery in [`crate::confidence`] turns those into
//! the error bounds the bounded-query engine enforces.

use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A point estimate together with its standard error and the number of
/// sample rows that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The point estimate of the population quantity.
    pub value: f64,
    /// The estimated standard error of the point estimate.
    pub standard_error: f64,
    /// Number of sample observations used.
    pub sample_size: usize,
}

impl Estimate {
    /// An exact (zero-error) estimate, e.g. when the query ran on base data.
    pub fn exact(value: f64, sample_size: usize) -> Self {
        Estimate {
            value,
            standard_error: 0.0,
            sample_size,
        }
    }
}

/// Estimators for uniform (simple random, without replacement) samples of a
/// population of known size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrsEstimator {
    /// Population size `cnt` (number of tuples in the base table / layer
    /// below).
    pub population_size: u64,
    /// Sample size `n` drawn from that population.
    pub sample_size: u64,
}

impl SrsEstimator {
    /// Create an estimator; the sample cannot exceed the population.
    pub fn new(population_size: u64, sample_size: u64) -> Result<Self> {
        if sample_size > population_size {
            return Err(StatsError::invalid(
                "sample_size",
                format!("sample {sample_size} exceeds population {population_size}"),
            ));
        }
        Ok(SrsEstimator {
            population_size,
            sample_size,
        })
    }

    /// Finite population correction `1 − n/N`.
    pub fn fpc(&self) -> f64 {
        if self.population_size == 0 {
            0.0
        } else {
            1.0 - self.sample_size as f64 / self.population_size as f64
        }
    }

    /// Estimate a population COUNT (the number of tuples satisfying a
    /// predicate) from the number of matching tuples in the sample.
    ///
    /// The selectivity `p̂ = matches/n` is expanded to `p̂·N`; the standard
    /// error follows the binomial/hypergeometric approximation with FPC.
    pub fn estimate_count(&self, sample_matches: usize) -> Result<Estimate> {
        let n = self.sample_size as f64;
        if self.sample_size == 0 {
            return Err(StatsError::EmptyInput("SRS count estimate on empty sample"));
        }
        if sample_matches as u64 > self.sample_size {
            return Err(StatsError::invalid(
                "sample_matches",
                "cannot exceed sample size",
            ));
        }
        let big_n = self.population_size as f64;
        let p = sample_matches as f64 / n;
        let var_p = p * (1.0 - p) / n * self.fpc();
        Ok(Estimate {
            value: p * big_n,
            standard_error: big_n * var_p.sqrt(),
            sample_size: sample_matches,
        })
    }

    /// Estimate a population SUM of an attribute from the sample values of
    /// the tuples matching the predicate.
    ///
    /// `sample_values` are the attribute values of the matching sample
    /// tuples; the estimator expands the *sample mean over all n drawn
    /// tuples* (treating non-matching tuples as contributing 0) to the
    /// population, which is the standard expansion estimator for domain
    /// sums.
    pub fn estimate_sum(&self, sample_values: &[f64]) -> Result<Estimate> {
        let sum: f64 = sample_values.iter().sum();
        let sum_sq: f64 = sample_values.iter().map(|v| v * v).sum();
        self.estimate_sum_parts(sample_values.len(), sum, sum_sq)
    }

    /// [`SrsEstimator::estimate_sum`] from streamed sufficient statistics:
    /// the number of matching non-NULL sample values, their sum and their
    /// sum of squares — exactly what a fused filter+aggregate scan kernel
    /// accumulates in one pass, so no selection needs to be re-walked.
    pub fn estimate_sum_parts(
        &self,
        value_count: usize,
        sum: f64,
        sum_sq: f64,
    ) -> Result<Estimate> {
        if self.sample_size == 0 {
            return Err(StatsError::EmptyInput("SRS sum estimate on empty sample"));
        }
        let n = self.sample_size as f64;
        let big_n = self.population_size as f64;
        // zero-extended mean and variance over the full drawn sample
        let mean = sum / n;
        let var = if self.sample_size > 1 {
            ((sum_sq - n * mean * mean) / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        let se = big_n * (var / n * self.fpc()).sqrt();
        Ok(Estimate {
            value: big_n * mean,
            standard_error: se,
            sample_size: value_count,
        })
    }

    /// Estimate a population AVG of an attribute over the tuples matching a
    /// predicate, from the matching sample values.
    ///
    /// This is a ratio estimator (domain mean); its standard error uses the
    /// within-domain sample variance with FPC.
    pub fn estimate_avg(&self, sample_values: &[f64]) -> Result<Estimate> {
        if sample_values.is_empty() {
            return Err(StatsError::EmptyInput("SRS avg estimate with no matches"));
        }
        let m = sample_values.len() as f64;
        let mean = sample_values.iter().sum::<f64>() / m;
        let m2 = sample_values
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f64>();
        self.estimate_avg_parts(sample_values.len(), mean, m2)
    }

    /// [`SrsEstimator::estimate_avg`] from streamed moments: the matching
    /// non-NULL value count, their mean, and the centred second moment `M2`
    /// (Welford), as accumulated by a fused filter+aggregate scan.
    pub fn estimate_avg_parts(&self, count: usize, mean: f64, m2: f64) -> Result<Estimate> {
        if count == 0 {
            return Err(StatsError::EmptyInput("SRS avg estimate with no matches"));
        }
        let m = count as f64;
        let var = if count > 1 { m2 / (m - 1.0) } else { 0.0 };
        Ok(Estimate {
            value: mean,
            standard_error: (var / m * self.fpc()).sqrt(),
            sample_size: count,
        })
    }
}

/// A sample observation for unequal-probability estimation: the value and
/// the (relative) probability with which its tuple was drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedObservation {
    /// The attribute value (or 1.0 / 0.0 for count estimation).
    pub value: f64,
    /// The single-draw selection probability `pᵢ` of this tuple, normalised
    /// so that `Σ pᵢ = 1` over the population.
    pub probability: f64,
}

/// Hansen–Hurwitz / Horvitz–Thompson style estimators for samples drawn with
/// probability proportional to an interest weight (the biased impressions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedEstimator;

impl WeightedEstimator {
    /// Estimate the population total `Σ_pop y` from `n` weighted draws.
    ///
    /// The Hansen–Hurwitz estimator is `(1/n) Σ yᵢ/pᵢ`; its variance is
    /// estimated by the sample variance of the per-draw expansions.
    pub fn estimate_total(observations: &[WeightedObservation]) -> Result<Estimate> {
        if observations.is_empty() {
            return Err(StatsError::EmptyInput("weighted total estimate"));
        }
        for o in observations {
            if !(o.probability > 0.0) || !o.probability.is_finite() {
                return Err(StatsError::invalid(
                    "probability",
                    "selection probabilities must be positive and finite",
                ));
            }
        }
        let n = observations.len() as f64;
        let expansions: Vec<f64> = observations
            .iter()
            .map(|o| o.value / o.probability)
            .collect();
        let mean_exp = expansions.iter().sum::<f64>() / n;
        let var_exp = if observations.len() > 1 {
            expansions
                .iter()
                .map(|e| (e - mean_exp).powi(2))
                .sum::<f64>()
                / (n - 1.0)
        } else {
            0.0
        };
        // `sample_size` defaults to the number of draws; callers that know
        // how many draws actually matched their predicate (e.g. the
        // impression estimators, where zero-extended non-matching draws only
        // pin down the selectivity) should override it with the matched
        // count so downstream intervals use honest degrees of freedom.
        Ok(Estimate {
            value: mean_exp,
            standard_error: (var_exp / n).sqrt(),
            sample_size: observations.len(),
        })
    }

    /// Estimate a population mean as the ratio of two weighted totals
    /// (total of `y` over total of 1), the standard Hájek estimator.
    pub fn estimate_mean(observations: &[WeightedObservation]) -> Result<Estimate> {
        if observations.is_empty() {
            return Err(StatsError::EmptyInput("weighted mean estimate"));
        }
        let numerator = Self::estimate_total(observations)?;
        let ones: Vec<WeightedObservation> = observations
            .iter()
            .map(|o| WeightedObservation {
                value: 1.0,
                probability: o.probability,
            })
            .collect();
        let denominator = Self::estimate_total(&ones)?;
        if denominator.value <= 0.0 {
            return Err(StatsError::invalid(
                "observations",
                "estimated population size is non-positive",
            ));
        }
        let ratio = numerator.value / denominator.value;
        // First-order Taylor (delta-method) variance of the ratio estimator.
        let n = observations.len() as f64;
        let residual_var = if observations.len() > 1 {
            observations
                .iter()
                .map(|o| (o.value - ratio) / o.probability)
                .map(|r| {
                    let mean_r = 0.0; // residuals have approximately zero mean
                    (r - mean_r).powi(2)
                })
                .sum::<f64>()
                / (n - 1.0)
        } else {
            0.0
        };
        let se = (residual_var / n).sqrt() / denominator.value;
        Ok(Estimate {
            value: ratio,
            standard_error: se,
            sample_size: observations.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn srs_estimator_validation() {
        assert!(SrsEstimator::new(10, 20).is_err());
        let e = SrsEstimator::new(100, 10).unwrap();
        assert!((e.fpc() - 0.9).abs() < 1e-12);
        let full = SrsEstimator::new(10, 10).unwrap();
        assert_eq!(full.fpc(), 0.0);
        let empty_pop = SrsEstimator::new(0, 0).unwrap();
        assert_eq!(empty_pop.fpc(), 0.0);
    }

    #[test]
    fn srs_count_estimate_scales_selectivity() {
        let e = SrsEstimator::new(1_000_000, 10_000).unwrap();
        let est = e.estimate_count(2_500).unwrap();
        assert!((est.value - 250_000.0).abs() < 1e-6);
        assert!(est.standard_error > 0.0);
        // matching everything or nothing has zero binomial variance
        assert_eq!(e.estimate_count(0).unwrap().standard_error, 0.0);
        assert_eq!(e.estimate_count(10_000).unwrap().standard_error, 0.0);
    }

    #[test]
    fn srs_count_estimate_errors() {
        let e = SrsEstimator::new(100, 0).unwrap();
        assert!(e.estimate_count(0).is_err());
        let e = SrsEstimator::new(100, 10).unwrap();
        assert!(e.estimate_count(11).is_err());
    }

    #[test]
    fn srs_count_full_sample_is_exact() {
        let e = SrsEstimator::new(500, 500).unwrap();
        let est = e.estimate_count(123).unwrap();
        assert!((est.value - 123.0).abs() < 1e-9);
        assert_eq!(est.standard_error, 0.0);
    }

    #[test]
    fn srs_sum_estimate() {
        // population of 100 tuples, sample of 10, 4 match with given values
        let e = SrsEstimator::new(100, 10).unwrap();
        let est = e.estimate_sum(&[5.0, 7.0, 3.0, 5.0]).unwrap();
        // zero-extended mean = 20/10 = 2 -> total 200
        assert!((est.value - 200.0).abs() < 1e-9);
        assert!(est.standard_error > 0.0);
        assert!(SrsEstimator::new(100, 0)
            .unwrap()
            .estimate_sum(&[])
            .is_err());
    }

    #[test]
    fn srs_avg_estimate() {
        let e = SrsEstimator::new(100, 10).unwrap();
        let est = e.estimate_avg(&[10.0, 20.0, 30.0]).unwrap();
        assert!((est.value - 20.0).abs() < 1e-9);
        assert!(est.standard_error > 0.0);
        assert!(e.estimate_avg(&[]).is_err());
        // single match: zero estimated variance
        assert_eq!(e.estimate_avg(&[42.0]).unwrap().standard_error, 0.0);
    }

    #[test]
    fn streamed_parts_match_slice_estimates_bitwise() {
        let e = SrsEstimator::new(100, 10).unwrap();
        let values = [5.0, 7.0, 3.0, 5.0];
        let from_slice = e.estimate_sum(&values).unwrap();
        let sum: f64 = values.iter().sum();
        let sum_sq: f64 = values.iter().map(|v| v * v).sum();
        let from_parts = e.estimate_sum_parts(values.len(), sum, sum_sq).unwrap();
        assert_eq!(from_slice, from_parts);

        let from_slice = e.estimate_avg(&values).unwrap();
        let mean = sum / values.len() as f64;
        let m2: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
        let from_parts = e.estimate_avg_parts(values.len(), mean, m2).unwrap();
        assert_eq!(from_slice, from_parts);
    }

    #[test]
    fn streamed_parts_validation() {
        let e = SrsEstimator::new(100, 10).unwrap();
        assert!(e.estimate_avg_parts(0, 0.0, 0.0).is_err());
        let empty = SrsEstimator::new(100, 0).unwrap();
        assert!(empty.estimate_sum_parts(0, 0.0, 0.0).is_err());
        // single value: zero variance
        assert_eq!(
            e.estimate_avg_parts(1, 42.0, 0.0).unwrap().standard_error,
            0.0
        );
    }

    #[test]
    fn weighted_total_uniform_weights_match_expansion() {
        // If all probabilities are equal (1/N), the HH estimator reduces to
        // N * sample mean.
        let big_n = 1000.0;
        let obs: Vec<WeightedObservation> = [2.0, 4.0, 6.0, 8.0]
            .iter()
            .map(|&v| WeightedObservation {
                value: v,
                probability: 1.0 / big_n,
            })
            .collect();
        let est = WeightedEstimator::estimate_total(&obs).unwrap();
        assert!((est.value - big_n * 5.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_total_validation() {
        assert!(WeightedEstimator::estimate_total(&[]).is_err());
        let bad = [WeightedObservation {
            value: 1.0,
            probability: 0.0,
        }];
        assert!(WeightedEstimator::estimate_total(&bad).is_err());
        let nan = [WeightedObservation {
            value: 1.0,
            probability: f64::NAN,
        }];
        assert!(WeightedEstimator::estimate_total(&nan).is_err());
    }

    #[test]
    fn weighted_mean_recovers_population_mean_under_bias() {
        // Population: two strata. Stratum A (values ~100) is sampled 4x more
        // often than stratum B (values ~10). The Hájek estimator should still
        // recover the overall mean because it divides by the estimated
        // population size.
        let mut rng = StdRng::seed_from_u64(99);
        let pop_a: Vec<f64> = (0..2000)
            .map(|_| 100.0 + rng.gen_range(-5.0..5.0))
            .collect();
        let pop_b: Vec<f64> = (0..8000).map(|_| 10.0 + rng.gen_range(-2.0..2.0)).collect();
        let true_mean = (pop_a.iter().sum::<f64>() + pop_b.iter().sum::<f64>()) / 10_000.0;

        // draw 2000 samples with pps weights: p(A-item) ∝ 4, p(B-item) ∝ 1
        let weight_a = 4.0;
        let weight_b = 1.0;
        let total_weight = weight_a * pop_a.len() as f64 + weight_b * pop_b.len() as f64;
        let mut obs = Vec::new();
        for _ in 0..2000 {
            let pick_a = rng.gen_bool(weight_a * pop_a.len() as f64 / total_weight);
            if pick_a {
                let v = pop_a[rng.gen_range(0..pop_a.len())];
                obs.push(WeightedObservation {
                    value: v,
                    probability: weight_a / total_weight,
                });
            } else {
                let v = pop_b[rng.gen_range(0..pop_b.len())];
                obs.push(WeightedObservation {
                    value: v,
                    probability: weight_b / total_weight,
                });
            }
        }
        let est = WeightedEstimator::estimate_mean(&obs).unwrap();
        let naive_mean = obs.iter().map(|o| o.value).sum::<f64>() / obs.len() as f64;
        // the naive (unweighted) mean is badly biased upwards
        assert!(naive_mean > true_mean * 1.5);
        // the weighted estimator lands close to the truth
        assert!(
            (est.value - true_mean).abs() / true_mean < 0.1,
            "estimate {} vs truth {}",
            est.value,
            true_mean
        );
    }

    #[test]
    fn weighted_mean_errors_on_empty() {
        assert!(WeightedEstimator::estimate_mean(&[]).is_err());
    }

    #[test]
    fn exact_estimate_constructor() {
        let e = Estimate::exact(42.0, 7);
        assert_eq!(e.value, 42.0);
        assert_eq!(e.standard_error, 0.0);
        assert_eq!(e.sample_size, 7);
    }

    proptest! {
        #[test]
        fn srs_count_value_bounded_by_population(
            pop in 1u64..100_000,
            frac in 0.01f64..1.0,
            match_frac in 0.0f64..1.0,
        ) {
            let n = ((pop as f64 * frac).ceil() as u64).clamp(1, pop);
            let e = SrsEstimator::new(pop, n).unwrap();
            let matches = ((n as f64) * match_frac).floor() as usize;
            let est = e.estimate_count(matches).unwrap();
            prop_assert!(est.value >= -1e-9);
            prop_assert!(est.value <= pop as f64 + 1e-9);
            prop_assert!(est.standard_error >= 0.0);
        }

        #[test]
        fn weighted_total_positive_for_positive_values(
            values in proptest::collection::vec(0.1f64..100.0, 1..50),
        ) {
            let n_pop = 1000.0;
            let obs: Vec<WeightedObservation> = values.iter()
                .map(|&v| WeightedObservation { value: v, probability: 1.0 / n_pop })
                .collect();
            let est = WeightedEstimator::estimate_total(&obs).unwrap();
            prop_assert!(est.value > 0.0);
            prop_assert!(est.standard_error >= 0.0);
        }
    }
}
