//! Estimators that scale sample aggregates up to population aggregates.
//!
//! Two families are needed by SciBORQ:
//!
//! * **Simple random sampling (SRS)** estimators for uniform impressions
//!   (Algorithm R reservoirs): the classical expansion estimator with a
//!   finite-population correction.
//! * **Unequal-probability** estimators for biased impressions: each tuple
//!   carries the inclusion probability implied by its KDE interest weight,
//!   and totals are estimated Horvitz–Thompson style (`Σ yᵢ/πᵢ`) with a
//!   Hansen–Hurwitz style variance approximation.
//!
//! The estimators report both a point estimate and a standard error; the
//! confidence-interval machinery in [`crate::confidence`] turns those into
//! the error bounds the bounded-query engine enforces.

use crate::error::{Result, StatsError};
use serde::{Deserialize, Serialize};

/// A point estimate together with its standard error and the number of
/// sample rows that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// The point estimate of the population quantity.
    pub value: f64,
    /// The estimated standard error of the point estimate.
    pub standard_error: f64,
    /// Number of sample observations used.
    pub sample_size: usize,
}

impl Estimate {
    /// An exact (zero-error) estimate, e.g. when the query ran on base data.
    pub fn exact(value: f64, sample_size: usize) -> Self {
        Estimate {
            value,
            standard_error: 0.0,
            sample_size,
        }
    }
}

/// Estimators for uniform (simple random, without replacement) samples of a
/// population of known size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SrsEstimator {
    /// Population size `cnt` (number of tuples in the base table / layer
    /// below).
    pub population_size: u64,
    /// Sample size `n` drawn from that population.
    pub sample_size: u64,
}

impl SrsEstimator {
    /// Create an estimator; the sample cannot exceed the population.
    pub fn new(population_size: u64, sample_size: u64) -> Result<Self> {
        if sample_size > population_size {
            return Err(StatsError::invalid(
                "sample_size",
                format!("sample {sample_size} exceeds population {population_size}"),
            ));
        }
        Ok(SrsEstimator {
            population_size,
            sample_size,
        })
    }

    /// Finite population correction `1 − n/N`.
    pub fn fpc(&self) -> f64 {
        if self.population_size == 0 {
            0.0
        } else {
            1.0 - self.sample_size as f64 / self.population_size as f64
        }
    }

    /// Estimate a population COUNT (the number of tuples satisfying a
    /// predicate) from the number of matching tuples in the sample.
    ///
    /// The selectivity `p̂ = matches/n` is expanded to `p̂·N`; the standard
    /// error follows the binomial/hypergeometric approximation with FPC.
    pub fn estimate_count(&self, sample_matches: usize) -> Result<Estimate> {
        let n = self.sample_size as f64;
        if self.sample_size == 0 {
            return Err(StatsError::EmptyInput("SRS count estimate on empty sample"));
        }
        if sample_matches as u64 > self.sample_size {
            return Err(StatsError::invalid(
                "sample_matches",
                "cannot exceed sample size",
            ));
        }
        let big_n = self.population_size as f64;
        let p = sample_matches as f64 / n;
        let var_p = p * (1.0 - p) / n * self.fpc();
        Ok(Estimate {
            value: p * big_n,
            standard_error: big_n * var_p.sqrt(),
            sample_size: sample_matches,
        })
    }

    /// Estimate a population SUM of an attribute from the sample values of
    /// the tuples matching the predicate.
    ///
    /// `sample_values` are the attribute values of the matching sample
    /// tuples; the estimator expands the *sample mean over all n drawn
    /// tuples* (treating non-matching tuples as contributing 0) to the
    /// population, which is the standard expansion estimator for domain
    /// sums.
    pub fn estimate_sum(&self, sample_values: &[f64]) -> Result<Estimate> {
        let sum: f64 = sample_values.iter().sum();
        let sum_sq: f64 = sample_values.iter().map(|v| v * v).sum();
        self.estimate_sum_parts(sample_values.len(), sum, sum_sq)
    }

    /// [`SrsEstimator::estimate_sum`] from streamed sufficient statistics:
    /// the number of matching non-NULL sample values, their sum and their
    /// sum of squares — exactly what a fused filter+aggregate scan kernel
    /// accumulates in one pass, so no selection needs to be re-walked.
    pub fn estimate_sum_parts(
        &self,
        value_count: usize,
        sum: f64,
        sum_sq: f64,
    ) -> Result<Estimate> {
        if self.sample_size == 0 {
            return Err(StatsError::EmptyInput("SRS sum estimate on empty sample"));
        }
        let n = self.sample_size as f64;
        let big_n = self.population_size as f64;
        // zero-extended mean and variance over the full drawn sample
        let mean = sum / n;
        let var = if self.sample_size > 1 {
            ((sum_sq - n * mean * mean) / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        let se = big_n * (var / n * self.fpc()).sqrt();
        Ok(Estimate {
            value: big_n * mean,
            standard_error: se,
            sample_size: value_count,
        })
    }

    /// Estimate a population AVG of an attribute over the tuples matching a
    /// predicate, from the matching sample values.
    ///
    /// This is a ratio estimator (domain mean); its standard error uses the
    /// within-domain sample variance with FPC.
    pub fn estimate_avg(&self, sample_values: &[f64]) -> Result<Estimate> {
        if sample_values.is_empty() {
            return Err(StatsError::EmptyInput("SRS avg estimate with no matches"));
        }
        let m = sample_values.len() as f64;
        let mean = sample_values.iter().sum::<f64>() / m;
        let m2 = sample_values
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f64>();
        self.estimate_avg_parts(sample_values.len(), mean, m2)
    }

    /// [`SrsEstimator::estimate_avg`] from streamed moments: the matching
    /// non-NULL value count, their mean, and the centred second moment `M2`
    /// (Welford), as accumulated by a fused filter+aggregate scan.
    pub fn estimate_avg_parts(&self, count: usize, mean: f64, m2: f64) -> Result<Estimate> {
        if count == 0 {
            return Err(StatsError::EmptyInput("SRS avg estimate with no matches"));
        }
        let m = count as f64;
        let var = if count > 1 { m2 / (m - 1.0) } else { 0.0 };
        Ok(Estimate {
            value: mean,
            standard_error: (var / m * self.fpc()).sqrt(),
            sample_size: count,
        })
    }
}

/// A sample observation for unequal-probability estimation: the value and
/// the (relative) probability with which its tuple was drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedObservation {
    /// The attribute value (or 1.0 / 0.0 for count estimation).
    pub value: f64,
    /// The single-draw selection probability `pᵢ` of this tuple, normalised
    /// so that `Σ pᵢ = 1` over the population.
    pub probability: f64,
}

/// One-pass Hansen–Hurwitz sufficient statistics, accumulated by the fused
/// weighted scan kernels (`sciborq-columnar`) so that biased impressions can
/// be estimated without materialising a selection vector or a
/// `Vec<WeightedObservation>`.
///
/// Every matching draw with a non-NULL value `v` and single-draw selection
/// probability `p` contributes its expansions `e = v/p` and `q = 1/p`, in
/// row order:
///
/// * `sum_vp`, `sum_inv_p` — the raw sums `Σ v/p` (Hansen–Hurwitz total
///   numerator) and `Σ 1/p` (Hájek ratio denominator),
/// * `sum_dvp_sq`, `sum_dinv_p_sq`, `sum_dvp_dinv_p` (with `sum_dvp`,
///   `sum_dinv_p`) — the second moments `Σ (v/p)²`, `Σ (1/p)²` and the
///   Hájek cross term `Σ v/p²`, carried in **shifted** (provisional-mean)
///   form: every expansion is accumulated relative to the first pushed
///   expansion (`shift_vp` / `shift_inv_p`). A raw `Σe² − n·ē²` fold
///   catastrophically cancels when expansions are nearly equal
///   (near-uniform probabilities), and a clamped zero variance would
///   falsely certify error bounds; the shifted deltas are small exactly
///   where the raw sums are huge, so the variance comes out honestly tiny
///   instead of collapsing to a rounding artefact — while the accumulator
///   chains stay independent and pipeline like plain sums (unlike a Welford
///   recurrence, whose serialized mean updates would dominate the scan),
/// * `min_p` — the smallest probability seen, so consumers can reject
///   degenerate (zero / negative) probabilities after the tight loop
///   instead of branching on every row.
///
/// The fold expressions match [`WeightedEstimator::estimate_total`] /
/// [`WeightedEstimator::estimate_mean`] operation for operation (both build
/// this sketch), so streamed estimates are bit-identical to the
/// selection-based ones whenever rows are pushed in the same order the
/// selection would be walked. Draws that match the predicate but carry a
/// NULL value only bump `matched` (the zero-extension of the total
/// estimator makes their contribution exactly zero; the ratio estimator
/// excludes them entirely).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightedMomentSketch {
    /// Draws satisfying the predicate (COUNT(*) semantics: NULL values in
    /// the aggregated column still count).
    pub matched: usize,
    /// Matching draws with a non-NULL value (the Hájek sample size).
    pub count: usize,
    /// `Σ v/p` over the non-NULL matching draws.
    pub sum_vp: f64,
    /// `Σ 1/p` over the non-NULL matching draws.
    pub sum_inv_p: f64,
    /// The provisional mean of the `v/p` expansions: the first one pushed.
    pub shift_vp: f64,
    /// The provisional mean of the `1/p` expansions: the first one pushed.
    pub shift_inv_p: f64,
    /// `Σ (v/p − shift_vp)` over the non-NULL matching draws.
    pub sum_dvp: f64,
    /// `Σ (v/p − shift_vp)²` over the non-NULL matching draws.
    pub sum_dvp_sq: f64,
    /// `Σ (1/p − shift_inv_p)` over the non-NULL matching draws.
    pub sum_dinv_p: f64,
    /// `Σ (1/p − shift_inv_p)²` over the non-NULL matching draws.
    pub sum_dinv_p_sq: f64,
    /// `Σ (v/p − shift_vp)(1/p − shift_inv_p)` (shifted Hájek cross term).
    pub sum_dvp_dinv_p: f64,
    /// Smallest selection probability pushed (`+∞` when none).
    pub min_p: f64,
}

impl Default for WeightedMomentSketch {
    fn default() -> Self {
        WeightedMomentSketch::new()
    }
}

impl WeightedMomentSketch {
    /// A fresh, empty sketch.
    pub fn new() -> Self {
        WeightedMomentSketch {
            matched: 0,
            count: 0,
            sum_vp: 0.0,
            sum_inv_p: 0.0,
            shift_vp: 0.0,
            shift_inv_p: 0.0,
            sum_dvp: 0.0,
            sum_dvp_sq: 0.0,
            sum_dinv_p: 0.0,
            sum_dinv_p_sq: 0.0,
            sum_dvp_dinv_p: 0.0,
            min_p: f64::INFINITY,
        }
    }

    /// Record a matching draw with a non-NULL value and its single-draw
    /// selection probability.
    #[inline]
    pub fn push(&mut self, value: f64, probability: f64) {
        self.matched += 1;
        self.count += 1;
        let e = value / probability;
        let ip = 1.0 / probability;
        if self.count == 1 {
            // anchor the provisional means at the first expansion (its own
            // deltas below are then exactly zero)
            self.shift_vp = e;
            self.shift_inv_p = ip;
        }
        let d_e = e - self.shift_vp;
        let d_ip = ip - self.shift_inv_p;
        self.sum_vp += e;
        self.sum_inv_p += ip;
        self.sum_dvp += d_e;
        self.sum_dvp_sq += d_e * d_e;
        self.sum_dinv_p += d_ip;
        self.sum_dinv_p_sq += d_ip * d_ip;
        self.sum_dvp_dinv_p += d_e * d_ip;
        self.min_p = self.min_p.min(probability);
    }

    /// Record a matching draw whose aggregated value is NULL.
    #[inline]
    pub fn push_null(&mut self) {
        self.matched += 1;
    }

    /// The mean expansion `Σ(v/p) / count`, reconstructed from the shifted
    /// accumulators (zero when nothing was pushed).
    pub fn mean_vp(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.shift_vp + self.sum_dvp / self.count as f64
        }
    }

    /// The mean inverse probability `Σ(1/p) / count`, reconstructed from
    /// the shifted accumulators (zero when nothing was pushed).
    pub fn mean_inv_p(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.shift_inv_p + self.sum_dinv_p / self.count as f64
        }
    }

    /// The centred second moment `Σ(v/p − ē)²` of the pushed expansions,
    /// via the provisional-mean identity `Σd² − (Σd)²/m` (clamped at the
    /// rounding floor of zero).
    pub fn m2_vp(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_dvp_sq - self.sum_dvp * self.sum_dvp / self.count as f64).max(0.0)
        }
    }

    /// The centred second moment `Σ(1/p − q̄)²` of the pushed inverse
    /// probabilities (see [`WeightedMomentSketch::m2_vp`]).
    pub fn m2_inv_p(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_dinv_p_sq - self.sum_dinv_p * self.sum_dinv_p / self.count as f64).max(0.0)
        }
    }

    /// The centred co-moment `Σ(v/p − ē)(1/p − q̄)` (not clamped — a
    /// covariance is legitimately negative).
    pub fn c_vp_inv_p(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_dvp_dinv_p - self.sum_dvp * self.sum_dinv_p / self.count as f64
        }
    }

    /// Reject sketches fed degenerate probabilities (zero, negative,
    /// non-finite) or non-finite values — the checks the slice-based
    /// estimators perform per observation, run once after the tight loop.
    pub fn validate(&self) -> Result<()> {
        if self.count > 0 && !(self.min_p > 0.0 && self.min_p.is_finite()) {
            return Err(StatsError::invalid(
                "probability",
                "selection probabilities must be positive and finite",
            ));
        }
        for sum in [
            self.sum_vp,
            self.sum_inv_p,
            self.shift_vp,
            self.shift_inv_p,
            self.sum_dvp,
            self.sum_dvp_sq,
            self.sum_dinv_p,
            self.sum_dinv_p_sq,
            self.sum_dvp_dinv_p,
        ] {
            if !sum.is_finite() {
                return Err(StatsError::invalid(
                    "sketch",
                    "weighted accumulators overflowed or saw non-finite inputs",
                ));
            }
        }
        Ok(())
    }
}

/// Hansen–Hurwitz / Horvitz–Thompson style estimators for samples drawn with
/// probability proportional to an interest weight (the biased impressions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WeightedEstimator;

impl WeightedEstimator {
    /// Estimate the population total `Σ_pop y` from `n` weighted draws.
    ///
    /// The Hansen–Hurwitz estimator is `(1/n) Σ yᵢ/pᵢ`; its variance is
    /// estimated by the sample variance of the per-draw expansions.
    pub fn estimate_total(observations: &[WeightedObservation]) -> Result<Estimate> {
        Self::estimate_total_zero_extended(observations, observations.len())
    }

    /// [`WeightedEstimator::estimate_total`] when only the draws that
    /// matched a predicate are materialised: `draws` is the total number of
    /// draws and the missing `draws − observations.len()` observations are
    /// implicit zeros. A zero-valued draw contributes nothing to the
    /// expansion sum and is folded into the variance analytically, so
    /// skipping it is equivalent to materialising it — this is what lets
    /// the selection-based estimators walk only the selected rows instead
    /// of zero-padding over the whole impression.
    pub fn estimate_total_zero_extended(
        observations: &[WeightedObservation],
        draws: usize,
    ) -> Result<Estimate> {
        if observations.len() > draws {
            return Err(StatsError::invalid(
                "draws",
                "cannot be fewer than the materialised observations",
            ));
        }
        // Same fold, in the same order, as the weighted scan kernels — the
        // streamed and the selection-based paths must agree bit for bit.
        let mut sketch = WeightedMomentSketch::new();
        for o in observations {
            if !(o.probability > 0.0) || !o.probability.is_finite() {
                return Err(StatsError::invalid(
                    "probability",
                    "selection probabilities must be positive and finite",
                ));
            }
            sketch.push(o.value, o.probability);
        }
        Self::estimate_total_parts(
            draws,
            sketch.count,
            sketch.sum_vp,
            sketch.mean_vp(),
            sketch.m2_vp(),
        )
    }

    /// [`WeightedEstimator::estimate_total`] from streamed sufficient
    /// statistics: the total number of draws `n` (including the implicit
    /// zero-valued non-matching ones), the number of materialised (matching
    /// non-NULL) draws, their expansion sum `Σ v/p`, and the mean / centred
    /// second moment of the expansions (a sketch derives both from its
    /// shifted accumulators) — exactly what a fused weighted scan kernel
    /// accumulates in one pass.
    ///
    /// The variance combines the centred moment of the materialised draws
    /// with the `draws − matched` implicit zeros through Chan's pairwise
    /// identity, `M2 = M2ₘ + ēₘ²·m(n−m)/n`: every term is non-negative, so
    /// no cancellation-prone subtraction (and no clamping that could
    /// silently certify a zero-width interval) is involved.
    ///
    /// `sample_size` defaults to `draws`; callers that know how many draws
    /// actually matched their predicate (e.g. the impression estimators,
    /// where zero-extended non-matching draws only pin down the selectivity)
    /// should override it with the matched count so downstream intervals use
    /// honest degrees of freedom.
    pub fn estimate_total_parts(
        draws: usize,
        materialised: usize,
        sum_vp: f64,
        mean_vp: f64,
        m2_vp: f64,
    ) -> Result<Estimate> {
        if draws == 0 {
            return Err(StatsError::EmptyInput("weighted total estimate"));
        }
        if materialised > draws {
            return Err(StatsError::invalid(
                "draws",
                "cannot be fewer than the materialised observations",
            ));
        }
        for stat in [sum_vp, mean_vp, m2_vp] {
            if !stat.is_finite() {
                return Err(StatsError::invalid(
                    "sum_vp",
                    "expansion statistics must be finite",
                ));
            }
        }
        let n = draws as f64;
        let m = materialised as f64;
        // point estimate: the plain expansion-sum fold, same bits as the
        // kernels' sum_vp accumulator divided once
        let mean_exp = sum_vp / n;
        let var_exp = if draws > 1 {
            // Chan's identity: centred M2 of the materialised draws plus the
            // (n − m) implicit zeros, all terms non-negative
            let m2_all = m2_vp + mean_vp * mean_vp * (m * (n - m) / n);
            m2_all / (n - 1.0)
        } else {
            0.0
        };
        Ok(Estimate {
            value: mean_exp,
            standard_error: (var_exp / n).sqrt(),
            sample_size: draws,
        })
    }

    /// Estimate a population mean as the ratio of two weighted totals
    /// (total of `y` over total of 1), the standard Hájek estimator.
    ///
    /// Both totals are accumulated in a single pass over the observations —
    /// no parallel all-ones observation vector is materialised for the
    /// denominator.
    pub fn estimate_mean(observations: &[WeightedObservation]) -> Result<Estimate> {
        if observations.is_empty() {
            return Err(StatsError::EmptyInput("weighted mean estimate"));
        }
        // Same fold as WeightedMomentSketch::push (see estimate_total).
        let mut sketch = WeightedMomentSketch::new();
        for o in observations {
            if !(o.probability > 0.0) || !o.probability.is_finite() {
                return Err(StatsError::invalid(
                    "probability",
                    "selection probabilities must be positive and finite",
                ));
            }
            sketch.push(o.value, o.probability);
        }
        Self::estimate_mean_parts(
            sketch.count,
            sketch.sum_vp,
            sketch.sum_inv_p,
            sketch.mean_vp(),
            sketch.mean_inv_p(),
            sketch.m2_vp(),
            sketch.m2_inv_p(),
            sketch.c_vp_inv_p(),
        )
    }

    /// [`WeightedEstimator::estimate_mean`] from streamed sufficient
    /// statistics: the count of matching non-NULL draws, the two expansion
    /// sums, and the centred (Welford) moments of a
    /// [`WeightedMomentSketch`].
    ///
    /// The ratio `Σ(v/p) / Σ(1/p)` is the Hájek estimator; its standard
    /// error uses the first-order Taylor (delta-method) residual variance
    /// `Σ((v − r)/p)² / (m−1)`, computed from the **centred** moments via
    /// `Σ(e − r·q)² = C_ee − 2r·C_eq + r²·C_qq + m(ē − r·q̄)²` (with
    /// `e = v/p`, `q = 1/p`). The centred quantities are small where the
    /// raw uncentred sums are huge, so this expansion does not
    /// catastrophically cancel when values are near-constant — the residual
    /// comes out honestly tiny instead of being clamped from a large
    /// negative rounding artefact.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_mean_parts(
        count: usize,
        sum_vp: f64,
        sum_inv_p: f64,
        mean_vp: f64,
        mean_inv_p: f64,
        m2_vp: f64,
        m2_inv_p: f64,
        c_vp_inv_p: f64,
    ) -> Result<Estimate> {
        if count == 0 {
            return Err(StatsError::EmptyInput("weighted mean estimate"));
        }
        for stat in [
            sum_vp, sum_inv_p, mean_vp, mean_inv_p, m2_vp, m2_inv_p, c_vp_inv_p,
        ] {
            if !stat.is_finite() {
                return Err(StatsError::invalid(
                    "sums",
                    "expansion statistics must be finite",
                ));
            }
        }
        let n = count as f64;
        let numerator = sum_vp / n;
        let denominator = sum_inv_p / n;
        if denominator <= 0.0 {
            return Err(StatsError::invalid(
                "observations",
                "estimated population size is non-positive",
            ));
        }
        let ratio = numerator / denominator;
        let residual_var = if count > 1 {
            // centred delta-method expansion; the mean-offset term is a
            // rounding-sized exactness correction (ē ≈ r·q̄ by construction)
            let offset = mean_vp - ratio * mean_inv_p;
            let residual_sq =
                m2_vp - 2.0 * ratio * c_vp_inv_p + ratio * ratio * m2_inv_p + n * offset * offset;
            (residual_sq / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        let se = (residual_var / n).sqrt() / denominator;
        Ok(Estimate {
            value: ratio,
            standard_error: se,
            sample_size: count,
        })
    }

    /// Hansen–Hurwitz total straight from a streamed sketch over `draws`
    /// total draws, with degrees of freedom taken from the matched count.
    pub fn estimate_total_from_sketch(
        sketch: &WeightedMomentSketch,
        draws: usize,
    ) -> Result<Estimate> {
        sketch.validate()?;
        let mut est = Self::estimate_total_parts(
            draws,
            sketch.count,
            sketch.sum_vp,
            sketch.mean_vp(),
            sketch.m2_vp(),
        )?;
        if sketch.matched > 0 {
            est.sample_size = sketch.matched;
        }
        Ok(est)
    }

    /// Hájek mean straight from a streamed sketch.
    pub fn estimate_mean_from_sketch(sketch: &WeightedMomentSketch) -> Result<Estimate> {
        sketch.validate()?;
        Self::estimate_mean_parts(
            sketch.count,
            sketch.sum_vp,
            sketch.sum_inv_p,
            sketch.mean_vp(),
            sketch.mean_inv_p(),
            sketch.m2_vp(),
            sketch.m2_inv_p(),
            sketch.c_vp_inv_p(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn srs_estimator_validation() {
        assert!(SrsEstimator::new(10, 20).is_err());
        let e = SrsEstimator::new(100, 10).unwrap();
        assert!((e.fpc() - 0.9).abs() < 1e-12);
        let full = SrsEstimator::new(10, 10).unwrap();
        assert_eq!(full.fpc(), 0.0);
        let empty_pop = SrsEstimator::new(0, 0).unwrap();
        assert_eq!(empty_pop.fpc(), 0.0);
    }

    #[test]
    fn srs_count_estimate_scales_selectivity() {
        let e = SrsEstimator::new(1_000_000, 10_000).unwrap();
        let est = e.estimate_count(2_500).unwrap();
        assert!((est.value - 250_000.0).abs() < 1e-6);
        assert!(est.standard_error > 0.0);
        // matching everything or nothing has zero binomial variance
        assert_eq!(e.estimate_count(0).unwrap().standard_error, 0.0);
        assert_eq!(e.estimate_count(10_000).unwrap().standard_error, 0.0);
    }

    #[test]
    fn srs_count_estimate_errors() {
        let e = SrsEstimator::new(100, 0).unwrap();
        assert!(e.estimate_count(0).is_err());
        let e = SrsEstimator::new(100, 10).unwrap();
        assert!(e.estimate_count(11).is_err());
    }

    #[test]
    fn srs_count_full_sample_is_exact() {
        let e = SrsEstimator::new(500, 500).unwrap();
        let est = e.estimate_count(123).unwrap();
        assert!((est.value - 123.0).abs() < 1e-9);
        assert_eq!(est.standard_error, 0.0);
    }

    #[test]
    fn srs_sum_estimate() {
        // population of 100 tuples, sample of 10, 4 match with given values
        let e = SrsEstimator::new(100, 10).unwrap();
        let est = e.estimate_sum(&[5.0, 7.0, 3.0, 5.0]).unwrap();
        // zero-extended mean = 20/10 = 2 -> total 200
        assert!((est.value - 200.0).abs() < 1e-9);
        assert!(est.standard_error > 0.0);
        assert!(SrsEstimator::new(100, 0)
            .unwrap()
            .estimate_sum(&[])
            .is_err());
    }

    #[test]
    fn srs_avg_estimate() {
        let e = SrsEstimator::new(100, 10).unwrap();
        let est = e.estimate_avg(&[10.0, 20.0, 30.0]).unwrap();
        assert!((est.value - 20.0).abs() < 1e-9);
        assert!(est.standard_error > 0.0);
        assert!(e.estimate_avg(&[]).is_err());
        // single match: zero estimated variance
        assert_eq!(e.estimate_avg(&[42.0]).unwrap().standard_error, 0.0);
    }

    #[test]
    fn streamed_parts_match_slice_estimates_bitwise() {
        let e = SrsEstimator::new(100, 10).unwrap();
        let values = [5.0, 7.0, 3.0, 5.0];
        let from_slice = e.estimate_sum(&values).unwrap();
        let sum: f64 = values.iter().sum();
        let sum_sq: f64 = values.iter().map(|v| v * v).sum();
        let from_parts = e.estimate_sum_parts(values.len(), sum, sum_sq).unwrap();
        assert_eq!(from_slice, from_parts);

        let from_slice = e.estimate_avg(&values).unwrap();
        let mean = sum / values.len() as f64;
        let m2: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
        let from_parts = e.estimate_avg_parts(values.len(), mean, m2).unwrap();
        assert_eq!(from_slice, from_parts);
    }

    #[test]
    fn streamed_parts_validation() {
        let e = SrsEstimator::new(100, 10).unwrap();
        assert!(e.estimate_avg_parts(0, 0.0, 0.0).is_err());
        let empty = SrsEstimator::new(100, 0).unwrap();
        assert!(empty.estimate_sum_parts(0, 0.0, 0.0).is_err());
        // single value: zero variance
        assert_eq!(
            e.estimate_avg_parts(1, 42.0, 0.0).unwrap().standard_error,
            0.0
        );
    }

    #[test]
    fn weighted_total_uniform_weights_match_expansion() {
        // If all probabilities are equal (1/N), the HH estimator reduces to
        // N * sample mean.
        let big_n = 1000.0;
        let obs: Vec<WeightedObservation> = [2.0, 4.0, 6.0, 8.0]
            .iter()
            .map(|&v| WeightedObservation {
                value: v,
                probability: 1.0 / big_n,
            })
            .collect();
        let est = WeightedEstimator::estimate_total(&obs).unwrap();
        assert!((est.value - big_n * 5.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_total_validation() {
        assert!(WeightedEstimator::estimate_total(&[]).is_err());
        let bad = [WeightedObservation {
            value: 1.0,
            probability: 0.0,
        }];
        assert!(WeightedEstimator::estimate_total(&bad).is_err());
        let nan = [WeightedObservation {
            value: 1.0,
            probability: f64::NAN,
        }];
        assert!(WeightedEstimator::estimate_total(&nan).is_err());
    }

    #[test]
    fn weighted_mean_recovers_population_mean_under_bias() {
        // Population: two strata. Stratum A (values ~100) is sampled 4x more
        // often than stratum B (values ~10). The Hájek estimator should still
        // recover the overall mean because it divides by the estimated
        // population size.
        let mut rng = StdRng::seed_from_u64(99);
        let pop_a: Vec<f64> = (0..2000)
            .map(|_| 100.0 + rng.gen_range(-5.0..5.0))
            .collect();
        let pop_b: Vec<f64> = (0..8000).map(|_| 10.0 + rng.gen_range(-2.0..2.0)).collect();
        let true_mean = (pop_a.iter().sum::<f64>() + pop_b.iter().sum::<f64>()) / 10_000.0;

        // draw 2000 samples with pps weights: p(A-item) ∝ 4, p(B-item) ∝ 1
        let weight_a = 4.0;
        let weight_b = 1.0;
        let total_weight = weight_a * pop_a.len() as f64 + weight_b * pop_b.len() as f64;
        let mut obs = Vec::new();
        for _ in 0..2000 {
            let pick_a = rng.gen_bool(weight_a * pop_a.len() as f64 / total_weight);
            if pick_a {
                let v = pop_a[rng.gen_range(0..pop_a.len())];
                obs.push(WeightedObservation {
                    value: v,
                    probability: weight_a / total_weight,
                });
            } else {
                let v = pop_b[rng.gen_range(0..pop_b.len())];
                obs.push(WeightedObservation {
                    value: v,
                    probability: weight_b / total_weight,
                });
            }
        }
        let est = WeightedEstimator::estimate_mean(&obs).unwrap();
        let naive_mean = obs.iter().map(|o| o.value).sum::<f64>() / obs.len() as f64;
        // the naive (unweighted) mean is badly biased upwards
        assert!(naive_mean > true_mean * 1.5);
        // the weighted estimator lands close to the truth
        assert!(
            (est.value - true_mean).abs() / true_mean < 0.1,
            "estimate {} vs truth {}",
            est.value,
            true_mean
        );
    }

    #[test]
    fn weighted_mean_errors_on_empty() {
        assert!(WeightedEstimator::estimate_mean(&[]).is_err());
        assert!(
            WeightedEstimator::estimate_mean_parts(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0).is_err()
        );
    }

    fn obs(values: &[f64], probs: &[f64]) -> Vec<WeightedObservation> {
        values
            .iter()
            .zip(probs)
            .map(|(&value, &probability)| WeightedObservation { value, probability })
            .collect()
    }

    #[test]
    fn zero_extension_is_equivalent_to_materialised_zeros() {
        // padding with explicit zero-valued draws == passing `draws`: the
        // expansion sum (and thus the point estimate) is bit-identical; the
        // variance takes a different mathematically-equal route (materialised
        // zeros enter the Welford fold, skipped zeros fold in through Chan's
        // identity), so the standard error agrees to rounding.
        let padded = obs(&[5.0, 0.0, 7.0, 0.0, 0.0], &[0.01, 0.02, 0.005, 0.01, 0.04]);
        let skipped = obs(&[5.0, 7.0], &[0.01, 0.005]);
        let a = WeightedEstimator::estimate_total(&padded).unwrap();
        let b = WeightedEstimator::estimate_total_zero_extended(&skipped, 5).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.sample_size, b.sample_size);
        assert!(
            (a.standard_error - b.standard_error).abs() <= 1e-12 * (1.0 + a.standard_error.abs()),
            "padded se {} vs zero-extended se {}",
            a.standard_error,
            b.standard_error
        );
        // more observations than draws is rejected
        assert!(WeightedEstimator::estimate_total_zero_extended(&skipped, 1).is_err());
    }

    #[test]
    fn total_parts_match_slice_estimates_bitwise() {
        let o = obs(&[2.0, -4.0, 6.5], &[0.01, 0.003, 0.5]);
        let from_slice = WeightedEstimator::estimate_total(&o).unwrap();
        let mut sketch = WeightedMomentSketch::new();
        for w in &o {
            sketch.push(w.value, w.probability);
        }
        let from_parts = WeightedEstimator::estimate_total_parts(
            3,
            sketch.count,
            sketch.sum_vp,
            sketch.mean_vp(),
            sketch.m2_vp(),
        )
        .unwrap();
        assert_eq!(from_slice, from_parts);
        assert!(WeightedEstimator::estimate_total_parts(0, 0, 0.0, 0.0, 0.0).is_err());
        assert!(WeightedEstimator::estimate_total_parts(2, 1, f64::NAN, 1.0, 0.0).is_err());
        // more materialised draws than total draws is rejected
        assert!(WeightedEstimator::estimate_total_parts(1, 2, 1.0, 0.5, 0.0).is_err());
    }

    #[test]
    fn near_constant_expansions_keep_a_positive_standard_error() {
        // 10k draws, all matching, probabilities almost (but not exactly)
        // uniform: the expansions are nearly equal, so a naive
        // `Σe² − n·ē²` fold cancels catastrophically (clamping to 0 and
        // falsely certifying a zero-width interval). The centred Welford
        // accumulation must keep the tiny-but-real variance positive.
        let n = 10_000usize;
        let o: Vec<WeightedObservation> = (0..n)
            .map(|i| WeightedObservation {
                value: 1.0,
                probability: 1e-7 * (1.0 + 1e-9 * (i % 7) as f64),
            })
            .collect();
        let est = WeightedEstimator::estimate_total(&o).unwrap();
        // two-pass ground truth over the same expansions
        let expansions: Vec<f64> = o.iter().map(|w| w.value / w.probability).collect();
        let mean = expansions.iter().sum::<f64>() / n as f64;
        let var = expansions.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let truth = (var / n as f64).sqrt();
        assert!(truth > 0.0, "the constructed variance is genuinely nonzero");
        assert!(
            est.standard_error > 0.0,
            "streamed SE must not collapse to zero"
        );
        assert!(
            (est.standard_error - truth).abs() <= 1e-6 * truth,
            "streamed SE {} vs two-pass truth {}",
            est.standard_error,
            truth
        );
    }

    #[test]
    fn mean_parts_match_slice_estimates_bitwise() {
        let o = obs(&[12.0, 9.5, 30.0, 4.0], &[0.01, 0.02, 0.001, 0.04]);
        let from_slice = WeightedEstimator::estimate_mean(&o).unwrap();
        let mut sketch = WeightedMomentSketch::new();
        for w in &o {
            sketch.push(w.value, w.probability);
        }
        let from_sketch = WeightedEstimator::estimate_mean_from_sketch(&sketch).unwrap();
        assert_eq!(from_slice, from_sketch);
    }

    #[test]
    fn mean_variance_matches_two_pass_residuals() {
        // The expanded delta-method variance must agree with the literal
        // Σ((v−r)/p)² residual fold it replaces.
        let o = obs(
            &[12.0, 9.5, 30.0, 4.0, 18.0],
            &[0.01, 0.02, 0.001, 0.04, 0.02],
        );
        let est = WeightedEstimator::estimate_mean(&o).unwrap();
        let n = o.len() as f64;
        let denominator = o.iter().map(|w| 1.0 / w.probability).sum::<f64>() / n;
        let residual_var = o
            .iter()
            .map(|w| ((w.value - est.value) / w.probability).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        let se = (residual_var / n).sqrt() / denominator;
        assert!(
            (est.standard_error - se).abs() <= 1e-9 * (1.0 + se.abs()),
            "expanded {} vs two-pass {}",
            est.standard_error,
            se
        );
    }

    #[test]
    fn sketch_accumulates_and_validates() {
        let mut sketch = WeightedMomentSketch::new();
        assert_eq!(sketch, WeightedMomentSketch::default());
        sketch.push(10.0, 0.01);
        sketch.push_null();
        sketch.push(4.0, 0.02);
        assert_eq!(sketch.matched, 3);
        assert_eq!(sketch.count, 2);
        assert!((sketch.sum_vp - (1000.0 + 200.0)).abs() < 1e-9);
        assert!((sketch.sum_inv_p - 150.0).abs() < 1e-9);
        assert_eq!(sketch.min_p, 0.01);
        assert!(sketch.validate().is_ok());

        let mut bad = WeightedMomentSketch::new();
        bad.push(1.0, 0.0);
        assert!(bad.validate().is_err());
        let mut negative = WeightedMomentSketch::new();
        negative.push(1.0, -0.5);
        assert!(negative.validate().is_err());
        // NULL-only sketches are valid (nothing was expanded)
        let mut nulls = WeightedMomentSketch::new();
        nulls.push_null();
        assert!(nulls.validate().is_ok());
    }

    #[test]
    fn total_from_sketch_uses_matched_degrees_of_freedom() {
        let mut sketch = WeightedMomentSketch::new();
        sketch.push(1.0, 0.001);
        sketch.push(1.0, 0.002);
        let est = WeightedEstimator::estimate_total_from_sketch(&sketch, 1_000).unwrap();
        assert_eq!(est.sample_size, 2);
        let oracle = WeightedEstimator::estimate_total_zero_extended(
            &obs(&[1.0, 1.0], &[0.001, 0.002]),
            1_000,
        )
        .unwrap();
        assert_eq!(est.value.to_bits(), oracle.value.to_bits());
        assert_eq!(
            est.standard_error.to_bits(),
            oracle.standard_error.to_bits()
        );
        // an empty sketch over zero draws errors like the slice path
        let empty = WeightedMomentSketch::new();
        assert!(WeightedEstimator::estimate_total_from_sketch(&empty, 0).is_err());
        assert!(WeightedEstimator::estimate_mean_from_sketch(&empty).is_err());
    }

    #[test]
    fn exact_estimate_constructor() {
        let e = Estimate::exact(42.0, 7);
        assert_eq!(e.value, 42.0);
        assert_eq!(e.standard_error, 0.0);
        assert_eq!(e.sample_size, 7);
    }

    proptest! {
        #[test]
        fn srs_count_value_bounded_by_population(
            pop in 1u64..100_000,
            frac in 0.01f64..1.0,
            match_frac in 0.0f64..1.0,
        ) {
            let n = ((pop as f64 * frac).ceil() as u64).clamp(1, pop);
            let e = SrsEstimator::new(pop, n).unwrap();
            let matches = ((n as f64) * match_frac).floor() as usize;
            let est = e.estimate_count(matches).unwrap();
            prop_assert!(est.value >= -1e-9);
            prop_assert!(est.value <= pop as f64 + 1e-9);
            prop_assert!(est.standard_error >= 0.0);
        }

        #[test]
        fn weighted_total_positive_for_positive_values(
            values in proptest::collection::vec(0.1f64..100.0, 1..50),
        ) {
            let n_pop = 1000.0;
            let obs: Vec<WeightedObservation> = values.iter()
                .map(|&v| WeightedObservation { value: v, probability: 1.0 / n_pop })
                .collect();
            let est = WeightedEstimator::estimate_total(&obs).unwrap();
            prop_assert!(est.value > 0.0);
            prop_assert!(est.standard_error >= 0.0);
        }
    }
}
