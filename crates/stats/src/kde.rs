//! Kernel density estimation: the full estimator f̂ and the paper's binned
//! estimator f̆ (Section 4).
//!
//! Given the `N` predicate-set values `x₁…x_N`, the full estimator is
//!
//! ```text
//! f̂(x) = N⁻¹ Σᵢ K_h(x − xᵢ),       K_h(·) = h⁻¹ K(·/h)
//! ```
//!
//! Evaluating f̂ on every newly ingested tuple would require re-reading all
//! `N` observed predicate values, so SciBORQ replaces it with a constant-time
//! estimator driven by the β-bin equi-width histogram of Figure 5:
//!
//! ```text
//! f̆(x) = 1/(N·w) Σᵢ cᵢ · φ((x − mᵢ)/w)
//! ```
//!
//! where `cᵢ`/`mᵢ` are the per-bin count and mean and the bandwidth is fixed
//! to the bin width `w`. Both estimators integrate to one, and f̆ tracks f̂
//! closely (Figure 4) while needing only `β ≪ N` kernel evaluations.

use crate::error::{Result, StatsError};
use crate::histogram::EquiWidthHistogram;
use crate::kernel::Kernel;
use serde::{Deserialize, Serialize};

/// The full kernel density estimator f̂ over an explicit list of observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullKde {
    observations: Vec<f64>,
    bandwidth: f64,
    kernel: Kernel,
}

impl FullKde {
    /// Create a full KDE from the observed predicate values.
    pub fn new(observations: Vec<f64>, bandwidth: f64, kernel: Kernel) -> Result<Self> {
        if observations.is_empty() {
            return Err(StatsError::EmptyInput("FullKde observations"));
        }
        if !(bandwidth > 0.0) || !bandwidth.is_finite() {
            return Err(StatsError::invalid(
                "bandwidth",
                "must be positive and finite",
            ));
        }
        Ok(FullKde {
            observations,
            bandwidth,
            kernel,
        })
    }

    /// Number of observations `N`.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when there are no observations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The bandwidth `h`.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluate `f̂(x)`. Cost is O(N).
    pub fn density(&self, x: f64) -> f64 {
        let n = self.observations.len() as f64;
        let sum: f64 = self
            .observations
            .iter()
            .map(|&xi| self.kernel.evaluate_scaled(x - xi, self.bandwidth))
            .sum();
        sum / n
    }

    /// Evaluate the density on a regular grid of `points` between `lo` and
    /// `hi` (inclusive). Returns (x, f̂(x)) pairs.
    pub fn density_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        grid(lo, hi, points).map(|x| (x, self.density(x))).collect()
    }
}

/// The paper's binned density estimator f̆, driven purely by histogram
/// statistics.
///
/// Because it stores only `β` (count, mean) pairs it can be embedded into the
/// load pipeline and evaluated for every ingested tuple in O(β) — constant
/// with respect to the predicate-set size `N`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedKde {
    /// (count, mean) pairs for the non-empty bins.
    bins: Vec<(f64, f64)>,
    /// Total number of observed predicate values `N`.
    total: f64,
    /// Bin width `w`, also used as the bandwidth.
    width: f64,
    kernel: Kernel,
}

impl BinnedKde {
    /// Build the estimator from a maintained predicate-set histogram.
    pub fn from_histogram(histogram: &EquiWidthHistogram) -> Result<Self> {
        Self::from_histogram_with_kernel(histogram, Kernel::Gaussian)
    }

    /// Build the estimator with an explicit kernel choice (ablation).
    pub fn from_histogram_with_kernel(
        histogram: &EquiWidthHistogram,
        kernel: Kernel,
    ) -> Result<Self> {
        if histogram.total() == 0 {
            return Err(StatsError::EmptyInput("BinnedKde histogram"));
        }
        let bins = histogram
            .bins()
            .iter()
            .filter(|b| b.count > 0)
            .map(|b| (b.count as f64, b.mean))
            .collect();
        Ok(BinnedKde {
            bins,
            total: histogram.total() as f64,
            width: histogram.width(),
            kernel,
        })
    }

    /// Number of non-empty bins the estimator sums over.
    pub fn active_bins(&self) -> usize {
        self.bins.len()
    }

    /// The total number of predicate values `N` the estimator represents.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// The bandwidth (= histogram bin width `w`).
    pub fn bandwidth(&self) -> f64 {
        self.width
    }

    /// Evaluate `f̆(x)`. Cost is O(β).
    ///
    /// `f̆(x) = 1/(N·w) Σᵢ cᵢ φ((x − mᵢ)/w)`
    pub fn density(&self, x: f64) -> f64 {
        let sum: f64 = self
            .bins
            .iter()
            .map(|&(count, mean)| count * self.kernel.evaluate((x - mean) / self.width))
            .sum();
        sum / (self.total * self.width)
    }

    /// The estimated *interest weight* of a tuple value: `f̆(x) · N`.
    ///
    /// This is the quantity the biased reservoir algorithm of Figure 6 uses:
    /// the acceptance probability of a tuple `t` is
    /// `P(accept t) = f̆(t) · N · n / cnt`.
    pub fn interest_weight(&self, x: f64) -> f64 {
        self.density(x) * self.total
    }

    /// Evaluate the density on a regular grid (for figure reproduction).
    pub fn density_grid(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        grid(lo, hi, points).map(|x| (x, self.density(x))).collect()
    }
}

fn grid(lo: f64, hi: f64, points: usize) -> impl Iterator<Item = f64> {
    let steps = points.max(2);
    let dx = (hi - lo) / (steps - 1) as f64;
    (0..steps).map(move |i| lo + i as f64 * dx)
}

/// Numerically integrate a density function over `[lo, hi]` with the
/// trapezoidal rule (used by tests and the Figure 4 experiment to verify that
/// the estimators integrate to ≈ 1).
pub fn integrate_density<F: Fn(f64) -> f64>(f: F, lo: f64, hi: f64, steps: usize) -> f64 {
    let steps = steps.max(2);
    let dx = (hi - lo) / steps as f64;
    let mut sum = 0.0;
    for i in 0..=steps {
        let x = lo + i as f64 * dx;
        let w = if i == 0 || i == steps { 0.5 } else { 1.0 };
        sum += w * f(x);
    }
    sum * dx
}

/// Mean absolute deviation between two density estimates evaluated on a
/// shared grid. Used to quantify how closely f̆ tracks f̂ (Figure 4) and how
/// far the over/under-smoothed variants stray.
pub fn mean_absolute_deviation<F1, F2>(f1: F1, f2: F2, lo: f64, hi: f64, points: usize) -> f64
where
    F1: Fn(f64) -> f64,
    F2: Fn(f64) -> f64,
{
    let pts: Vec<f64> = grid(lo, hi, points).collect();
    let total: f64 = pts.iter().map(|&x| (f1(x) - f2(x)).abs()).sum();
    total / pts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth::silverman_bandwidth;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bimodal_sample(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let center = if rng.gen_bool(0.6) { 160.0 } else { 210.0 };
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                center + 8.0 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn full_kde_construction_validates() {
        assert!(FullKde::new(vec![], 1.0, Kernel::Gaussian).is_err());
        assert!(FullKde::new(vec![1.0], 0.0, Kernel::Gaussian).is_err());
        assert!(FullKde::new(vec![1.0], f64::NAN, Kernel::Gaussian).is_err());
        let kde = FullKde::new(vec![1.0, 2.0], 0.5, Kernel::Gaussian).unwrap();
        assert_eq!(kde.len(), 2);
        assert!(!kde.is_empty());
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    fn full_kde_single_point_peaks_at_observation() {
        let kde = FullKde::new(vec![5.0], 1.0, Kernel::Gaussian).unwrap();
        assert!(kde.density(5.0) > kde.density(6.0));
        assert!(kde.density(5.0) > kde.density(4.0));
        // peak height = K(0)/h
        assert!((kde.density(5.0) - crate::kernel::INV_SQRT_2PI).abs() < 1e-12);
    }

    #[test]
    fn full_kde_integrates_to_one() {
        let data = bimodal_sample(200, 1);
        let h = silverman_bandwidth(&data).unwrap();
        let kde = FullKde::new(data, h, Kernel::Gaussian).unwrap();
        let integral = integrate_density(|x| kde.density(x), 50.0, 320.0, 4000);
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn binned_kde_requires_observations() {
        let h = EquiWidthHistogram::new(0.0, 1.0, 4).unwrap();
        assert!(BinnedKde::from_histogram(&h).is_err());
    }

    #[test]
    fn binned_kde_integrates_to_one() {
        // This is the ∫f̆(x) = 1 derivation from Section 4 of the paper.
        let data = bimodal_sample(400, 2);
        let mut hist = EquiWidthHistogram::new(100.0, 260.0, 24).unwrap();
        hist.observe_all(&data);
        let kde = BinnedKde::from_histogram(&hist).unwrap();
        let integral = integrate_density(|x| kde.density(x), 0.0, 400.0, 8000);
        assert!((integral - 1.0).abs() < 0.01, "integral = {integral}");
    }

    #[test]
    fn binned_kde_tracks_full_kde() {
        // Figure 4's headline claim: f̆ is "almost identical" to f̂ with a
        // carefully chosen bandwidth, while over/undersmoothing distorts it.
        let data = bimodal_sample(400, 3);
        let h = silverman_bandwidth(&data).unwrap();
        let full = FullKde::new(data.clone(), h, Kernel::Gaussian).unwrap();
        let over = FullKde::new(data.clone(), h * 5.0, Kernel::Gaussian).unwrap();
        let mut hist = EquiWidthHistogram::new(120.0, 250.0, 24).unwrap();
        hist.observe_all(&data);
        let binned = BinnedKde::from_histogram(&hist).unwrap();

        let d_binned = mean_absolute_deviation(
            |x| full.density(x),
            |x| binned.density(x),
            120.0,
            250.0,
            200,
        );
        let d_over =
            mean_absolute_deviation(|x| full.density(x), |x| over.density(x), 120.0, 250.0, 200);
        assert!(
            d_binned < d_over,
            "binned deviation {d_binned} should beat oversmoothed {d_over}"
        );
        // and it should be small in absolute terms relative to peak density ~0.03
        assert!(d_binned < 0.01, "d_binned = {d_binned}");
    }

    #[test]
    fn binned_kde_density_higher_near_focal_points() {
        let data = bimodal_sample(400, 4);
        let mut hist = EquiWidthHistogram::new(120.0, 250.0, 24).unwrap();
        hist.observe_all(&data);
        let kde = BinnedKde::from_histogram(&hist).unwrap();
        // 160 and 210 are the focal points; 185 is the gap between them
        assert!(kde.density(160.0) > kde.density(185.0));
        assert!(kde.density(210.0) > kde.density(185.0));
        // far away from everything the density is essentially zero
        assert!(kde.density(400.0) < 1e-6);
    }

    #[test]
    fn interest_weight_is_density_times_n() {
        let data = bimodal_sample(100, 5);
        let mut hist = EquiWidthHistogram::new(120.0, 250.0, 16).unwrap();
        hist.observe_all(&data);
        let kde = BinnedKde::from_histogram(&hist).unwrap();
        let x = 161.0;
        assert!((kde.interest_weight(x) - kde.density(x) * 100.0).abs() < 1e-9);
        assert_eq!(kde.total(), 100.0);
    }

    #[test]
    fn binned_kde_bandwidth_equals_bin_width() {
        let mut hist = EquiWidthHistogram::new(0.0, 10.0, 5).unwrap();
        hist.observe_all(&[1.0, 2.0, 3.0]);
        let kde = BinnedKde::from_histogram(&hist).unwrap();
        assert!((kde.bandwidth() - 2.0).abs() < 1e-12);
        assert_eq!(kde.active_bins(), 2);
    }

    #[test]
    fn density_grid_shapes() {
        let kde = FullKde::new(vec![0.0, 1.0], 0.5, Kernel::Gaussian).unwrap();
        let g = kde.density_grid(-1.0, 2.0, 7);
        assert_eq!(g.len(), 7);
        assert_eq!(g[0].0, -1.0);
        assert!((g[6].0 - 2.0).abs() < 1e-12);
        let mut hist = EquiWidthHistogram::new(0.0, 1.0, 2).unwrap();
        hist.observe(0.5);
        let b = BinnedKde::from_histogram(&hist).unwrap();
        assert_eq!(b.density_grid(0.0, 1.0, 3).len(), 3);
    }

    #[test]
    fn integrate_density_of_constant() {
        let v = integrate_density(|_| 2.0, 0.0, 3.0, 300);
        assert!((v - 6.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn full_kde_density_non_negative(
            data in proptest::collection::vec(-100.0f64..100.0, 1..50),
            x in -200.0f64..200.0,
        ) {
            let kde = FullKde::new(data, 1.0, Kernel::Gaussian).unwrap();
            prop_assert!(kde.density(x) >= 0.0);
        }

        #[test]
        fn binned_kde_density_non_negative(
            data in proptest::collection::vec(-100.0f64..100.0, 1..100),
            x in -200.0f64..200.0,
        ) {
            let mut hist = EquiWidthHistogram::new(-100.0, 100.0, 16).unwrap();
            hist.observe_all(&data);
            let kde = BinnedKde::from_histogram(&hist).unwrap();
            prop_assert!(kde.density(x) >= 0.0);
            prop_assert!(kde.interest_weight(x) >= 0.0);
        }

        #[test]
        fn binned_kde_integral_close_to_one(
            data in proptest::collection::vec(-50.0f64..50.0, 10..200),
        ) {
            let mut hist = EquiWidthHistogram::new(-50.0, 50.0, 20).unwrap();
            hist.observe_all(&data);
            let kde = BinnedKde::from_histogram(&hist).unwrap();
            let integral = integrate_density(|x| kde.density(x), -120.0, 120.0, 2000);
            prop_assert!((integral - 1.0).abs() < 0.02, "integral = {}", integral);
        }
    }
}
