//! Bandwidth selection for kernel density estimation.
//!
//! The paper stresses that choosing the bandwidth `h` is hard (citing Jones,
//! Marron & Sheather): a large `h` oversmooths and a small `h` undersmooths
//! the density (Figure 4). This module implements the classical plug-in rules
//! (Silverman's rule of thumb, Scott's rule) plus explicit over/undersmoothing
//! factors used by the Figure 4 reproduction, and the paper's own resolution:
//! the binned estimator f̆ always uses `h = w`, the histogram bin width.

use crate::error::{Result, StatsError};
use crate::moments::RunningMoments;
use serde::{Deserialize, Serialize};

/// The plug-in rules a [`BandwidthRule::Scaled`] variant can scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseRule {
    /// Silverman's rule of thumb.
    Silverman,
    /// Scott's rule.
    Scott,
}

/// The bandwidth-selection rules supported by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BandwidthRule {
    /// Silverman's rule of thumb: `h = 0.9 · min(σ̂, IQR/1.34) · n^{-1/5}`.
    Silverman,
    /// Scott's rule: `h = 1.06 · σ̂ · n^{-1/5}`.
    Scott,
    /// A fixed, user-provided bandwidth.
    Fixed(f64),
    /// A plug-in rule scaled by a constant factor (used to produce the
    /// deliberately over/under-smoothed curves of Figure 4).
    Scaled {
        /// The base rule.
        base: BaseRule,
        /// Multiplicative factor applied to the base rule's bandwidth.
        factor: f64,
    },
}

/// Compute the interquartile range of a sample.
///
/// Uses the nearest-rank method; returns 0 for samples of fewer than 2
/// elements.
pub fn interquartile_range(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.len() < 2 {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let q = |p: f64| -> f64 {
        let rank = p * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    q(0.75) - q(0.25)
}

/// Silverman's rule-of-thumb bandwidth.
pub fn silverman_bandwidth(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput("silverman_bandwidth"));
    }
    let moments: RunningMoments = values.iter().copied().collect();
    let sigma = moments.std_dev_sample();
    let iqr = interquartile_range(values);
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let n = values.len() as f64;
    let h = 0.9 * spread * n.powf(-0.2);
    if h > 0.0 {
        Ok(h)
    } else {
        // Degenerate sample (all values equal): fall back to a tiny positive
        // bandwidth so the KDE stays well defined.
        Ok(1e-6_f64.max(values[0].abs() * 1e-6))
    }
}

/// Scott's rule bandwidth.
pub fn scott_bandwidth(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput("scott_bandwidth"));
    }
    let moments: RunningMoments = values.iter().copied().collect();
    let sigma = moments.std_dev_sample();
    let n = values.len() as f64;
    let h = 1.06 * sigma * n.powf(-0.2);
    if h > 0.0 {
        Ok(h)
    } else {
        Ok(1e-6_f64.max(values[0].abs() * 1e-6))
    }
}

impl BandwidthRule {
    /// Compute the bandwidth for the given sample of predicate values.
    pub fn bandwidth(&self, values: &[f64]) -> Result<f64> {
        match self {
            BandwidthRule::Silverman => silverman_bandwidth(values),
            BandwidthRule::Scott => scott_bandwidth(values),
            BandwidthRule::Fixed(h) => {
                if *h > 0.0 && h.is_finite() {
                    Ok(*h)
                } else {
                    Err(StatsError::invalid(
                        "bandwidth",
                        "must be positive and finite",
                    ))
                }
            }
            BandwidthRule::Scaled { base, factor } => {
                if *factor <= 0.0 || !factor.is_finite() {
                    return Err(StatsError::invalid("factor", "must be positive and finite"));
                }
                let base_h = match base {
                    BaseRule::Silverman => silverman_bandwidth(values)?,
                    BaseRule::Scott => scott_bandwidth(values)?,
                };
                Ok(base_h * factor)
            }
        }
    }
}

/// The oversmoothing factor used to reproduce the green curves of Figure 4.
pub const OVERSMOOTH_FACTOR: f64 = 5.0;
/// The undersmoothing factor used to reproduce the blue curves of Figure 4.
pub const UNDERSMOOTH_FACTOR: f64 = 0.2;

/// A convenient "carefully chosen" bandwidth (red curve of Figure 4):
/// Silverman's rule.
pub fn reference_bandwidth(values: &[f64]) -> Result<f64> {
    silverman_bandwidth(values)
}

/// The deliberately oversmoothed bandwidth (green curve of Figure 4).
pub fn oversmoothed_bandwidth(values: &[f64]) -> Result<f64> {
    Ok(silverman_bandwidth(values)? * OVERSMOOTH_FACTOR)
}

/// The deliberately undersmoothed bandwidth (blue curve of Figure 4).
pub fn undersmoothed_bandwidth(values: &[f64]) -> Result<f64> {
    Ok(silverman_bandwidth(values)? * UNDERSMOOTH_FACTOR)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn normal_sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        // Box-Muller from a seeded PRNG so the tests are deterministic.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn iqr_of_known_sample() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let iqr = interquartile_range(&values);
        assert!((iqr - 4.0).abs() < 1e-9);
        assert_eq!(interquartile_range(&[1.0]), 0.0);
        assert_eq!(interquartile_range(&[]), 0.0);
    }

    #[test]
    fn silverman_matches_formula_for_normal_data() {
        let data = normal_sample(400, 0.0, 2.0, 7);
        let h = silverman_bandwidth(&data).unwrap();
        // For n=400, sd≈2: h ≈ 0.9*2*400^-0.2 ≈ 0.54; allow generous slack
        assert!(h > 0.3 && h < 0.9, "h = {h}");
    }

    #[test]
    fn scott_larger_than_silverman_for_normal_data() {
        let data = normal_sample(400, 10.0, 1.0, 3);
        let s = silverman_bandwidth(&data).unwrap();
        let c = scott_bandwidth(&data).unwrap();
        assert!(c > s);
    }

    #[test]
    fn bandwidth_on_empty_sample_errors() {
        assert!(silverman_bandwidth(&[]).is_err());
        assert!(scott_bandwidth(&[]).is_err());
        assert!(BandwidthRule::Silverman.bandwidth(&[]).is_err());
    }

    #[test]
    fn degenerate_sample_gets_positive_bandwidth() {
        let data = vec![5.0; 50];
        assert!(silverman_bandwidth(&data).unwrap() > 0.0);
        assert!(scott_bandwidth(&data).unwrap() > 0.0);
    }

    #[test]
    fn fixed_rule_validates() {
        assert_eq!(BandwidthRule::Fixed(0.5).bandwidth(&[1.0]).unwrap(), 0.5);
        assert!(BandwidthRule::Fixed(0.0).bandwidth(&[1.0]).is_err());
        assert!(BandwidthRule::Fixed(-1.0).bandwidth(&[1.0]).is_err());
        assert!(BandwidthRule::Fixed(f64::NAN).bandwidth(&[1.0]).is_err());
    }

    #[test]
    fn scaled_rule_multiplies() {
        let data = normal_sample(200, 0.0, 1.0, 5);
        let base = silverman_bandwidth(&data).unwrap();
        let rule = BandwidthRule::Scaled {
            base: BaseRule::Silverman,
            factor: 3.0,
        };
        assert!((rule.bandwidth(&data).unwrap() - 3.0 * base).abs() < 1e-12);
        let scott = BandwidthRule::Scaled {
            base: BaseRule::Scott,
            factor: 1.0,
        };
        assert!((scott.bandwidth(&data).unwrap() - scott_bandwidth(&data).unwrap()).abs() < 1e-12);
        let bad = BandwidthRule::Scaled {
            base: BaseRule::Silverman,
            factor: 0.0,
        };
        assert!(bad.bandwidth(&data).is_err());
    }

    #[test]
    fn over_and_under_smoothing_bracket_reference() {
        let data = normal_sample(400, 180.0, 15.0, 11);
        let h = reference_bandwidth(&data).unwrap();
        let over = oversmoothed_bandwidth(&data).unwrap();
        let under = undersmoothed_bandwidth(&data).unwrap();
        assert!(over > h);
        assert!(under < h);
        assert!((over / h - OVERSMOOTH_FACTOR).abs() < 1e-9);
        assert!((under / h - UNDERSMOOTH_FACTOR).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn bandwidth_always_positive(values in proptest::collection::vec(-1e3f64..1e3, 2..200)) {
            prop_assert!(silverman_bandwidth(&values).unwrap() > 0.0);
            prop_assert!(scott_bandwidth(&values).unwrap() > 0.0);
        }

        #[test]
        fn bandwidth_shrinks_with_sample_size(seed in 0u64..50) {
            let small = normal_sample(50, 0.0, 1.0, seed);
            let large = normal_sample(5000, 0.0, 1.0, seed);
            let hs = silverman_bandwidth(&small).unwrap();
            let hl = silverman_bandwidth(&large).unwrap();
            // n^{-1/5} scaling: larger samples should not need a larger bandwidth
            prop_assert!(hl < hs * 1.2, "hs={hs} hl={hl}");
        }

        #[test]
        fn iqr_non_negative(values in proptest::collection::vec(-1e3f64..1e3, 0..100)) {
            prop_assert!(interquartile_range(&values) >= 0.0);
        }
    }
}
