//! Typed column vectors with null bitmaps.
//!
//! Each column stores its values densely in a `Vec` of the native type plus a
//! validity bitmap. This mirrors the layout of read-optimised column stores
//! (MonetDB BATs, Arrow arrays) at the level of fidelity the SciBORQ
//! experiments need: sequential scans, random access by row id and cheap
//! appends during incremental loads.

use crate::error::{ColumnarError, Result};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// A validity bitmap tracking which rows are non-NULL.
///
/// The bitmap is stored as packed 64-bit words. An absent bitmap (all-valid)
/// is represented by the owning column keeping `null_count == 0`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Create an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a bitmap of `len` bits, all set to `valid`.
    pub fn with_len(len: usize, valid: bool) -> Self {
        let word = if valid { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![word; len.div_ceil(64)],
            len,
        };
        bm.mask_tail();
        bm
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of bits in the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a bit.
    pub fn push(&mut self, valid: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if valid {
            let word = self.len / 64;
            self.words[word] |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Get bit `idx`; panics if out of bounds.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bitmap index out of bounds");
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Set bit `idx` to `valid`.
    pub fn set(&mut self, idx: usize, valid: bool) {
        assert!(idx < self.len, "bitmap index out of bounds");
        let word = idx / 64;
        let bit = idx % 64;
        if valid {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// Number of set (valid) bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A typed column of values.
///
/// Nulls are represented by a sentinel in the value vector plus a cleared bit
/// in the validity bitmap; the sentinel never escapes through the public API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integer column.
    Int64 {
        /// Dense values (NULL slots hold 0).
        values: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit float column.
    Float64 {
        /// Dense values (NULL slots hold 0.0).
        values: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Boolean column.
    Bool {
        /// Dense values (NULL slots hold `false`).
        values: Vec<bool>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// UTF-8 string column.
    Utf8 {
        /// Dense values (NULL slots hold the empty string).
        values: Vec<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64 {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Float64 => Column::Float64 {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Bool => Column::Bool {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Utf8 => Column::Utf8 {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
        }
    }

    /// Create an empty column with pre-reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64 {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
            DataType::Float64 => Column::Float64 {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
            DataType::Bool => Column::Bool {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
            DataType::Utf8 => Column::Utf8 {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
        }
    }

    /// Build an Int64 column from non-null values.
    pub fn from_i64(values: Vec<i64>) -> Self {
        let validity = Bitmap::with_len(values.len(), true);
        Column::Int64 { values, validity }
    }

    /// Build a Float64 column from non-null values.
    pub fn from_f64(values: Vec<f64>) -> Self {
        let validity = Bitmap::with_len(values.len(), true);
        Column::Float64 { values, validity }
    }

    /// Build a Bool column from non-null values.
    pub fn from_bool(values: Vec<bool>) -> Self {
        let validity = Bitmap::with_len(values.len(), true);
        Column::Bool { values, validity }
    }

    /// Build a Utf8 column from non-null values.
    pub fn from_strings<I: IntoIterator<Item = S>, S: Into<String>>(values: I) -> Self {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        let validity = Bitmap::with_len(values.len(), true);
        Column::Utf8 { values, validity }
    }

    /// The data type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Bool { .. } => DataType::Bool,
            Column::Utf8 { .. } => DataType::Utf8,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Utf8 { values, .. } => values.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.len() - self.validity().count_set()
    }

    /// The validity bitmap (cleared bits are NULL rows).
    ///
    /// The scan kernels read this directly; use [`Column::validity_ref`] to
    /// get `None` for all-valid columns so kernels can skip the bitmap test.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Int64 { validity, .. } => validity,
            Column::Float64 { validity, .. } => validity,
            Column::Bool { validity, .. } => validity,
            Column::Utf8 { validity, .. } => validity,
        }
    }

    /// The validity bitmap, or `None` when every row is valid — the form the
    /// scan kernels consume (an absent bitmap lets the tight loops skip the
    /// per-row validity test entirely).
    pub fn validity_ref(&self) -> Option<&Bitmap> {
        if self.null_count() == 0 {
            None
        } else {
            Some(self.validity())
        }
    }

    /// True when row `idx` is NULL.
    pub fn is_null(&self, idx: usize) -> bool {
        !self.validity().get(idx)
    }

    /// Append a dynamically typed value.
    ///
    /// Returns a [`ColumnarError::TypeMismatch`] if the value's type does not
    /// match the column type (NULL is accepted by every column).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (Column::Int64 { values, validity }, Value::Int64(v)) => {
                values.push(*v);
                validity.push(true);
                Ok(())
            }
            (Column::Int64 { values, validity }, Value::Null) => {
                values.push(0);
                validity.push(false);
                Ok(())
            }
            (Column::Float64 { values, validity }, Value::Float64(v)) => {
                values.push(*v);
                validity.push(true);
                Ok(())
            }
            // Integers are silently widened into float columns: scientific
            // loaders frequently emit integral measurements.
            (Column::Float64 { values, validity }, Value::Int64(v)) => {
                values.push(*v as f64);
                validity.push(true);
                Ok(())
            }
            (Column::Float64 { values, validity }, Value::Null) => {
                values.push(0.0);
                validity.push(false);
                Ok(())
            }
            (Column::Bool { values, validity }, Value::Bool(v)) => {
                values.push(*v);
                validity.push(true);
                Ok(())
            }
            (Column::Bool { values, validity }, Value::Null) => {
                values.push(false);
                validity.push(false);
                Ok(())
            }
            (Column::Utf8 { values, validity }, Value::Utf8(v)) => {
                values.push(v.clone());
                validity.push(true);
                Ok(())
            }
            (Column::Utf8 { values, validity }, Value::Null) => {
                values.push(String::new());
                validity.push(false);
                Ok(())
            }
            (col, value) => Err(ColumnarError::TypeMismatch {
                column: String::new(),
                expected: col.data_type().name(),
                found: value.type_name(),
            }),
        }
    }

    /// Read row `idx` as a dynamically typed value.
    pub fn get(&self, idx: usize) -> Result<Value> {
        if idx >= self.len() {
            return Err(ColumnarError::RowOutOfBounds {
                row: idx,
                len: self.len(),
            });
        }
        if self.is_null(idx) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Int64 { values, .. } => Value::Int64(values[idx]),
            Column::Float64 { values, .. } => Value::Float64(values[idx]),
            Column::Bool { values, .. } => Value::Bool(values[idx]),
            Column::Utf8 { values, .. } => Value::Utf8(values[idx].clone()),
        })
    }

    /// Read row `idx` as an `f64` if the column is numeric and the row is not
    /// NULL.
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        if idx >= self.len() || self.is_null(idx) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[idx] as f64),
            Column::Float64 { values, .. } => Some(values[idx]),
            _ => None,
        }
    }

    /// Read row `idx` as an `i64` if the column is an integer column and the
    /// row is not NULL.
    pub fn get_i64(&self, idx: usize) -> Option<i64> {
        if idx >= self.len() || self.is_null(idx) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[idx]),
            _ => None,
        }
    }

    /// Extend this column with rows gathered from `other` at the given
    /// positions. Both columns must share the same data type.
    pub fn extend_gather(&mut self, other: &Column, rows: &[usize]) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(ColumnarError::TypeMismatch {
                column: String::new(),
                expected: self.data_type().name(),
                found: other.data_type().name(),
            });
        }
        for &row in rows {
            let v = other.get(row)?;
            self.push(&v)?;
        }
        Ok(())
    }

    /// Produce a new column containing only the rows at the given positions.
    pub fn gather(&self, rows: &[usize]) -> Result<Column> {
        let mut out = Column::with_capacity(self.data_type(), rows.len());
        out.extend_gather(self, rows)?;
        Ok(out)
    }

    /// Iterate over the column as `Option<f64>` (None for NULL and
    /// non-numeric columns' rows).
    pub fn iter_f64(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.len()).map(move |i| self.get_f64(i))
    }

    /// Approximate heap memory consumed by this column, in bytes.
    ///
    /// This is what the layer-sizing policy uses to decide whether an
    /// impression fits the CPU cache / main memory budget of §3.1.
    pub fn byte_size(&self) -> usize {
        let validity_bytes = self.validity().words.len() * 8;
        validity_bytes
            + match self {
                Column::Int64 { values, .. } => values.len() * 8,
                Column::Float64 { values, .. } => values.len() * 8,
                Column::Bool { values, .. } => values.len(),
                Column::Utf8 { values, .. } => values.iter().map(|s| s.len() + 24).sum::<usize>(),
            }
    }

    /// Borrow the raw `f64` slice when the column is a Float64 column.
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float64 { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the raw `i64` slice when the column is an Int64 column.
    pub fn i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int64 { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the raw `bool` slice when the column is a Bool column.
    pub fn bool_slice(&self) -> Option<&[bool]> {
        match self {
            Column::Bool { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the raw `String` slice when the column is a Utf8 column — the
    /// zero-clone access path of the string scan kernels.
    pub fn utf8_slice(&self) -> Option<&[String]> {
        match self {
            Column::Utf8 { values, .. } => Some(values),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_set(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn bitmap_with_len_all_valid_masks_tail() {
        let bm = Bitmap::with_len(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_set(), 70);
        let bm0 = Bitmap::with_len(70, false);
        assert_eq!(bm0.count_set(), 0);
    }

    #[test]
    fn bitmap_set() {
        let mut bm = Bitmap::with_len(10, false);
        bm.set(3, true);
        bm.set(9, true);
        assert!(bm.get(3));
        assert!(bm.get(9));
        assert!(!bm.get(0));
        bm.set(3, false);
        assert!(!bm.get(3));
        assert_eq!(bm.count_set(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bitmap_get_out_of_bounds_panics() {
        let bm = Bitmap::with_len(4, true);
        bm.get(4);
    }

    #[test]
    fn column_push_and_get_roundtrip() {
        let mut c = Column::new(DataType::Float64);
        c.push(&Value::Float64(1.5)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int64(3)).unwrap(); // widened
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0).unwrap(), Value::Float64(1.5));
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert_eq!(c.get(2).unwrap(), Value::Float64(3.0));
    }

    #[test]
    fn column_type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int64);
        let err = c.push(&Value::Utf8("x".into())).unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
        // column unchanged
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn column_from_constructors() {
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 0);
        let c = Column::from_f64(vec![1.0; 5]);
        assert_eq!(c.len(), 5);
        let c = Column::from_bool(vec![true, false]);
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
        let c = Column::from_strings(["a", "b"]);
        assert_eq!(c.get(0).unwrap(), Value::Utf8("a".into()));
    }

    #[test]
    fn column_get_out_of_bounds() {
        let c = Column::from_i64(vec![1]);
        assert!(matches!(
            c.get(5),
            Err(ColumnarError::RowOutOfBounds { row: 5, len: 1 })
        ));
    }

    #[test]
    fn column_get_f64_and_i64() {
        let c = Column::from_i64(vec![4, 5]);
        assert_eq!(c.get_f64(0), Some(4.0));
        assert_eq!(c.get_i64(1), Some(5));
        assert_eq!(c.get_i64(9), None);
        let s = Column::from_strings(["x"]);
        assert_eq!(s.get_f64(0), None);
    }

    #[test]
    fn column_gather() {
        let c = Column::from_f64(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let g = c.gather(&[4, 0, 2]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.get_f64(0), Some(4.0));
        assert_eq!(g.get_f64(1), Some(0.0));
        assert_eq!(g.get_f64(2), Some(2.0));
    }

    #[test]
    fn column_gather_type_mismatch() {
        let mut a = Column::new(DataType::Int64);
        let b = Column::from_f64(vec![1.0]);
        assert!(a.extend_gather(&b, &[0]).is_err());
    }

    #[test]
    fn column_gather_preserves_nulls() {
        let mut c = Column::new(DataType::Int64);
        c.push(&Value::Int64(1)).unwrap();
        c.push(&Value::Null).unwrap();
        let g = c.gather(&[1, 0]).unwrap();
        assert!(g.is_null(0));
        assert!(!g.is_null(1));
    }

    #[test]
    fn column_byte_size_grows() {
        let small = Column::from_f64(vec![1.0; 10]);
        let big = Column::from_f64(vec![1.0; 1000]);
        assert!(big.byte_size() > small.byte_size());
        assert!(small.byte_size() >= 80);
    }

    #[test]
    fn column_slices() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        assert_eq!(c.f64_slice(), Some(&[1.0, 2.0][..]));
        assert_eq!(c.i64_slice(), None);
        let i = Column::from_i64(vec![7]);
        assert_eq!(i.i64_slice(), Some(&[7][..]));
    }

    #[test]
    fn iter_f64_yields_nulls_as_none() {
        let mut c = Column::new(DataType::Float64);
        c.push(&Value::Float64(1.0)).unwrap();
        c.push(&Value::Null).unwrap();
        let collected: Vec<Option<f64>> = c.iter_f64().collect();
        assert_eq!(collected, vec![Some(1.0), None]);
    }
}
