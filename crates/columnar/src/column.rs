//! Typed column vectors with null bitmaps.
//!
//! Each column stores its values densely in a `Vec` of the native type plus a
//! validity bitmap. This mirrors the layout of read-optimised column stores
//! (MonetDB BATs, Arrow arrays) at the level of fidelity the SciBORQ
//! experiments need: sequential scans, random access by row id and cheap
//! appends during incremental loads.

use crate::error::{ColumnarError, Result};
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// A validity bitmap tracking which rows are non-NULL.
///
/// The bitmap is stored as packed 64-bit words, bit `i % 64` of word
/// `i / 64` holding row `i` — the same word layout the chunked scan kernels
/// use for their match masks, so validity can be ANDed into a match mask
/// word-at-a-time ([`Bitmap::and_into`]). Bits beyond `len` in the last word
/// are always zero (the tail invariant the kernels rely on). An absent
/// bitmap (all-valid) is represented by the owning column keeping
/// `null_count == 0`.
///
/// The count of cleared bits is cached and maintained on every mutation, so
/// [`Bitmap::count_set`]/[`Bitmap::count_unset`] — and through them
/// `Column::null_count`, which the kernels consult on every scan — are O(1)
/// instead of a popcount over the whole bitmap.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    /// Cached number of cleared (NULL) bits among the first `len` bits.
    zeros: usize,
}

impl Bitmap {
    /// Create an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a bitmap of `len` bits, all set to `valid`.
    pub fn with_len(len: usize, valid: bool) -> Self {
        let word = if valid { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![word; len.div_ceil(64)],
            len,
            zeros: if valid { 0 } else { len },
        };
        bm.mask_tail();
        bm
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of bits in the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a bit.
    pub fn push(&mut self, valid: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if valid {
            let word = self.len / 64;
            self.words[word] |= 1u64 << bit;
        } else {
            self.zeros += 1;
        }
        self.len += 1;
    }

    /// Get bit `idx`; panics if out of bounds.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bitmap index out of bounds");
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Set bit `idx` to `valid`.
    pub fn set(&mut self, idx: usize, valid: bool) {
        assert!(idx < self.len, "bitmap index out of bounds");
        let word = idx / 64;
        let bit = idx % 64;
        let was_valid = (self.words[word] >> bit) & 1 == 1;
        match (was_valid, valid) {
            (true, false) => self.zeros += 1,
            (false, true) => self.zeros -= 1,
            _ => {}
        }
        if valid {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// Number of set (valid) bits. O(1): derived from the cached zero count.
    pub fn count_set(&self) -> usize {
        self.len - self.zeros
    }

    /// Number of cleared (NULL) bits. O(1).
    pub fn count_unset(&self) -> usize {
        self.zeros
    }

    /// The packed 64-bit words backing the bitmap. Word `w` holds rows
    /// `[w*64, w*64+64)`; bits at positions `>= len` are guaranteed zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// AND this bitmap's words into `out`, where `out[k]` corresponds to
    /// word `first_word + k` of the bitmap. Words past the end of the bitmap
    /// are treated as all-zero (no rows, hence no valid rows).
    pub fn and_into(&self, first_word: usize, out: &mut [u64]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot &= self.words.get(first_word + k).copied().unwrap_or(0);
        }
    }

    /// The mask of in-range bits for the last word of a `len`-bit bitmap:
    /// all ones when `len` is a multiple of 64, otherwise only the low
    /// `len % 64` bits. This is the tail-masking rule both the bitmap and
    /// the chunked match masks follow.
    pub fn tail_mask(len: usize) -> u64 {
        let tail_bits = len % 64;
        if tail_bits == 0 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        }
    }
}

/// A typed column of values.
///
/// Nulls are represented by a sentinel in the value vector plus a cleared bit
/// in the validity bitmap; the sentinel never escapes through the public API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integer column.
    Int64 {
        /// Dense values (NULL slots hold 0).
        values: Vec<i64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// 64-bit float column.
    Float64 {
        /// Dense values (NULL slots hold 0.0).
        values: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Boolean column.
    Bool {
        /// Dense values (NULL slots hold `false`).
        values: Vec<bool>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// UTF-8 string column.
    Utf8 {
        /// Dense values (NULL slots hold the empty string).
        values: Vec<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Dictionary-encoded UTF-8 string column.
    ///
    /// Row values are `u32` codes indexing into a **sorted, deduplicated**
    /// dictionary of the distinct strings, so code order equals
    /// lexicographic order: string equality and range predicates translate
    /// into pure integer-code compares (done once per scan in the compiled
    /// pipeline), which the chunked kernels then evaluate branchlessly.
    ///
    /// The logical data type is still [`DataType::Utf8`]; dictionary
    /// encoding is a physical representation, invisible to schemas and the
    /// dynamically typed accessors. Appends of strings already in the
    /// dictionary are O(log dict); a *new* distinct string is inserted at
    /// its sorted position and existing codes are remapped (O(rows)), which
    /// is cheap for the low-cardinality label columns this encoding targets
    /// and still correct for any other.
    Utf8Dict {
        /// Per-row dictionary codes (NULL slots hold 0, never dereferenced).
        codes: Vec<u32>,
        /// Sorted, deduplicated dictionary the codes index into.
        dict: Vec<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
}

impl Column {
    /// Create an empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64 {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Float64 => Column::Float64 {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Bool => Column::Bool {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Utf8 => Column::Utf8 {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
        }
    }

    /// Create an empty column with pre-reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        match data_type {
            DataType::Int64 => Column::Int64 {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
            DataType::Float64 => Column::Float64 {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
            DataType::Bool => Column::Bool {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
            DataType::Utf8 => Column::Utf8 {
                values: Vec::with_capacity(capacity),
                validity: Bitmap::new(),
            },
        }
    }

    /// Build an Int64 column from non-null values.
    pub fn from_i64(values: Vec<i64>) -> Self {
        let validity = Bitmap::with_len(values.len(), true);
        Column::Int64 { values, validity }
    }

    /// Build a Float64 column from non-null values.
    pub fn from_f64(values: Vec<f64>) -> Self {
        let validity = Bitmap::with_len(values.len(), true);
        Column::Float64 { values, validity }
    }

    /// Build a Bool column from non-null values.
    pub fn from_bool(values: Vec<bool>) -> Self {
        let validity = Bitmap::with_len(values.len(), true);
        Column::Bool { values, validity }
    }

    /// Build a Utf8 column from non-null values.
    pub fn from_strings<I: IntoIterator<Item = S>, S: Into<String>>(values: I) -> Self {
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        let validity = Bitmap::with_len(values.len(), true);
        Column::Utf8 { values, validity }
    }

    /// The data type of this column. Dictionary encoding is a physical
    /// representation: a [`Column::Utf8Dict`] column is still logically
    /// [`DataType::Utf8`].
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Bool { .. } => DataType::Bool,
            Column::Utf8 { .. } | Column::Utf8Dict { .. } => DataType::Utf8,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { values, .. } => values.len(),
            Column::Float64 { values, .. } => values.len(),
            Column::Bool { values, .. } => values.len(),
            Column::Utf8 { values, .. } => values.len(),
            Column::Utf8Dict { codes, .. } => codes.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of NULL rows. O(1): the bitmap caches its cleared-bit count.
    pub fn null_count(&self) -> usize {
        self.validity().count_unset()
    }

    /// The validity bitmap (cleared bits are NULL rows).
    ///
    /// The scan kernels read this directly; use [`Column::validity_ref`] to
    /// get `None` for all-valid columns so kernels can skip the bitmap test.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Int64 { validity, .. } => validity,
            Column::Float64 { validity, .. } => validity,
            Column::Bool { validity, .. } => validity,
            Column::Utf8 { validity, .. } => validity,
            Column::Utf8Dict { validity, .. } => validity,
        }
    }

    /// The validity bitmap, or `None` when every row is valid — the form the
    /// scan kernels consume (an absent bitmap lets the tight loops skip the
    /// per-row validity test entirely).
    pub fn validity_ref(&self) -> Option<&Bitmap> {
        if self.null_count() == 0 {
            None
        } else {
            Some(self.validity())
        }
    }

    /// True when row `idx` is NULL.
    pub fn is_null(&self, idx: usize) -> bool {
        !self.validity().get(idx)
    }

    /// Append a dynamically typed value.
    ///
    /// Returns a [`ColumnarError::TypeMismatch`] if the value's type does not
    /// match the column type (NULL is accepted by every column).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (Column::Int64 { values, validity }, Value::Int64(v)) => {
                values.push(*v);
                validity.push(true);
                Ok(())
            }
            (Column::Int64 { values, validity }, Value::Null) => {
                values.push(0);
                validity.push(false);
                Ok(())
            }
            (Column::Float64 { values, validity }, Value::Float64(v)) => {
                values.push(*v);
                validity.push(true);
                Ok(())
            }
            // Integers are silently widened into float columns: scientific
            // loaders frequently emit integral measurements.
            (Column::Float64 { values, validity }, Value::Int64(v)) => {
                values.push(*v as f64);
                validity.push(true);
                Ok(())
            }
            (Column::Float64 { values, validity }, Value::Null) => {
                values.push(0.0);
                validity.push(false);
                Ok(())
            }
            (Column::Bool { values, validity }, Value::Bool(v)) => {
                values.push(*v);
                validity.push(true);
                Ok(())
            }
            (Column::Bool { values, validity }, Value::Null) => {
                values.push(false);
                validity.push(false);
                Ok(())
            }
            (Column::Utf8 { values, validity }, Value::Utf8(v)) => {
                values.push(v.clone());
                validity.push(true);
                Ok(())
            }
            (Column::Utf8 { values, validity }, Value::Null) => {
                values.push(String::new());
                validity.push(false);
                Ok(())
            }
            (
                Column::Utf8Dict {
                    codes,
                    dict,
                    validity,
                },
                Value::Utf8(v),
            ) => {
                let code = match dict.binary_search_by(|d| d.as_str().cmp(v.as_str())) {
                    Ok(found) => found as u32,
                    Err(pos) => {
                        // New distinct string: insert at its sorted position
                        // and shift existing codes up to keep code order ==
                        // lexicographic order. O(rows), but only on the
                        // first occurrence of each distinct value.
                        let pos_u32 = u32::try_from(pos).map_err(|_| {
                            ColumnarError::InvalidArgument(
                                "dictionary exceeds u32 code space".to_owned(),
                            )
                        })?;
                        dict.insert(pos, v.clone());
                        for c in codes.iter_mut() {
                            if *c >= pos_u32 {
                                *c += 1;
                            }
                        }
                        pos_u32
                    }
                };
                codes.push(code);
                validity.push(true);
                Ok(())
            }
            (
                Column::Utf8Dict {
                    codes, validity, ..
                },
                Value::Null,
            ) => {
                codes.push(0);
                validity.push(false);
                Ok(())
            }
            (col, value) => Err(ColumnarError::TypeMismatch {
                column: String::new(),
                expected: col.data_type().name(),
                found: value.type_name(),
            }),
        }
    }

    /// Read row `idx` as a dynamically typed value.
    pub fn get(&self, idx: usize) -> Result<Value> {
        if idx >= self.len() {
            return Err(ColumnarError::RowOutOfBounds {
                row: idx,
                len: self.len(),
            });
        }
        if self.is_null(idx) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Int64 { values, .. } => Value::Int64(values[idx]),
            Column::Float64 { values, .. } => Value::Float64(values[idx]),
            Column::Bool { values, .. } => Value::Bool(values[idx]),
            Column::Utf8 { values, .. } => Value::Utf8(values[idx].clone()),
            Column::Utf8Dict { codes, dict, .. } => Value::Utf8(dict[codes[idx] as usize].clone()),
        })
    }

    /// Read row `idx` as an `f64` if the column is numeric and the row is not
    /// NULL.
    pub fn get_f64(&self, idx: usize) -> Option<f64> {
        if idx >= self.len() || self.is_null(idx) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[idx] as f64),
            Column::Float64 { values, .. } => Some(values[idx]),
            _ => None,
        }
    }

    /// Read row `idx` as an `i64` if the column is an integer column and the
    /// row is not NULL.
    pub fn get_i64(&self, idx: usize) -> Option<i64> {
        if idx >= self.len() || self.is_null(idx) {
            return None;
        }
        match self {
            Column::Int64 { values, .. } => Some(values[idx]),
            _ => None,
        }
    }

    /// Extend this column with rows gathered from `other` at the given
    /// positions. Both columns must share the same data type.
    pub fn extend_gather(&mut self, other: &Column, rows: &[usize]) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(ColumnarError::TypeMismatch {
                column: String::new(),
                expected: self.data_type().name(),
                found: other.data_type().name(),
            });
        }
        for &row in rows {
            let v = other.get(row)?;
            self.push(&v)?;
        }
        Ok(())
    }

    /// Produce a new column containing only the rows at the given positions.
    ///
    /// A dictionary-encoded column stays dictionary-encoded: the codes are
    /// gathered and the dictionary cloned wholesale, with no per-row string
    /// clones or binary searches.
    pub fn gather(&self, rows: &[usize]) -> Result<Column> {
        if let Column::Utf8Dict {
            codes,
            dict,
            validity,
        } = self
        {
            let mut out_codes = Vec::with_capacity(rows.len());
            let mut out_validity = Bitmap::new();
            for &row in rows {
                if row >= codes.len() {
                    return Err(ColumnarError::RowOutOfBounds {
                        row,
                        len: codes.len(),
                    });
                }
                out_codes.push(codes[row]);
                out_validity.push(validity.get(row));
            }
            return Ok(Column::Utf8Dict {
                codes: out_codes,
                dict: dict.clone(),
                validity: out_validity,
            });
        }
        let mut out = Column::with_capacity(self.data_type(), rows.len());
        out.extend_gather(self, rows)?;
        Ok(out)
    }

    /// Iterate over the column as `Option<f64>` (None for NULL and
    /// non-numeric columns' rows).
    pub fn iter_f64(&self) -> impl Iterator<Item = Option<f64>> + '_ {
        (0..self.len()).map(move |i| self.get_f64(i))
    }

    /// Approximate heap memory consumed by this column, in bytes.
    ///
    /// This is what the layer-sizing policy uses to decide whether an
    /// impression fits the CPU cache / main memory budget of §3.1.
    pub fn byte_size(&self) -> usize {
        let validity_bytes = self.validity().words.len() * 8;
        validity_bytes
            + match self {
                Column::Int64 { values, .. } => values.len() * 8,
                Column::Float64 { values, .. } => values.len() * 8,
                Column::Bool { values, .. } => values.len(),
                Column::Utf8 { values, .. } => values.iter().map(|s| s.len() + 24).sum::<usize>(),
                Column::Utf8Dict { codes, dict, .. } => {
                    codes.len() * 4 + dict.iter().map(|s| s.len() + 24).sum::<usize>()
                }
            }
    }

    /// Borrow the raw `f64` slice when the column is a Float64 column.
    pub fn f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float64 { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the raw `i64` slice when the column is an Int64 column.
    pub fn i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int64 { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the raw `bool` slice when the column is a Bool column.
    pub fn bool_slice(&self) -> Option<&[bool]> {
        match self {
            Column::Bool { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the raw `String` slice when the column is a *plain* Utf8
    /// column — the zero-clone access path of the string scan kernels.
    /// Dictionary-encoded columns return `None`; use
    /// [`Column::dict_parts`] for their code/dictionary view.
    pub fn utf8_slice(&self) -> Option<&[String]> {
        match self {
            Column::Utf8 { values, .. } => Some(values),
            _ => None,
        }
    }

    /// Borrow the `(codes, dict)` pair when the column is dictionary-encoded.
    ///
    /// The dictionary is sorted and deduplicated, so `dict[codes[i]]` is row
    /// `i`'s string and code order equals lexicographic order.
    pub fn dict_parts(&self) -> Option<(&[u32], &[String])> {
        match self {
            Column::Utf8Dict { codes, dict, .. } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Dictionary-encode a plain Utf8 column.
    ///
    /// Returns the encoded [`Column::Utf8Dict`] when this is a plain Utf8
    /// column whose distinct valid-value count is at most `max_cardinality`;
    /// `None` otherwise (non-string columns, already-encoded columns, or a
    /// dictionary that would be too large to pay off). NULL rows keep their
    /// cleared validity bit and store code 0, which is never dereferenced.
    pub fn dict_encoded(&self, max_cardinality: usize) -> Option<Column> {
        let Column::Utf8 { values, validity } = self else {
            return None;
        };
        let max_cardinality = max_cardinality.min(u32::MAX as usize);
        let mut set: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (i, v) in values.iter().enumerate() {
            if validity.get(i) {
                set.insert(v.as_str());
                if set.len() > max_cardinality {
                    return None;
                }
            }
        }
        let dict: Vec<String> = set.iter().map(|s| (*s).to_owned()).collect();
        let codes: Vec<u32> = values
            .iter()
            .enumerate()
            .map(|(i, v)| {
                if validity.get(i) {
                    dict.binary_search_by(|d| d.as_str().cmp(v.as_str()))
                        .expect("every valid value is in the dictionary") as u32
                } else {
                    0
                }
            })
            .collect();
        Some(Column::Utf8Dict {
            codes,
            dict,
            validity: validity.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_set(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn bitmap_with_len_all_valid_masks_tail() {
        let bm = Bitmap::with_len(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_set(), 70);
        let bm0 = Bitmap::with_len(70, false);
        assert_eq!(bm0.count_set(), 0);
    }

    #[test]
    fn bitmap_set() {
        let mut bm = Bitmap::with_len(10, false);
        bm.set(3, true);
        bm.set(9, true);
        assert!(bm.get(3));
        assert!(bm.get(9));
        assert!(!bm.get(0));
        bm.set(3, false);
        assert!(!bm.get(3));
        assert_eq!(bm.count_set(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bitmap_get_out_of_bounds_panics() {
        let bm = Bitmap::with_len(4, true);
        bm.get(4);
    }

    #[test]
    fn column_push_and_get_roundtrip() {
        let mut c = Column::new(DataType::Float64);
        c.push(&Value::Float64(1.5)).unwrap();
        c.push(&Value::Null).unwrap();
        c.push(&Value::Int64(3)).unwrap(); // widened
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(0).unwrap(), Value::Float64(1.5));
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert_eq!(c.get(2).unwrap(), Value::Float64(3.0));
    }

    #[test]
    fn column_type_mismatch_rejected() {
        let mut c = Column::new(DataType::Int64);
        let err = c.push(&Value::Utf8("x".into())).unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
        // column unchanged
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn column_from_constructors() {
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 0);
        let c = Column::from_f64(vec![1.0; 5]);
        assert_eq!(c.len(), 5);
        let c = Column::from_bool(vec![true, false]);
        assert_eq!(c.get(1).unwrap(), Value::Bool(false));
        let c = Column::from_strings(["a", "b"]);
        assert_eq!(c.get(0).unwrap(), Value::Utf8("a".into()));
    }

    #[test]
    fn column_get_out_of_bounds() {
        let c = Column::from_i64(vec![1]);
        assert!(matches!(
            c.get(5),
            Err(ColumnarError::RowOutOfBounds { row: 5, len: 1 })
        ));
    }

    #[test]
    fn column_get_f64_and_i64() {
        let c = Column::from_i64(vec![4, 5]);
        assert_eq!(c.get_f64(0), Some(4.0));
        assert_eq!(c.get_i64(1), Some(5));
        assert_eq!(c.get_i64(9), None);
        let s = Column::from_strings(["x"]);
        assert_eq!(s.get_f64(0), None);
    }

    #[test]
    fn column_gather() {
        let c = Column::from_f64(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let g = c.gather(&[4, 0, 2]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.get_f64(0), Some(4.0));
        assert_eq!(g.get_f64(1), Some(0.0));
        assert_eq!(g.get_f64(2), Some(2.0));
    }

    #[test]
    fn column_gather_type_mismatch() {
        let mut a = Column::new(DataType::Int64);
        let b = Column::from_f64(vec![1.0]);
        assert!(a.extend_gather(&b, &[0]).is_err());
    }

    #[test]
    fn column_gather_preserves_nulls() {
        let mut c = Column::new(DataType::Int64);
        c.push(&Value::Int64(1)).unwrap();
        c.push(&Value::Null).unwrap();
        let g = c.gather(&[1, 0]).unwrap();
        assert!(g.is_null(0));
        assert!(!g.is_null(1));
    }

    #[test]
    fn column_byte_size_grows() {
        let small = Column::from_f64(vec![1.0; 10]);
        let big = Column::from_f64(vec![1.0; 1000]);
        assert!(big.byte_size() > small.byte_size());
        assert!(small.byte_size() >= 80);
    }

    #[test]
    fn column_slices() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        assert_eq!(c.f64_slice(), Some(&[1.0, 2.0][..]));
        assert_eq!(c.i64_slice(), None);
        let i = Column::from_i64(vec![7]);
        assert_eq!(i.i64_slice(), Some(&[7][..]));
    }

    #[test]
    fn iter_f64_yields_nulls_as_none() {
        let mut c = Column::new(DataType::Float64);
        c.push(&Value::Float64(1.0)).unwrap();
        c.push(&Value::Null).unwrap();
        let collected: Vec<Option<f64>> = c.iter_f64().collect();
        assert_eq!(collected, vec![Some(1.0), None]);
    }

    #[test]
    fn bitmap_cached_counts_track_mutations() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        let expected_set = (0..200).filter(|i| i % 3 == 0).count();
        assert_eq!(bm.count_set(), expected_set);
        assert_eq!(bm.count_unset(), 200 - expected_set);
        bm.set(1, true); // was false
        assert_eq!(bm.count_set(), expected_set + 1);
        bm.set(1, true); // idempotent
        assert_eq!(bm.count_set(), expected_set + 1);
        bm.set(0, false); // was true
        assert_eq!(bm.count_set(), expected_set);
        assert_eq!(Bitmap::with_len(77, false).count_unset(), 77);
        assert_eq!(Bitmap::with_len(77, true).count_unset(), 0);
    }

    #[test]
    fn bitmap_words_and_tail_invariant() {
        let mut bm = Bitmap::new();
        for _ in 0..70 {
            bm.push(true);
        }
        assert_eq!(bm.words().len(), 2);
        assert_eq!(bm.words()[0], u64::MAX);
        // bits beyond len stay zero
        assert_eq!(bm.words()[1], Bitmap::tail_mask(70) & bm.words()[1]);
        assert_eq!(bm.words()[1], (1u64 << 6) - 1);
        assert_eq!(Bitmap::tail_mask(64), u64::MAX);
        assert_eq!(Bitmap::tail_mask(1), 1);
    }

    #[test]
    fn bitmap_and_into_word_window() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 2 == 0);
        }
        let mut out = [u64::MAX; 2];
        bm.and_into(1, &mut out);
        assert_eq!(out[0], bm.words()[1]);
        assert_eq!(out[1], bm.words()[2]);
        // words past the end are treated as all-zero
        let mut out = [u64::MAX; 2];
        bm.and_into(2, &mut out);
        assert_eq!(out[0], bm.words()[2]);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn dict_encode_roundtrip_and_sorted_codes() {
        let mut c = Column::new(DataType::Utf8);
        for v in ["STAR", "GALAXY", "QSO", "GALAXY", "STAR"] {
            c.push(&Value::Utf8(v.into())).unwrap();
        }
        c.push(&Value::Null).unwrap();
        let d = c.dict_encoded(usize::MAX).expect("utf8 encodes");
        assert_eq!(d.data_type(), DataType::Utf8);
        assert_eq!(d.len(), 6);
        assert_eq!(d.null_count(), 1);
        let (codes, dict) = d.dict_parts().unwrap();
        assert_eq!(dict, &["GALAXY", "QSO", "STAR"]);
        assert_eq!(codes, &[2, 0, 1, 0, 2, 0]);
        for i in 0..6 {
            assert_eq!(d.get(i).unwrap(), c.get(i).unwrap(), "row {i}");
        }
        // cardinality cap
        assert!(c.dict_encoded(2).is_none());
        // only plain Utf8 encodes
        assert!(d.dict_encoded(usize::MAX).is_none());
        assert!(Column::from_i64(vec![1]).dict_encoded(10).is_none());
    }

    #[test]
    fn dict_push_known_and_new_strings() {
        let base = Column::from_strings(["b", "d"]);
        let mut d = base.dict_encoded(usize::MAX).unwrap();
        d.push(&Value::Utf8("d".into())).unwrap(); // existing
        d.push(&Value::Utf8("a".into())).unwrap(); // new, sorts first: remap
        d.push(&Value::Utf8("c".into())).unwrap(); // new, sorts middle
        d.push(&Value::Null).unwrap();
        let (codes, dict) = d.dict_parts().unwrap();
        assert_eq!(dict, &["a", "b", "c", "d"]);
        assert_eq!(codes, &[1, 3, 3, 0, 2, 0]);
        assert!(d.is_null(5));
        let expected = ["b", "d", "d", "a", "c"];
        for (i, e) in expected.iter().enumerate() {
            assert_eq!(d.get(i).unwrap(), Value::Utf8((*e).into()));
        }
        // type mismatch still rejected
        assert!(d.push(&Value::Int64(3)).is_err());
    }

    #[test]
    fn dict_gather_preserves_encoding() {
        let mut c = Column::new(DataType::Utf8);
        for v in [Some("y"), None, Some("x"), Some("y")] {
            c.push(&v.map_or(Value::Null, |s| Value::Utf8(s.into())))
                .unwrap();
        }
        let d = c.dict_encoded(usize::MAX).unwrap();
        let g = d.gather(&[3, 1, 0]).unwrap();
        assert!(g.dict_parts().is_some(), "gather keeps dict encoding");
        assert_eq!(g.get(0).unwrap(), Value::Utf8("y".into()));
        assert_eq!(g.get(1).unwrap(), Value::Null);
        assert_eq!(g.get(2).unwrap(), Value::Utf8("y".into()));
        assert!(d.gather(&[9]).is_err());
    }
}
