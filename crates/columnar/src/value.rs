//! Scalar values and data types used by the column store.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The data types supported by the columnar substrate.
///
/// The SkyServer-style schemas used by SciBORQ only require a small set of
/// types: 64-bit integers for identifiers and counts, 64-bit floats for
/// scientific measurements (`ra`, `dec`, magnitudes, ...), booleans for flags
/// and UTF-8 strings for labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Utf8,
}

impl DataType {
    /// A short human-readable name for the type.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Bool => "Bool",
            DataType::Utf8 => "Utf8",
        }
    }

    /// Whether values of this type can participate in numeric aggregates.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar value.
///
/// `Value` is used at API boundaries (row construction, predicate literals,
/// query results); the hot paths inside the engine operate on the typed
/// column vectors directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Utf8(String),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Utf8(_) => Some(DataType::Utf8),
        }
    }

    /// A short name for the value's runtime type (used in error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int64(_) => "Int64",
            Value::Float64(_) => "Float64",
            Value::Bool(_) => "Bool",
            Value::Utf8(_) => "Utf8",
        }
    }

    /// True if this is the NULL value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an `f64` if it is numeric.
    ///
    /// Integers are widened; NULL and non-numeric values yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Interpret the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Compare two values for ordering purposes.
    ///
    /// NULL sorts before everything; numeric types are compared numerically
    /// (an `Int64` can be compared against a `Float64`); values of
    /// incomparable types return `None`.
    pub fn partial_cmp_value(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Float64(a), Float64(b)) => a.partial_cmp(b),
            (Int64(a), Float64(b)) => (*a as f64).partial_cmp(b),
            (Float64(a), Int64(b)) => a.partial_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Utf8(a), Utf8(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        matches!(self.partial_cmp_value(other), Some(Ordering::Equal))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Utf8(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Utf8(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Utf8(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_names() {
        assert_eq!(DataType::Int64.name(), "Int64");
        assert_eq!(DataType::Float64.name(), "Float64");
        assert_eq!(DataType::Bool.name(), "Bool");
        assert_eq!(DataType::Utf8.name(), "Utf8");
        assert_eq!(DataType::Float64.to_string(), "Float64");
    }

    #[test]
    fn data_type_numeric() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }

    #[test]
    fn value_type_introspection() {
        assert_eq!(Value::Int64(1).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Bool(true).is_null());
        assert_eq!(Value::Utf8("x".into()).type_name(), "Utf8");
    }

    #[test]
    fn value_as_f64_widens_ints() {
        assert_eq!(Value::Int64(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int64(7).as_i64(), Some(7));
        assert_eq!(Value::Float64(7.0).as_i64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Utf8("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Int64(1).as_str(), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int64(2).partial_cmp_value(&Value::Float64(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float64(1.5).partial_cmp_value(&Value::Int64(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int64(2), Value::Float64(2.0));
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Int64(-100)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Utf8("a".into()).partial_cmp_value(&Value::Null),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Null.partial_cmp_value(&Value::Null),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incomparable_types_return_none() {
        assert_eq!(
            Value::Bool(true).partial_cmp_value(&Value::Utf8("true".into())),
            None
        );
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(5i64), Value::Int64(5));
        assert_eq!(Value::from(5.0f64), Value::Float64(5.0));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Utf8("s".into()));
        assert_eq!(Value::from(Some(5i64)), Value::Int64(5));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }

    #[test]
    fn display_values() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int64(42).to_string(), "42");
        assert_eq!(Value::Utf8("star".into()).to_string(), "star");
    }
}
