//! Scalar predicates over columns.
//!
//! Predicates are deliberately simple: range and equality comparisons over a
//! single column combined with AND/OR/NOT. This covers the query shapes that
//! drive the SciBORQ experiments (cone searches over `ra`/`dec`, magnitude
//! cuts, class filters) while staying easy to log into predicate sets
//! (`sciborq-workload`).

use crate::error::{ColumnarError, Result};
use crate::selection::SelectionVector;
use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CompareOp {
    fn evaluate(&self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ordering == Equal,
            CompareOp::NotEq => ordering != Equal,
            CompareOp::Lt => ordering == Less,
            CompareOp::LtEq => ordering != Greater,
            CompareOp::Gt => ordering == Greater,
            CompareOp::GtEq => ordering != Less,
        }
    }

    /// SQL-ish symbol for display purposes.
    pub fn symbol(&self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        }
    }
}

/// A boolean predicate over the rows of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true — selects every row.
    True,
    /// Always false — selects no row.
    False,
    /// Compare a column against a literal.
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal to compare against.
        value: Value,
    },
    /// Inclusive range predicate `low <= column <= high`.
    Between {
        /// Column name.
        column: String,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// The column is NULL.
    IsNull(String),
    /// The column is not NULL.
    IsNotNull(String),
    /// Conjunction of predicates.
    And(Vec<Predicate>),
    /// Disjunction of predicates.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Shorthand for an equality comparison.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Shorthand for `column < value`.
    pub fn lt(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Lt,
            value: value.into(),
        }
    }

    /// Shorthand for `column <= value`.
    pub fn lt_eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::LtEq,
            value: value.into(),
        }
    }

    /// Shorthand for `column > value`.
    pub fn gt(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Gt,
            value: value.into(),
        }
    }

    /// Shorthand for `column >= value`.
    pub fn gt_eq(column: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::GtEq,
            value: value.into(),
        }
    }

    /// Shorthand for an inclusive range predicate.
    pub fn between(
        column: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        Predicate::Between {
            column: column.into(),
            low: low.into(),
            high: high.into(),
        }
    }

    /// Combine this predicate with another using AND.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), other) => {
                a.push(other);
                Predicate::And(a)
            }
            (a, Predicate::And(mut b)) => {
                b.insert(0, a);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Combine this predicate with another using OR.
    pub fn or(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::Or(mut a), Predicate::Or(b)) => {
                a.extend(b);
                Predicate::Or(a)
            }
            (Predicate::Or(mut a), other) => {
                a.push(other);
                Predicate::Or(a)
            }
            (a, b) => Predicate::Or(vec![a, b]),
        }
    }

    /// Negate this predicate.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// The set of column names referenced by this predicate.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Compare { column, .. } => out.push(column),
            Predicate::Between { column, .. } => out.push(column),
            Predicate::IsNull(column) | Predicate::IsNotNull(column) => out.push(column),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Evaluate the predicate against a table, producing a selection vector
    /// of qualifying rows.
    pub fn evaluate(&self, table: &Table) -> Result<SelectionVector> {
        let len = table.row_count();
        match self {
            Predicate::True => Ok(SelectionVector::all(len)),
            Predicate::False => Ok(SelectionVector::empty()),
            Predicate::Compare { column, op, value } => {
                let col = table.column(column)?;
                if value.is_null() {
                    // SQL semantics: comparisons against NULL never match.
                    return Ok(SelectionVector::empty());
                }
                let mut rows = Vec::new();
                // String equality/comparison without cloning: compare the
                // stored `&str` against the constant instead of
                // materialising a `Value::Utf8` (and its String clone) per
                // row.
                if let (Some(values), Value::Utf8(constant)) = (col.utf8_slice(), value) {
                    for (idx, cell) in values.iter().enumerate() {
                        if !col.is_null(idx) && op.evaluate(cell.as_str().cmp(constant.as_str())) {
                            rows.push(idx);
                        }
                    }
                    return Ok(SelectionVector::from_sorted_rows(rows));
                }
                for idx in 0..len {
                    let cell = col.get(idx)?;
                    if cell.is_null() {
                        continue;
                    }
                    match cell.partial_cmp_value(value) {
                        Some(ordering) if op.evaluate(ordering) => rows.push(idx),
                        Some(_) => {}
                        None => {
                            return Err(ColumnarError::TypeMismatch {
                                column: column.clone(),
                                expected: col.data_type().name(),
                                found: value.type_name(),
                            })
                        }
                    }
                }
                Ok(SelectionVector::from_sorted_rows(rows))
            }
            Predicate::Between { column, low, high } => {
                // Single pass: both bounds are checked per row instead of
                // scanning the column once per bound and intersecting. A
                // NULL bound keeps the range empty while type errors from
                // the other bound still surface, matching the historical
                // two-scan semantics.
                let col = table.column(column)?;
                let mut rows = Vec::new();
                // String ranges without cloning: compare the stored `&str`
                // against both bounds instead of materialising a
                // `Value::Utf8` per row (NULL or non-string bounds fall
                // through to the generic loop for its error semantics).
                if let (Some(values), Value::Utf8(lo), Value::Utf8(hi)) =
                    (col.utf8_slice(), low, high)
                {
                    for (idx, cell) in values.iter().enumerate() {
                        let v = cell.as_str();
                        if !col.is_null(idx) && lo.as_str() <= v && v <= hi.as_str() {
                            rows.push(idx);
                        }
                    }
                    return Ok(SelectionVector::from_sorted_rows(rows));
                }
                for idx in 0..len {
                    let cell = col.get(idx)?;
                    if cell.is_null() {
                        continue;
                    }
                    let ge = if low.is_null() {
                        false
                    } else {
                        match cell.partial_cmp_value(low) {
                            Some(ordering) => CompareOp::GtEq.evaluate(ordering),
                            None => {
                                return Err(ColumnarError::TypeMismatch {
                                    column: column.clone(),
                                    expected: col.data_type().name(),
                                    found: low.type_name(),
                                })
                            }
                        }
                    };
                    let le = if high.is_null() {
                        false
                    } else {
                        match cell.partial_cmp_value(high) {
                            Some(ordering) => CompareOp::LtEq.evaluate(ordering),
                            None => {
                                return Err(ColumnarError::TypeMismatch {
                                    column: column.clone(),
                                    expected: col.data_type().name(),
                                    found: high.type_name(),
                                })
                            }
                        }
                    };
                    if ge && le {
                        rows.push(idx);
                    }
                }
                Ok(SelectionVector::from_sorted_rows(rows))
            }
            Predicate::IsNull(column) => {
                let col = table.column(column)?;
                let rows = (0..len).filter(|&i| col.is_null(i)).collect();
                Ok(SelectionVector::from_sorted_rows(rows))
            }
            Predicate::IsNotNull(column) => {
                let col = table.column(column)?;
                let rows = (0..len).filter(|&i| !col.is_null(i)).collect();
                Ok(SelectionVector::from_sorted_rows(rows))
            }
            Predicate::And(ps) => {
                let mut acc = SelectionVector::all(len);
                for p in ps {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.intersect(&p.evaluate(table)?);
                }
                Ok(acc)
            }
            Predicate::Or(ps) => {
                let mut acc = SelectionVector::empty();
                for p in ps {
                    acc = acc.union(&p.evaluate(table)?);
                }
                Ok(acc)
            }
            Predicate::Not(p) => Ok(p.evaluate(table)?.complement(len)),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "TRUE"),
            Predicate::False => write!(f, "FALSE"),
            Predicate::Compare { column, op, value } => {
                write!(f, "{column} {} {value}", op.symbol())
            }
            Predicate::Between { column, low, high } => {
                write!(f, "{column} BETWEEN {low} AND {high}")
            }
            Predicate::IsNull(c) => write!(f, "{c} IS NULL"),
            Predicate::IsNotNull(c) => write!(f, "{c} IS NOT NULL"),
            Predicate::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::Table;
    use crate::value::DataType;

    fn test_table() -> Table {
        let schema = Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::nullable("r_mag", DataType::Float64),
            Field::new("class", DataType::Utf8),
        ])
        .unwrap();
        let mut t = Table::new("photoobj", schema);
        let rows: Vec<Vec<Value>> = vec![
            vec![1.into(), 180.0.into(), 17.2.into(), "GALAXY".into()],
            vec![2.into(), 185.5.into(), Value::Null, "STAR".into()],
            vec![3.into(), 190.0.into(), 19.0.into(), "GALAXY".into()],
            vec![4.into(), 200.0.into(), 21.5.into(), "QSO".into()],
            vec![5.into(), 170.0.into(), 16.0.into(), "STAR".into()],
        ];
        for r in rows {
            t.append_row(&r).unwrap();
        }
        t
    }

    #[test]
    fn compare_ops() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Eq.evaluate(Equal));
        assert!(!CompareOp::Eq.evaluate(Less));
        assert!(CompareOp::NotEq.evaluate(Greater));
        assert!(CompareOp::Lt.evaluate(Less));
        assert!(CompareOp::LtEq.evaluate(Equal));
        assert!(CompareOp::Gt.evaluate(Greater));
        assert!(CompareOp::GtEq.evaluate(Equal));
        assert_eq!(CompareOp::GtEq.symbol(), ">=");
    }

    #[test]
    fn evaluate_true_false() {
        let t = test_table();
        assert_eq!(Predicate::True.evaluate(&t).unwrap().len(), 5);
        assert!(Predicate::False.evaluate(&t).unwrap().is_empty());
    }

    #[test]
    fn evaluate_range_predicate() {
        let t = test_table();
        let sel = Predicate::between("ra", 175.0, 191.0).evaluate(&t).unwrap();
        assert_eq!(sel.rows(), &[0, 1, 2]);
    }

    #[test]
    fn evaluate_equality_on_strings() {
        let t = test_table();
        let sel = Predicate::eq("class", "GALAXY").evaluate(&t).unwrap();
        assert_eq!(sel.rows(), &[0, 2]);
    }

    #[test]
    fn evaluate_numeric_comparison_widens() {
        let t = test_table();
        // literal is an integer, column is float
        let sel = Predicate::gt("ra", 185).evaluate(&t).unwrap();
        assert_eq!(sel.rows(), &[1, 2, 3]);
    }

    #[test]
    fn nulls_never_match_comparisons() {
        let t = test_table();
        let sel = Predicate::lt("r_mag", 100.0).evaluate(&t).unwrap();
        // row 1 has NULL r_mag and must not qualify
        assert_eq!(sel.rows(), &[0, 2, 3, 4]);
        let sel = Predicate::eq("r_mag", Value::Null).evaluate(&t).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn is_null_and_is_not_null() {
        let t = test_table();
        assert_eq!(
            Predicate::IsNull("r_mag".into())
                .evaluate(&t)
                .unwrap()
                .rows(),
            &[1]
        );
        assert_eq!(
            Predicate::IsNotNull("r_mag".into())
                .evaluate(&t)
                .unwrap()
                .rows(),
            &[0, 2, 3, 4]
        );
    }

    #[test]
    fn and_or_not_combinators() {
        let t = test_table();
        let p = Predicate::eq("class", "GALAXY").and(Predicate::lt("ra", 185.0));
        assert_eq!(p.evaluate(&t).unwrap().rows(), &[0]);
        let p = Predicate::eq("class", "QSO").or(Predicate::eq("class", "STAR"));
        assert_eq!(p.evaluate(&t).unwrap().rows(), &[1, 3, 4]);
        let p = Predicate::eq("class", "GALAXY").negate();
        assert_eq!(p.evaluate(&t).unwrap().rows(), &[1, 3, 4]);
    }

    #[test]
    fn and_flattens_nested_conjunctions() {
        let p = Predicate::eq("a", 1)
            .and(Predicate::eq("b", 2))
            .and(Predicate::eq("c", 3));
        match p {
            Predicate::And(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flattened AND, got {other:?}"),
        }
    }

    #[test]
    fn referenced_columns_unique_sorted() {
        let p = Predicate::between("ra", 1.0, 2.0)
            .and(Predicate::between("dec", 0.0, 1.0))
            .and(Predicate::gt("ra", 0.5));
        assert_eq!(p.referenced_columns(), vec!["dec", "ra"]);
    }

    #[test]
    fn unknown_column_errors() {
        let t = test_table();
        assert!(matches!(
            Predicate::eq("missing", 1).evaluate(&t),
            Err(ColumnarError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn incomparable_literal_errors() {
        let t = test_table();
        assert!(matches!(
            Predicate::eq("class", 5).evaluate(&t),
            Err(ColumnarError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn display_roundtrip_readable() {
        let p = Predicate::between("ra", 180.0, 190.0).and(Predicate::eq("class", "GALAXY"));
        let s = p.to_string();
        assert!(s.contains("ra BETWEEN 180 AND 190"));
        assert!(s.contains("class = GALAXY"));
        assert!(Predicate::True.to_string().contains("TRUE"));
        assert!(Predicate::IsNull("x".into())
            .to_string()
            .contains("IS NULL"));
    }
}
