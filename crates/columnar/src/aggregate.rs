//! Aggregate computation over selections.
//!
//! SciBORQ's bounded query engine answers aggregate queries (COUNT, SUM, AVG,
//! MIN, MAX, VARIANCE) against impressions and then scales / corrects the
//! estimate. The exact aggregates here are the ground truth those estimators
//! are compared against.

use crate::error::{ColumnarError, Result};
use crate::kernels::MomentSketch;
use crate::selection::SelectionVector;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggregateKind {
    /// Number of qualifying rows (NULLs in the aggregated column are *not*
    /// skipped, matching `COUNT(*)` semantics).
    Count,
    /// Sum of the non-NULL values.
    Sum,
    /// Arithmetic mean of the non-NULL values.
    Avg,
    /// Minimum of the non-NULL values.
    Min,
    /// Maximum of the non-NULL values.
    Max,
    /// Population variance of the non-NULL values.
    Variance,
}

impl fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggregateKind::Count => "COUNT",
            AggregateKind::Sum => "SUM",
            AggregateKind::Avg => "AVG",
            AggregateKind::Min => "MIN",
            AggregateKind::Max => "MAX",
            AggregateKind::Variance => "VAR",
        };
        f.write_str(s)
    }
}

/// The result of evaluating an aggregate exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateResult {
    /// Which aggregate was computed.
    pub kind: AggregateKind,
    /// The aggregate value; `None` when the input had no usable rows (e.g.
    /// AVG over an empty selection).
    pub value: Option<f64>,
    /// Number of rows that participated (non-NULL rows for value aggregates,
    /// all selected rows for COUNT).
    pub rows: usize,
}

/// Compute an aggregate exactly over the selected rows of a column.
///
/// `column` may be `None` only for `Count`, which then counts selected rows
/// without touching any column.
pub fn compute_aggregate(
    table: &Table,
    column: Option<&str>,
    kind: AggregateKind,
    selection: &SelectionVector,
) -> Result<AggregateResult> {
    if kind == AggregateKind::Count {
        return Ok(AggregateResult {
            kind,
            value: Some(selection.len() as f64),
            rows: selection.len(),
        });
    }
    let column = column.ok_or_else(|| {
        ColumnarError::InvalidArgument(format!("aggregate {kind} requires a column"))
    })?;
    // Fold the selected values through the same moment accumulator the fused
    // filter+aggregate kernels use, so the scalar and vectorized paths are
    // bit-identical (identical fold order and operations).
    let col = table.column(column)?;
    if !col.data_type().is_numeric() {
        return Err(ColumnarError::NotNumeric(column.to_owned()));
    }
    let mut sketch = MomentSketch::new();
    for row in selection.iter() {
        match col.get_f64(row) {
            Some(v) => sketch.push(v),
            None => sketch.push_null(),
        }
    }
    Ok(AggregateResult {
        kind,
        value: sketch.aggregate(kind),
        rows: sketch.value_rows(),
    })
}

/// Compute grouped aggregates: one [`AggregateResult`] per distinct value of
/// a (string or integer) grouping column.
///
/// Returns pairs of (group key rendered as a string, aggregate result),
/// sorted by group key for deterministic output.
pub fn compute_grouped_aggregate(
    table: &Table,
    group_by: &str,
    column: Option<&str>,
    kind: AggregateKind,
    selection: &SelectionVector,
) -> Result<Vec<(String, AggregateResult)>> {
    let group_col = table.column(group_by)?;
    let mut groups: std::collections::BTreeMap<String, Vec<usize>> =
        std::collections::BTreeMap::new();
    for row in selection.iter() {
        let key = group_col.get(row)?.to_string();
        groups.entry(key).or_default().push(row);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, rows) in groups {
        let sel = SelectionVector::from_sorted_rows(rows);
        out.push((key, compute_aggregate(table, column, kind, &sel)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn table() -> Table {
        let schema = Schema::shared(vec![
            Field::new("class", DataType::Utf8),
            Field::nullable("mag", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("t", schema);
        let rows: Vec<(&str, Option<f64>)> = vec![
            ("GALAXY", Some(10.0)),
            ("STAR", Some(20.0)),
            ("GALAXY", Some(30.0)),
            ("QSO", None),
            ("GALAXY", Some(50.0)),
        ];
        for (class, mag) in rows {
            t.append_row(&[class.into(), Value::from(mag)]).unwrap();
        }
        t
    }

    #[test]
    fn count_ignores_column() {
        let t = table();
        let sel = SelectionVector::all(5);
        let r = compute_aggregate(&t, None, AggregateKind::Count, &sel).unwrap();
        assert_eq!(r.value, Some(5.0));
        assert_eq!(r.rows, 5);
    }

    #[test]
    fn sum_avg_skip_nulls() {
        let t = table();
        let sel = SelectionVector::all(5);
        let sum = compute_aggregate(&t, Some("mag"), AggregateKind::Sum, &sel).unwrap();
        assert_eq!(sum.value, Some(110.0));
        assert_eq!(sum.rows, 4);
        let avg = compute_aggregate(&t, Some("mag"), AggregateKind::Avg, &sel).unwrap();
        assert_eq!(avg.value, Some(27.5));
    }

    #[test]
    fn min_max() {
        let t = table();
        let sel = SelectionVector::all(5);
        assert_eq!(
            compute_aggregate(&t, Some("mag"), AggregateKind::Min, &sel)
                .unwrap()
                .value,
            Some(10.0)
        );
        assert_eq!(
            compute_aggregate(&t, Some("mag"), AggregateKind::Max, &sel)
                .unwrap()
                .value,
            Some(50.0)
        );
    }

    #[test]
    fn variance_population() {
        let t = table();
        let sel = SelectionVector::all(5);
        let var = compute_aggregate(&t, Some("mag"), AggregateKind::Variance, &sel)
            .unwrap()
            .value
            .unwrap();
        // values 10,20,30,50; mean 27.5; var = (306.25+56.25+6.25+506.25)/4
        assert!((var - 218.75).abs() < 1e-9);
    }

    #[test]
    fn empty_selection_yields_none_for_value_aggregates() {
        let t = table();
        let sel = SelectionVector::empty();
        let avg = compute_aggregate(&t, Some("mag"), AggregateKind::Avg, &sel).unwrap();
        assert_eq!(avg.value, None);
        assert_eq!(avg.rows, 0);
        let min = compute_aggregate(&t, Some("mag"), AggregateKind::Min, &sel).unwrap();
        assert_eq!(min.value, None);
        // but COUNT is zero, not NULL
        let count = compute_aggregate(&t, None, AggregateKind::Count, &sel).unwrap();
        assert_eq!(count.value, Some(0.0));
        // SUM over an empty set is 0 (matching the convention used by the
        // estimators, which scale totals).
        let sum = compute_aggregate(&t, Some("mag"), AggregateKind::Sum, &sel).unwrap();
        assert_eq!(sum.value, Some(0.0));
    }

    #[test]
    fn value_aggregate_without_column_is_an_error() {
        let t = table();
        let sel = SelectionVector::all(5);
        assert!(matches!(
            compute_aggregate(&t, None, AggregateKind::Sum, &sel),
            Err(ColumnarError::InvalidArgument(_))
        ));
    }

    #[test]
    fn aggregate_on_string_column_is_an_error() {
        let t = table();
        let sel = SelectionVector::all(5);
        assert!(matches!(
            compute_aggregate(&t, Some("class"), AggregateKind::Sum, &sel),
            Err(ColumnarError::NotNumeric(_))
        ));
    }

    #[test]
    fn grouped_aggregates() {
        let t = table();
        let sel = SelectionVector::all(5);
        let groups =
            compute_grouped_aggregate(&t, "class", Some("mag"), AggregateKind::Avg, &sel).unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, "GALAXY");
        assert_eq!(groups[0].1.value, Some(30.0));
        assert_eq!(groups[1].0, "QSO");
        assert_eq!(groups[1].1.value, None);
        assert_eq!(groups[2].0, "STAR");
        assert_eq!(groups[2].1.value, Some(20.0));
    }

    #[test]
    fn grouped_aggregate_respects_selection() {
        let t = table();
        let sel = SelectionVector::from_rows(vec![0, 1]);
        let groups =
            compute_grouped_aggregate(&t, "class", None, AggregateKind::Count, &sel).unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.value, Some(1.0));
    }

    #[test]
    fn aggregate_kind_display() {
        assert_eq!(AggregateKind::Count.to_string(), "COUNT");
        assert_eq!(AggregateKind::Variance.to_string(), "VAR");
    }
}
