//! Typed tight-loop scan kernels.
//!
//! The vectorized execution pipeline compiles a [`crate::Predicate`] into a
//! [`crate::CompiledPredicate`] (column indices bound, constants type-widened
//! once) and then runs the kernels in this module over the raw column
//! vectors: `&[i64]`, `&[f64]`, `&[bool]`, `&[String]` plus their validity
//! bitmaps. No `Value` enum is materialised per row and strings are compared
//! by reference — the two per-row costs that dominate the scalar
//! `Predicate::evaluate` oracle.
//!
//! Every kernel scans a [`ScanDomain`]: either the full column (`0..len`) or
//! a candidate list produced by an earlier predicate of the same conjunction
//! (MonetDB-style candidate-list refinement). Matching row ids are emitted
//! into a [`SelectionSink`], which is where the *fused* execution comes from:
//!
//! * `Vec<usize>` materialises a selection vector (the classic path),
//! * [`CountSink`] just counts matches (fused COUNT),
//! * [`MomentSink`] streams the aggregated column's value of every matching
//!   row straight into a [`MomentSketch`] (fused filter+aggregate) — the
//!   selection is never materialised,
//! * [`WeightedMomentSink`] additionally expands every matching row by a
//!   caller-supplied single-draw selection probability, accumulating the
//!   Hansen–Hurwitz sufficient statistics of a
//!   [`WeightedMomentSketch`] (the streamed estimation path of biased
//!   impressions).
//!
//! ## The fused-aggregate contract
//!
//! A [`MomentSketch`] accumulates, in one pass and in row order:
//!
//! * `matched` — rows satisfying the predicate (COUNT(*) semantics: NULLs in
//!   the aggregated column still count),
//! * `count`, `sum`, `sum_sq` — non-NULL values seen, their running sum and
//!   sum of squares (the sufficient statistics of the SRS expansion
//!   estimators in `sciborq-stats`),
//! * `mean`, `m2` — Welford-style running mean and centred second moment
//!   (variance and t-interval inputs),
//! * `min`, `max` — running extremes.
//!
//! `sum`, `sum_sq`, `min` and `max` are accumulated with exactly the same
//! fold (same order, same operations) as the exact scalar
//! [`crate::compute_aggregate`], so COUNT/SUM/AVG/MIN/MAX results are
//! bit-identical between the fused and the scalar path; VARIANCE uses the
//! same Welford recurrence in both paths. `sciborq-stats` consumes the
//! sketch through `SrsEstimator::estimate_sum_parts` /
//! `estimate_avg_parts`, so estimates are built from the streamed
//! accumulators without re-walking any selection.
//!
//! NaN policy: a NaN *cell* encountered by a comparison kernel is an error
//! (the scalar oracle rejects unordered comparisons the same way); NaN
//! *constants* are detected at compile time and turned into an
//! "error-if-any-valid-row" node by `CompiledPredicate`.
// analyzer:allow-file(panic_path_index, reason = "kernels are the designated tight-loop tier: every index is bounds-established by the chunking/word math immediately above it, and checked indexing here would re-pay the bounds checks the kernel tier exists to amortise")

use crate::column::Bitmap;
use crate::expr::CompareOp;
use sciborq_stats::WeightedMomentSketch;

/// Which rows a kernel visits: the whole column, a contiguous row range (one
/// shard of a [`crate::Partitioning`]), or a sorted candidate list produced
/// by an earlier predicate of the same conjunction.
#[derive(Debug, Clone, Copy)]
pub enum ScanDomain<'a> {
    /// Scan rows `0..len`.
    Full(usize),
    /// Scan the contiguous rows `start..end` (absolute positions). This is
    /// the per-shard domain of the partitioned scan path: row ids emitted
    /// from a range are absolute, so per-shard results concatenate without
    /// rebasing.
    Range {
        /// First row (inclusive).
        start: usize,
        /// One past the last row.
        end: usize,
    },
    /// Scan exactly these (sorted, unique) row positions.
    Candidates(&'a [usize]),
}

impl ScanDomain<'_> {
    /// Number of rows the kernel will visit.
    pub fn len(&self) -> usize {
        match self {
            ScanDomain::Full(len) => *len,
            ScanDomain::Range { start, end } => end.saturating_sub(*start),
            ScanDomain::Candidates(rows) => rows.len(),
        }
    }

    /// True when the domain holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Consumer of matching row ids. Implementations decide whether matches are
/// materialised (selection vector), counted, or folded into aggregates.
pub trait SelectionSink {
    /// Accept one matching row. Rows arrive in ascending order.
    fn accept(&mut self, row: usize);

    /// Accept every row marked in a 64-bit match mask whose bit `i`
    /// corresponds to row `base + i`. The default iterates set bits in
    /// ascending order through [`SelectionSink::accept`], preserving the
    /// row-order fold contract; sinks that don't care about individual rows
    /// (counting) override it with a popcount.
    #[inline]
    fn accept_word(&mut self, base: usize, mut word: u64) {
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            self.accept(base + bit);
            word &= word - 1;
        }
    }
}

impl SelectionSink for Vec<usize> {
    #[inline]
    fn accept(&mut self, row: usize) {
        self.push(row);
    }
}

// A mutable reference to a sink is itself a sink, which is what lets the
// shared multi-query scan drive heterogeneous `&mut dyn SelectionSink`
// slots through the generic kernels.
impl<S: SelectionSink + ?Sized> SelectionSink for &mut S {
    #[inline]
    fn accept(&mut self, row: usize) {
        (**self).accept(row);
    }

    #[inline]
    fn accept_word(&mut self, base: usize, word: u64) {
        (**self).accept_word(base, word);
    }
}

/// Sink that only counts matches (fused COUNT kernel).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink(pub usize);

impl SelectionSink for CountSink {
    #[inline]
    fn accept(&mut self, _row: usize) {
        self.0 += 1;
    }

    #[inline]
    fn accept_word(&mut self, _base: usize, word: u64) {
        self.0 += word.count_ones() as usize;
    }
}

/// One-pass moment accumulator produced by the fused filter+aggregate
/// kernels. See the module docs for the exact contract.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct MomentSketch {
    /// Rows that satisfied the predicate (COUNT(*) semantics).
    pub matched: usize,
    /// Non-NULL aggregated values observed.
    pub count: usize,
    /// Running sum of the non-NULL values (same fold as the scalar path).
    pub sum: f64,
    /// Running sum of squares of the non-NULL values.
    pub sum_sq: f64,
    /// Welford running mean of the non-NULL values.
    pub mean: f64,
    /// Welford centred second moment (Σ (v − mean)²).
    pub m2: f64,
    /// Smallest non-NULL value (`+∞` when none).
    pub min: f64,
    /// Largest non-NULL value (`−∞` when none).
    pub max: f64,
}

impl MomentSketch {
    /// A fresh, empty sketch.
    pub fn new() -> Self {
        MomentSketch {
            matched: 0,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record a matching row whose aggregated value is NULL (or for which no
    /// aggregate column is tracked).
    #[inline]
    pub fn push_null(&mut self) {
        self.matched += 1;
    }

    /// Record a matching row with a non-NULL aggregated value.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.matched += 1;
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The aggregate value this sketch yields for a given kind, following
    /// the same conventions as [`crate::compute_aggregate`]: COUNT counts
    /// matched rows, SUM over no values is 0, AVG/MIN/MAX/VAR over no values
    /// are undefined (`None`).
    pub fn aggregate(&self, kind: crate::aggregate::AggregateKind) -> Option<f64> {
        use crate::aggregate::AggregateKind::*;
        match kind {
            Count => Some(self.matched as f64),
            Sum => Some(self.sum),
            Avg => (self.count > 0).then(|| self.sum / self.count as f64),
            Min => (self.count > 0).then_some(self.min),
            Max => (self.count > 0).then_some(self.max),
            Variance => (self.count > 0).then(|| self.m2 / self.count as f64),
        }
    }

    /// Number of rows that participated in the value aggregates (the
    /// non-NULL count), mirroring `AggregateResult::rows`.
    pub fn value_rows(&self) -> usize {
        self.count
    }
}

/// Typed access to the column a [`MomentSink`] aggregates over.
#[derive(Debug, Clone, Copy)]
pub enum AggSource<'a> {
    /// Int64 column (values widened to `f64` on the fly).
    I64(&'a [i64], Option<&'a Bitmap>),
    /// Float64 column.
    F64(&'a [f64], Option<&'a Bitmap>),
}

impl AggSource<'_> {
    #[inline]
    fn get(&self, row: usize) -> Option<f64> {
        match self {
            AggSource::I64(values, validity) => match validity {
                Some(v) if !v.get(row) => None,
                _ => Some(values[row] as f64),
            },
            AggSource::F64(values, validity) => match validity {
                Some(v) if !v.get(row) => None,
                _ => Some(values[row]),
            },
        }
    }
}

/// Sink that folds matching rows' aggregated values into a
/// [`MomentSketch`] — the terminal stage of a fused filter+aggregate scan.
#[derive(Debug)]
pub struct MomentSink<'a> {
    source: AggSource<'a>,
    /// The accumulated moments.
    pub sketch: MomentSketch,
}

impl<'a> MomentSink<'a> {
    /// Create a sink reading aggregated values from `source`.
    pub fn new(source: AggSource<'a>) -> Self {
        MomentSink {
            source,
            sketch: MomentSketch::new(),
        }
    }
}

impl SelectionSink for MomentSink<'_> {
    #[inline]
    fn accept(&mut self, row: usize) {
        match self.source.get(row) {
            Some(v) => self.sketch.push(v),
            None => self.sketch.push_null(),
        }
    }
}

/// Sink that folds matching rows into a [`WeightedMomentSketch`] — the
/// terminal stage of a fused *weighted* scan, the streamed estimation path
/// of biased (Hansen–Hurwitz) impressions.
///
/// Each matching row `i` contributes its aggregated value (or `1.0` for the
/// counting sink) expanded by the caller-supplied single-draw selection
/// probability `probabilities[i]`, accumulated inside the typed tight loop
/// in row order — the same fold, operation for operation, as the slice-based
/// `WeightedEstimator`, so streamed estimates stay bit-identical to the
/// selection-based oracle. Rows whose aggregated value is NULL only bump the
/// sketch's `matched` count (their zero-extension contributes nothing).
#[derive(Debug)]
pub struct WeightedMomentSink<'a> {
    /// The aggregated column; `None` makes every matching row contribute
    /// `1.0` (the fused weighted COUNT).
    source: Option<AggSource<'a>>,
    /// Per-row single-draw selection probabilities, aligned with the table.
    probabilities: &'a [f64],
    /// The accumulated Hansen–Hurwitz sufficient statistics.
    pub sketch: WeightedMomentSketch,
}

impl<'a> WeightedMomentSink<'a> {
    /// A sink aggregating `source` values weighted by `probabilities`.
    pub fn new(source: AggSource<'a>, probabilities: &'a [f64]) -> Self {
        WeightedMomentSink {
            source: Some(source),
            probabilities,
            sketch: WeightedMomentSketch::new(),
        }
    }

    /// A counting sink: every matching row contributes value `1.0`.
    pub fn counting(probabilities: &'a [f64]) -> Self {
        WeightedMomentSink {
            source: None,
            probabilities,
            sketch: WeightedMomentSketch::new(),
        }
    }
}

impl SelectionSink for WeightedMomentSink<'_> {
    #[inline]
    fn accept(&mut self, row: usize) {
        let p = self.probabilities[row];
        match &self.source {
            None => self.sketch.push(1.0, p),
            Some(source) => match source.get(row) {
                Some(v) => self.sketch.push(v, p),
                None => self.sketch.push_null(),
            },
        }
    }
}

/// Marker error for a kernel pass that hit an unordered (NaN) comparison.
/// The compiled layer maps this onto `ColumnarError::TypeMismatch` with the
/// proper column name, mirroring the scalar oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnorderedComparison;

/// Outcome of a kernel pass that may reject unordered (NaN) comparisons.
pub type KernelResult = Result<(), UnorderedComparison>;

#[inline]
fn is_valid(validity: Option<&Bitmap>, row: usize) -> bool {
    match validity {
        Some(v) => v.get(row),
        None => true,
    }
}

macro_rules! scan_rows {
    ($domain:expr, $row:ident, $body:block) => {
        match $domain {
            ScanDomain::Full(len) => {
                for $row in 0..len {
                    $body
                }
            }
            ScanDomain::Range { start, end } => {
                for $row in start..end {
                    $body
                }
            }
            ScanDomain::Candidates(rows) => {
                for &$row in rows {
                    $body
                }
            }
        }
    };
}

/// Emit every valid (non-NULL) row of the domain — the `TRUE` kernel over a
/// column, also used for `IS NOT NULL`.
pub fn scan_is_not_null<S: SelectionSink>(
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            out.accept(row);
        }
    });
}

/// Emit every NULL row of the domain (`IS NULL`).
pub fn scan_is_null<S: SelectionSink>(validity: Option<&Bitmap>, domain: ScanDomain, out: &mut S) {
    scan_rows!(domain, row, {
        if !is_valid(validity, row) {
            out.accept(row);
        }
    });
}

/// Emit every row of the domain (the unconditional `TRUE` kernel).
pub fn scan_all<S: SelectionSink>(domain: ScanDomain, out: &mut S) {
    scan_rows!(domain, row, {
        out.accept(row);
    });
}

/// True when any row of the domain is valid (non-NULL). Used by the
/// "error on first non-NULL row" nodes that preserve the oracle's lazy
/// type-mismatch semantics.
pub fn any_valid(validity: Option<&Bitmap>, domain: ScanDomain) -> bool {
    match validity {
        None => !domain.is_empty(),
        Some(v) => {
            let mut found = false;
            scan_rows!(domain, row, {
                if v.get(row) {
                    found = true;
                    break;
                }
            });
            found
        }
    }
}

#[inline]
fn cmp_keep<T: PartialOrd>(op: CompareOp, lhs: T, rhs: T) -> bool {
    match op {
        CompareOp::Eq => lhs == rhs,
        CompareOp::NotEq => lhs != rhs,
        CompareOp::Lt => lhs < rhs,
        CompareOp::LtEq => lhs <= rhs,
        CompareOp::Gt => lhs > rhs,
        CompareOp::GtEq => lhs >= rhs,
    }
}

/// Compare an Int64 column against an `i64` constant (exact 64-bit compare,
/// no widening).
pub fn scan_cmp_i64<S: SelectionSink>(
    values: &[i64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: i64,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row], bound) {
            out.accept(row);
        }
    });
}

/// Compare an Int64 column against an `f64` constant: each cell is widened
/// to `f64`, matching the scalar oracle's mixed-type comparison.
///
/// Errors when the constant is NaN (unordered) and any valid row exists.
pub fn scan_cmp_i64_f64<S: SelectionSink>(
    values: &[i64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: f64,
    out: &mut S,
) -> KernelResult {
    if bound.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row] as f64, bound) {
            out.accept(row);
        }
    });
    Ok(())
}

/// Compare a Float64 column against an `f64` constant (integer literals are
/// widened once at compile time).
///
/// A NaN cell is an unordered comparison and therefore an error, exactly as
/// in the scalar oracle; a NaN constant errors if any valid row exists.
pub fn scan_cmp_f64<S: SelectionSink>(
    values: &[f64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: f64,
    out: &mut S,
) -> KernelResult {
    if bound.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    let mut saw_nan = false;
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if v.is_nan() {
                saw_nan = true;
                break;
            }
            if cmp_keep(op, v, bound) {
                out.accept(row);
            }
        }
    });
    if saw_nan {
        Err(UnorderedComparison)
    } else {
        Ok(())
    }
}

/// Compare a Bool column against a boolean constant (`false < true`).
pub fn scan_cmp_bool<S: SelectionSink>(
    values: &[bool],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: bool,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row], bound) {
            out.accept(row);
        }
    });
}

/// Compare a Utf8 column against a string constant **by reference** — no
/// per-row `String` clone, unlike the historical scalar path.
pub fn scan_cmp_str<S: SelectionSink>(
    values: &[String],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: &str,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row].as_str(), bound) {
            out.accept(row);
        }
    });
}

/// A compiled numeric range bound: comparisons against an Int64 column stay
/// exact 64-bit compares when the literal is an integer, and widen to `f64`
/// when it is a float (mirroring `Value::partial_cmp_value`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumBound {
    /// Exact integer bound.
    I64(i64),
    /// Floating-point bound.
    F64(f64),
}

impl NumBound {
    /// The bound widened to `f64` (used against Float64 columns).
    pub fn as_f64(&self) -> f64 {
        match self {
            NumBound::I64(v) => *v as f64,
            NumBound::F64(v) => *v,
        }
    }

    /// Whether the bound is a NaN float (unordered against everything).
    pub fn is_nan(&self) -> bool {
        matches!(self, NumBound::F64(v) if v.is_nan())
    }

    #[inline]
    fn le_i64_cell(&self, cell: i64) -> bool {
        // bound <= cell
        match self {
            NumBound::I64(b) => *b <= cell,
            NumBound::F64(b) => *b <= cell as f64,
        }
    }

    #[inline]
    fn ge_i64_cell(&self, cell: i64) -> bool {
        // bound >= cell
        match self {
            NumBound::I64(b) => *b >= cell,
            NumBound::F64(b) => *b >= cell as f64,
        }
    }
}

/// One-pass inclusive range kernel over an Int64 column:
/// `low <= v && v <= high`, with each bound compared exactly (i64 vs i64)
/// or widened (i64 vs f64) according to its literal type.
///
/// This fixes the historical `Between` double scan: one pass, two compares.
pub fn scan_range_i64<S: SelectionSink>(
    values: &[i64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: NumBound,
    high: NumBound,
    out: &mut S,
) -> KernelResult {
    if low.is_nan() || high.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    if let (NumBound::I64(lo), NumBound::I64(hi)) = (low, high) {
        // fast path: pure 64-bit integer range
        scan_rows!(domain, row, {
            if is_valid(validity, row) {
                let v = values[row];
                if lo <= v && v <= hi {
                    out.accept(row);
                }
            }
        });
        return Ok(());
    }
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if low.le_i64_cell(v) && high.ge_i64_cell(v) {
                out.accept(row);
            }
        }
    });
    Ok(())
}

/// One-pass inclusive range kernel over a Float64 column (bounds widened to
/// `f64` at compile time). NaN cells are unordered and error, as in the
/// scalar oracle.
pub fn scan_range_f64<S: SelectionSink>(
    values: &[f64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: f64,
    high: f64,
    out: &mut S,
) -> KernelResult {
    if low.is_nan() || high.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    let mut saw_nan = false;
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if v.is_nan() {
                saw_nan = true;
                break;
            }
            if low <= v && v <= high {
                out.accept(row);
            }
        }
    });
    if saw_nan {
        Err(UnorderedComparison)
    } else {
        Ok(())
    }
}

/// One-pass inclusive range kernel over a Utf8 column (lexicographic, by
/// reference).
pub fn scan_range_str<S: SelectionSink>(
    values: &[String],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: &str,
    high: &str,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row].as_str();
            if low <= v && v <= high {
                out.accept(row);
            }
        }
    });
}

/// One-pass inclusive range kernel over a Bool column (`false < true`).
pub fn scan_range_bool<S: SelectionSink>(
    values: &[bool],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: bool,
    high: bool,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if low <= v && v <= high {
                out.accept(row);
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Chunked bitmask kernels
// ---------------------------------------------------------------------------
//
// The second scan tier: instead of testing the validity bitmap one bit per
// row and emitting candidates one at a time, these kernels evaluate 64-row
// chunks with branchless loops that build a `u64` match mask per word, AND
// it word-at-a-time against the validity bitmap, and refine conjunctions by
// wordwise intersection. Matches reach the existing `SelectionSink`s through
// [`SelectionSink::accept_word`], which iterates set bits in ascending row
// order — so the fused-aggregate fold order (and therefore bit-identity with
// the scalar oracle) is preserved.

/// A chunked match mask over the contiguous row range `start..end`.
///
/// Word `k` covers the absolute rows `(start/64 + k) * 64 .. +64`: words are
/// aligned to absolute 64-row chunk boundaries, so a validity-bitmap word
/// ANDs against the corresponding mask word directly, with no bit shifting,
/// even when `start` is not a multiple of 64. Bits outside `start..end` are
/// always zero — [`MatchMask::coverage`] seeds exactly the bits of
/// `start..end`, head and tail words partially set — which is what makes
/// popcounts, intersections and emission correct for table lengths that are
/// not multiples of 64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchMask {
    start: usize,
    end: usize,
    words: Vec<u64>,
}

impl MatchMask {
    /// A mask with exactly the bits of `start..end` set (the "all rows of
    /// this shard are still candidates" seed of a scan).
    pub fn coverage(start: usize, end: usize) -> Self {
        let end = end.max(start);
        let first_word = start / 64;
        let nwords = end.div_ceil(64).saturating_sub(first_word);
        let mut words = vec![u64::MAX; nwords];
        if nwords > 0 {
            words[0] &= u64::MAX << (start % 64);
            let last = nwords - 1;
            words[last] &= Bitmap::tail_mask(end);
        }
        MatchMask { start, end, words }
    }

    /// First row of the covered range (inclusive).
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last row of the covered range.
    pub fn end(&self) -> usize {
        self.end
    }

    /// Index (into the column's bitmap words) of this mask's first word.
    pub fn first_word(&self) -> usize {
        self.start / 64
    }

    /// The raw mask words, aligned to absolute 64-row chunks.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of set bits (candidate rows still alive).
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no candidate row survives.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Drop every candidate.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Wordwise intersection with `other` (same range); returns the
    /// surviving popcount. This is candidate-list refinement for
    /// conjunctions, one AND per 64 rows.
    pub fn and_with(&mut self, other: &MatchMask) -> usize {
        debug_assert_eq!((self.start, self.end), (other.start, other.end));
        let mut remaining = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
            remaining += w.count_ones() as usize;
        }
        remaining
    }

    /// Wordwise union with `other` (same range) — the disjunction combiner.
    pub fn or_with(&mut self, other: &MatchMask) {
        debug_assert_eq!((self.start, self.end), (other.start, other.end));
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Wordwise `self &= !other` (same range) — the negation combiner.
    /// `other`'s bits outside its coverage are zero, so complementing it
    /// cannot resurrect rows outside `start..end`: `self`'s own bits there
    /// are zero too.
    pub fn and_not(&mut self, other: &MatchMask) -> usize {
        debug_assert_eq!((self.start, self.end), (other.start, other.end));
        let mut remaining = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
            remaining += w.count_ones() as usize;
        }
        remaining
    }

    /// Emit every set bit into `sink`, in ascending row order (the fold
    /// contract downstream aggregates rely on).
    pub fn emit<S: SelectionSink + ?Sized>(&self, sink: &mut S) {
        let base0 = self.first_word() * 64;
        for (k, &w) in self.words.iter().enumerate() {
            if w != 0 {
                sink.accept_word(base0 + k * 64, w);
            }
        }
    }

    /// Materialise the set bits as a sorted row-id vector.
    pub fn to_rows(&self) -> Vec<usize> {
        let mut rows = Vec::new();
        self.emit(&mut rows);
        rows
    }
}

/// Outcome of one chunked refinement pass: how many candidate rows the
/// kernel logically tested (the rows-visited stats charge — popcount of the
/// incoming mask) and how many survived (popcount of the outgoing mask).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskScan {
    /// Candidate rows tested (incoming popcount).
    pub visited: usize,
    /// Candidate rows that matched (outgoing popcount).
    pub remaining: usize,
}

/// The generic chunked refinement driver: for every nonzero candidate word,
/// pre-AND the validity word, ask `f(base_row, valid_candidates)` for the
/// 64-lane value mask, and keep `candidates & validity & value_mask`.
/// Zero candidate words are skipped entirely — that is the wordwise
/// short-circuit that replaces candidate lists.
fn refine_mask<F>(
    mask: &mut MatchMask,
    validity: Option<&Bitmap>,
    mut f: F,
) -> Result<MaskScan, UnorderedComparison>
where
    F: FnMut(usize, u64) -> Result<u64, UnorderedComparison>,
{
    let first_word = mask.first_word();
    let mut scan = MaskScan::default();
    for (k, slot) in mask.words.iter_mut().enumerate() {
        let cand = *slot;
        if cand == 0 {
            continue;
        }
        scan.visited += cand.count_ones() as usize;
        let vword = match validity {
            Some(v) => v.words().get(first_word + k).copied().unwrap_or(0),
            None => u64::MAX,
        };
        let valid_cand = cand & vword;
        let kept = if valid_cand == 0 {
            0
        } else {
            valid_cand & f((first_word + k) * 64, valid_cand)?
        };
        *slot = kept;
        scan.remaining += kept.count_ones() as usize;
    }
    Ok(scan)
}

/// Build the 64-lane value mask for the chunk starting at `base`: bit `i` is
/// `test(values[base + i])`. The full-chunk case goes through a fixed-length
/// `[T; 64]` view so the loop trip count is a compile-time constant — the
/// shape LLVM turns into branchless vector compares; the tail chunk of a
/// length that is not a multiple of 64 takes the variable-length loop and
/// leaves the out-of-range lanes zero.
#[inline]
fn value_word<T: Copy>(values: &[T], base: usize, test: impl Fn(T) -> bool) -> u64 {
    let end = (base + 64).min(values.len());
    let mut word = 0u64;
    if let Ok(chunk) = <&[T; 64]>::try_from(&values[base..end]) {
        for (i, &v) in chunk.iter().enumerate() {
            word |= (test(v) as u64) << i;
        }
    } else {
        for (i, &v) in values[base..end].iter().enumerate() {
            word |= (test(v) as u64) << i;
        }
    }
    word
}

/// `value_word` for Float64 chunks, additionally reporting a NaN lane mask
/// so the caller can reject unordered comparisons only when a NaN cell is an
/// actual (valid, candidate) row — matching the scalar oracle, which never
/// looks at rows outside the domain.
#[inline]
fn value_word_f64(values: &[f64], base: usize, test: impl Fn(f64) -> bool) -> (u64, u64) {
    let end = (base + 64).min(values.len());
    let mut word = 0u64;
    let mut nan = 0u64;
    if let Ok(chunk) = <&[f64; 64]>::try_from(&values[base..end]) {
        for (i, &v) in chunk.iter().enumerate() {
            word |= (test(v) as u64) << i;
            nan |= (v.is_nan() as u64) << i;
        }
    } else {
        for (i, &v) in values[base..end].iter().enumerate() {
            word |= (test(v) as u64) << i;
            nan |= (v.is_nan() as u64) << i;
        }
    }
    (word, nan)
}

/// `value_word` for Utf8 chunks (no `Copy`, compares by `&str` reference).
#[inline]
fn value_word_str(values: &[String], base: usize, test: impl Fn(&str) -> bool) -> u64 {
    let end = (base + 64).min(values.len());
    let mut word = 0u64;
    for (i, v) in values[base..end].iter().enumerate() {
        word |= (test(v.as_str()) as u64) << i;
    }
    word
}

/// Infallible refinement over a `Copy` column.
#[inline]
fn refine_plain<T: Copy>(
    values: &[T],
    validity: Option<&Bitmap>,
    mask: &mut MatchMask,
    test: impl Fn(T) -> bool + Copy,
) -> MaskScan {
    match refine_mask(mask, validity, |base, _| Ok(value_word(values, base, test))) {
        Ok(scan) => scan,
        // analyzer:allow(panic_path, reason = "the refinement closure is Ok-only; Err is unrepresentable here and the match arm exists only to satisfy the Result type")
        Err(_) => unreachable!("infallible refinement"),
    }
}

/// Dispatch a comparison operator once (outside the loop) into a
/// monomorphized branchless refinement; `key` projects the cell into the
/// comparison domain (identity for exact compares, `as f64` widening for
/// mixed i64-vs-float literals).
#[inline]
fn refine_cmp_by<T, K, F>(
    values: &[T],
    validity: Option<&Bitmap>,
    op: CompareOp,
    bound: K,
    key: F,
    mask: &mut MatchMask,
) -> MaskScan
where
    T: Copy,
    K: PartialOrd + Copy,
    F: Fn(T) -> K + Copy,
{
    match op {
        CompareOp::Eq => refine_plain(values, validity, mask, move |v| key(v) == bound),
        CompareOp::NotEq => refine_plain(values, validity, mask, move |v| key(v) != bound),
        CompareOp::Lt => refine_plain(values, validity, mask, move |v| key(v) < bound),
        CompareOp::LtEq => refine_plain(values, validity, mask, move |v| key(v) <= bound),
        CompareOp::Gt => refine_plain(values, validity, mask, move |v| key(v) > bound),
        CompareOp::GtEq => refine_plain(values, validity, mask, move |v| key(v) >= bound),
    }
}

/// Fallible refinement over a Float64 column: NaN cells among the valid
/// candidates of a chunk reject the whole scan, as in the scalar oracle.
#[inline]
fn refine_f64(
    values: &[f64],
    validity: Option<&Bitmap>,
    mask: &mut MatchMask,
    test: impl Fn(f64) -> bool + Copy,
) -> Result<MaskScan, UnorderedComparison> {
    refine_mask(mask, validity, |base, valid_cand| {
        let (word, nan) = value_word_f64(values, base, test);
        if nan & valid_cand != 0 {
            Err(UnorderedComparison)
        } else {
            Ok(word)
        }
    })
}

/// NaN-constant handling shared by the fallible mask kernels: error if any
/// valid candidate row exists (the comparison would be unordered for it),
/// otherwise no row matches.
fn nan_bound_refine(
    validity: Option<&Bitmap>,
    mask: &mut MatchMask,
) -> Result<MaskScan, UnorderedComparison> {
    if mask_any_valid(validity, mask) {
        return Err(UnorderedComparison);
    }
    let visited = mask.popcount();
    mask.clear();
    Ok(MaskScan {
        visited,
        remaining: 0,
    })
}

/// True when any candidate row of the mask is valid (non-NULL) — the chunked
/// counterpart of [`any_valid`] for the lazy type-mismatch nodes.
pub fn mask_any_valid(validity: Option<&Bitmap>, mask: &MatchMask) -> bool {
    match validity {
        None => !mask.is_empty(),
        Some(v) => {
            let first_word = mask.first_word();
            mask.words
                .iter()
                .enumerate()
                .any(|(k, &w)| w & v.words().get(first_word + k).copied().unwrap_or(0) != 0)
        }
    }
}

/// The unconditional `TRUE` refinement: every candidate survives.
pub fn mask_all(mask: &MatchMask) -> MaskScan {
    let n = mask.popcount();
    MaskScan {
        visited: n,
        remaining: n,
    }
}

/// Chunked `IS NOT NULL`: one AND per 64 rows against the validity words.
pub fn mask_is_not_null(validity: Option<&Bitmap>, mask: &mut MatchMask) -> MaskScan {
    match validity {
        None => mask_all(mask),
        Some(v) => {
            let visited = mask.popcount();
            v.and_into(mask.first_word(), &mut mask.words);
            let remaining = mask.popcount();
            MaskScan { visited, remaining }
        }
    }
}

/// Chunked `IS NULL`: keep candidates whose validity bit is clear.
pub fn mask_is_null(validity: Option<&Bitmap>, mask: &mut MatchMask) -> MaskScan {
    match validity {
        None => {
            let visited = mask.popcount();
            mask.clear();
            MaskScan {
                visited,
                remaining: 0,
            }
        }
        Some(v) => {
            let first_word = mask.first_word();
            let mut scan = MaskScan::default();
            for (k, slot) in mask.words.iter_mut().enumerate() {
                let cand = *slot;
                if cand == 0 {
                    continue;
                }
                scan.visited += cand.count_ones() as usize;
                let vword = v.words().get(first_word + k).copied().unwrap_or(0);
                let kept = cand & !vword;
                *slot = kept;
                scan.remaining += kept.count_ones() as usize;
            }
            scan
        }
    }
}

/// Chunked compare of an Int64 column against an `i64` constant (exact
/// 64-bit compare, no widening).
pub fn mask_cmp_i64(
    values: &[i64],
    validity: Option<&Bitmap>,
    op: CompareOp,
    bound: i64,
    mask: &mut MatchMask,
) -> MaskScan {
    refine_cmp_by(values, validity, op, bound, |v| v, mask)
}

/// Chunked compare of an Int64 column against an `f64` constant (cells
/// widened per lane, as in the scalar oracle's mixed-type comparison).
pub fn mask_cmp_i64_f64(
    values: &[i64],
    validity: Option<&Bitmap>,
    op: CompareOp,
    bound: f64,
    mask: &mut MatchMask,
) -> Result<MaskScan, UnorderedComparison> {
    if bound.is_nan() {
        return nan_bound_refine(validity, mask);
    }
    Ok(refine_cmp_by(
        values,
        validity,
        op,
        bound,
        |v| v as f64,
        mask,
    ))
}

/// Chunked compare of a Float64 column against an `f64` constant. NaN cells
/// among valid candidates error, as do NaN constants over any valid
/// candidate.
pub fn mask_cmp_f64(
    values: &[f64],
    validity: Option<&Bitmap>,
    op: CompareOp,
    bound: f64,
    mask: &mut MatchMask,
) -> Result<MaskScan, UnorderedComparison> {
    if bound.is_nan() {
        return nan_bound_refine(validity, mask);
    }
    match op {
        CompareOp::Eq => refine_f64(values, validity, mask, move |v| v == bound),
        CompareOp::NotEq => refine_f64(values, validity, mask, move |v| v != bound),
        CompareOp::Lt => refine_f64(values, validity, mask, move |v| v < bound),
        CompareOp::LtEq => refine_f64(values, validity, mask, move |v| v <= bound),
        CompareOp::Gt => refine_f64(values, validity, mask, move |v| v > bound),
        CompareOp::GtEq => refine_f64(values, validity, mask, move |v| v >= bound),
    }
}

/// Chunked compare of a Bool column against a boolean constant.
pub fn mask_cmp_bool(
    values: &[bool],
    validity: Option<&Bitmap>,
    op: CompareOp,
    bound: bool,
    mask: &mut MatchMask,
) -> MaskScan {
    refine_cmp_by(values, validity, op, bound, |v| v, mask)
}

/// Chunked compare of a plain (non-dictionary) Utf8 column against a string
/// constant, by reference.
pub fn mask_cmp_str(
    values: &[String],
    validity: Option<&Bitmap>,
    op: CompareOp,
    bound: &str,
    mask: &mut MatchMask,
) -> MaskScan {
    let scan = match op {
        CompareOp::Eq => refine_mask(mask, validity, |b, _| {
            Ok(value_word_str(values, b, |v| v == bound))
        }),
        CompareOp::NotEq => refine_mask(mask, validity, |b, _| {
            Ok(value_word_str(values, b, |v| v != bound))
        }),
        CompareOp::Lt => refine_mask(mask, validity, |b, _| {
            Ok(value_word_str(values, b, |v| v < bound))
        }),
        CompareOp::LtEq => refine_mask(mask, validity, |b, _| {
            Ok(value_word_str(values, b, |v| v <= bound))
        }),
        CompareOp::Gt => refine_mask(mask, validity, |b, _| {
            Ok(value_word_str(values, b, |v| v > bound))
        }),
        CompareOp::GtEq => refine_mask(mask, validity, |b, _| {
            Ok(value_word_str(values, b, |v| v >= bound))
        }),
    };
    match scan {
        Ok(s) => s,
        // analyzer:allow(panic_path, reason = "the refinement closure is Ok-only; Err is unrepresentable here and the match arm exists only to satisfy the Result type")
        Err(_) => unreachable!("infallible refinement"),
    }
}

/// Chunked inclusive range over an Int64 column (bounds exact or widened per
/// literal type, one pass).
pub fn mask_range_i64(
    values: &[i64],
    validity: Option<&Bitmap>,
    low: NumBound,
    high: NumBound,
    mask: &mut MatchMask,
) -> Result<MaskScan, UnorderedComparison> {
    if low.is_nan() || high.is_nan() {
        return nan_bound_refine(validity, mask);
    }
    if let (NumBound::I64(lo), NumBound::I64(hi)) = (low, high) {
        // fast path: pure 64-bit integer range
        return Ok(refine_plain(values, validity, mask, move |v| {
            lo <= v && v <= hi
        }));
    }
    Ok(refine_plain(values, validity, mask, move |v| {
        low.le_i64_cell(v) && high.ge_i64_cell(v)
    }))
}

/// Chunked inclusive range over a Float64 column. NaN cells among valid
/// candidates error.
pub fn mask_range_f64(
    values: &[f64],
    validity: Option<&Bitmap>,
    low: f64,
    high: f64,
    mask: &mut MatchMask,
) -> Result<MaskScan, UnorderedComparison> {
    if low.is_nan() || high.is_nan() {
        return nan_bound_refine(validity, mask);
    }
    refine_f64(values, validity, mask, move |v| low <= v && v <= high)
}

/// Chunked inclusive range over a plain Utf8 column (lexicographic, by
/// reference).
pub fn mask_range_str(
    values: &[String],
    validity: Option<&Bitmap>,
    low: &str,
    high: &str,
    mask: &mut MatchMask,
) -> MaskScan {
    match refine_mask(mask, validity, |b, _| {
        Ok(value_word_str(values, b, |v| low <= v && v <= high))
    }) {
        Ok(s) => s,
        // analyzer:allow(panic_path, reason = "the refinement closure is Ok-only; Err is unrepresentable here and the match arm exists only to satisfy the Result type")
        Err(_) => unreachable!("infallible refinement"),
    }
}

/// Chunked inclusive range over a Bool column.
pub fn mask_range_bool(
    values: &[bool],
    validity: Option<&Bitmap>,
    low: bool,
    high: bool,
    mask: &mut MatchMask,
) -> MaskScan {
    refine_plain(values, validity, mask, move |v| low <= v && v <= high)
}

// ---------------------------------------------------------------------------
// Dictionary-code predicates
// ---------------------------------------------------------------------------

/// A string predicate translated into dictionary-code space.
///
/// `Column::Utf8Dict` keeps its dictionary sorted and deduplicated, so code
/// order *is* lexicographic order and every comparison against a string
/// constant collapses — after one binary search over the (tiny) dictionary —
/// into an integer test over the codes, which the chunked kernels then scan
/// branchlessly. The translation happens once per scan, at kernel-dispatch
/// time, because the dictionary lives with the column, not the compiled
/// predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictPred {
    /// No row can match (e.g. equality against a value absent from the
    /// dictionary, or an empty code range).
    None,
    /// Every valid row matches (inequality against an absent value).
    AnyValid,
    /// Rows whose code falls in the half-open range `lo..hi` match. All six
    /// comparison operators and BETWEEN reduce to this form because the
    /// dictionary is sorted.
    CodeRange {
        /// First matching code (inclusive).
        lo: u32,
        /// One past the last matching code.
        hi: u32,
    },
    /// Rows whose code differs match (inequality against a present value).
    CodeNotEq(u32),
}

impl DictPred {
    /// Translate `column <op> bound` into code space for a sorted `dict`.
    pub fn compare(dict: &[String], op: CompareOp, bound: &str) -> DictPred {
        let lo = dict.partition_point(|s| s.as_str() < bound);
        let found = dict.get(lo).is_some_and(|s| s == bound);
        let lo32 = lo as u32;
        let len = dict.len() as u32;
        let range = |a: u32, b: u32| {
            if a < b {
                DictPred::CodeRange { lo: a, hi: b }
            } else {
                DictPred::None
            }
        };
        match op {
            CompareOp::Eq => {
                if found {
                    DictPred::CodeRange {
                        lo: lo32,
                        hi: lo32 + 1,
                    }
                } else {
                    DictPred::None
                }
            }
            CompareOp::NotEq => {
                if found {
                    DictPred::CodeNotEq(lo32)
                } else {
                    DictPred::AnyValid
                }
            }
            CompareOp::Lt => range(0, lo32),
            CompareOp::LtEq => range(0, lo32 + found as u32),
            CompareOp::Gt => range(lo32 + found as u32, len),
            CompareOp::GtEq => range(lo32, len),
        }
    }

    /// Translate `low <= column <= high` (inclusive BETWEEN) into code
    /// space for a sorted `dict`.
    pub fn range(dict: &[String], low: &str, high: &str) -> DictPred {
        let lo = dict.partition_point(|s| s.as_str() < low) as u32;
        let hi = dict.partition_point(|s| s.as_str() <= high) as u32;
        if lo < hi {
            DictPred::CodeRange { lo, hi }
        } else {
            DictPred::None
        }
    }
}

/// Chunked scan of a dictionary-encoded Utf8 column: a pure integer-code
/// compare through the branchless refinement driver.
pub fn mask_dict(
    codes: &[u32],
    validity: Option<&Bitmap>,
    pred: DictPred,
    mask: &mut MatchMask,
) -> MaskScan {
    match pred {
        DictPred::None => {
            let visited = mask.popcount();
            mask.clear();
            MaskScan {
                visited,
                remaining: 0,
            }
        }
        DictPred::AnyValid => mask_is_not_null(validity, mask),
        DictPred::CodeRange { lo, hi } => {
            refine_plain(codes, validity, mask, move |c| lo <= c && c < hi)
        }
        DictPred::CodeNotEq(k) => refine_plain(codes, validity, mask, move |c| c != k),
    }
}

/// Row-at-a-time scan of a dictionary-encoded Utf8 column — the legacy-tier
/// counterpart of [`mask_dict`], used by the candidate-list path.
pub fn scan_dict<S: SelectionSink>(
    codes: &[u32],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    pred: DictPred,
    out: &mut S,
) {
    match pred {
        DictPred::None => {}
        DictPred::AnyValid => scan_is_not_null(validity, domain, out),
        DictPred::CodeRange { lo, hi } => {
            scan_rows!(domain, row, {
                if is_valid(validity, row) {
                    let c = codes[row];
                    if lo <= c && c < hi {
                        out.accept(row);
                    }
                }
            });
        }
        DictPred::CodeNotEq(k) => {
            scan_rows!(domain, row, {
                if is_valid(validity, row) && codes[row] != k {
                    out.accept(row);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;

    fn bitmap(bits: &[bool]) -> Bitmap {
        let mut bm = Bitmap::new();
        for &b in bits {
            bm.push(b);
        }
        bm
    }

    #[test]
    fn domain_len() {
        assert_eq!(ScanDomain::Full(5).len(), 5);
        assert!(ScanDomain::Full(0).is_empty());
        let rows = [1usize, 3];
        assert_eq!(ScanDomain::Candidates(&rows).len(), 2);
        assert_eq!(ScanDomain::Range { start: 2, end: 7 }.len(), 5);
        assert!(ScanDomain::Range { start: 3, end: 3 }.is_empty());
    }

    #[test]
    fn range_domain_scans_absolute_positions() {
        let values = [5i64, -2, 9, 0, 7];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Range { start: 1, end: 4 },
            CompareOp::GtEq,
            0,
            &mut out,
        );
        // rows 2 and 3 qualify within the range; row ids stay absolute
        assert_eq!(out, vec![2, 3]);
        let validity = bitmap(&[true, true, false, true, true]);
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            Some(&validity),
            ScanDomain::Range { start: 1, end: 4 },
            CompareOp::GtEq,
            0,
            &mut out,
        );
        assert_eq!(out, vec![3]);
        assert!(!any_valid(
            Some(&validity),
            ScanDomain::Range { start: 2, end: 3 }
        ));
        assert!(!any_valid(None, ScanDomain::Range { start: 2, end: 2 }));
    }

    #[test]
    fn cmp_i64_full_and_candidates() {
        let values = [5i64, -2, 9, 0, 7];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Full(5),
            CompareOp::Gt,
            0,
            &mut out,
        );
        assert_eq!(out, vec![0, 2, 4]);
        let candidates = [2usize, 3, 4];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Candidates(&candidates),
            CompareOp::Gt,
            0,
            &mut out,
        );
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn cmp_respects_validity() {
        let values = [1i64, 2, 3];
        let validity = bitmap(&[true, false, true]);
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            Some(&validity),
            ScanDomain::Full(3),
            CompareOp::GtEq,
            0,
            &mut out,
        );
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn exact_i64_comparison_not_widened() {
        // 2^63 - 1 and 2^63 - 2 collapse to the same f64; the i64 kernel
        // must still tell them apart.
        let values = [i64::MAX, i64::MAX - 1];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Full(2),
            CompareOp::Eq,
            i64::MAX,
            &mut out,
        );
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn f64_nan_cell_errors() {
        let values = [1.0, f64::NAN];
        let mut out = Vec::new();
        let r = scan_cmp_f64(
            &values,
            None,
            ScanDomain::Full(2),
            CompareOp::Lt,
            5.0,
            &mut out,
        );
        assert!(r.is_err());
    }

    #[test]
    fn f64_nan_bound_errors_only_with_valid_rows() {
        let values = [1.0];
        let mut out = Vec::new();
        assert!(scan_cmp_f64(
            &values,
            None,
            ScanDomain::Full(1),
            CompareOp::Lt,
            f64::NAN,
            &mut out
        )
        .is_err());
        let validity = bitmap(&[false]);
        let mut out = Vec::new();
        assert!(scan_cmp_f64(
            &values,
            Some(&validity),
            ScanDomain::Full(1),
            CompareOp::Lt,
            f64::NAN,
            &mut out
        )
        .is_ok());
        assert!(out.is_empty());
    }

    #[test]
    fn one_pass_ranges() {
        let ints = [1i64, 5, 10, -3];
        let mut out = Vec::new();
        scan_range_i64(
            &ints,
            None,
            ScanDomain::Full(4),
            NumBound::I64(0),
            NumBound::I64(5),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, vec![0, 1]);

        let floats = [0.5, 2.5, 7.0];
        let mut out = Vec::new();
        scan_range_f64(&floats, None, ScanDomain::Full(3), 1.0, 3.0, &mut out).unwrap();
        assert_eq!(out, vec![1]);

        let strings: Vec<String> = ["ant", "bee", "cow"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        scan_range_str(&strings, None, ScanDomain::Full(3), "b", "c", &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn mixed_bound_range_keeps_i64_exact() {
        let values = [i64::MAX, 10];
        let mut out = Vec::new();
        // low is an exact integer bound, high widens: i64::MAX must qualify
        scan_range_i64(
            &values,
            None,
            ScanDomain::Full(2),
            NumBound::I64(i64::MAX),
            NumBound::F64(f64::INFINITY),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn str_kernel_compares_by_reference() {
        let values: Vec<String> = ["GALAXY", "STAR", "GALAXY"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        scan_cmp_str(
            &values,
            None,
            ScanDomain::Full(3),
            CompareOp::Eq,
            "GALAXY",
            &mut out,
        );
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn null_kernels() {
        let validity = bitmap(&[true, false, true, false]);
        let mut nulls = Vec::new();
        scan_is_null(Some(&validity), ScanDomain::Full(4), &mut nulls);
        assert_eq!(nulls, vec![1, 3]);
        let mut valid = Vec::new();
        scan_is_not_null(Some(&validity), ScanDomain::Full(4), &mut valid);
        assert_eq!(valid, vec![0, 2]);
        let mut all = Vec::new();
        scan_is_not_null(None, ScanDomain::Full(3), &mut all);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn count_sink_counts() {
        let values = [1.0, 2.0, 3.0];
        let mut sink = CountSink::default();
        scan_cmp_f64(
            &values,
            None,
            ScanDomain::Full(3),
            CompareOp::Gt,
            1.5,
            &mut sink,
        )
        .unwrap();
        assert_eq!(sink.0, 2);
    }

    #[test]
    fn moment_sketch_matches_naive_folds() {
        let values = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut sketch = MomentSketch::new();
        for &v in &values {
            sketch.push(v);
        }
        sketch.push_null();
        assert_eq!(sketch.matched, 9);
        assert_eq!(sketch.count, 8);
        assert_eq!(sketch.aggregate(AggregateKind::Count), Some(9.0));
        assert_eq!(sketch.aggregate(AggregateKind::Sum), Some(40.0));
        assert_eq!(sketch.aggregate(AggregateKind::Avg), Some(5.0));
        assert_eq!(sketch.aggregate(AggregateKind::Min), Some(2.0));
        assert_eq!(sketch.aggregate(AggregateKind::Max), Some(9.0));
        let var = sketch.aggregate(AggregateKind::Variance).unwrap();
        assert!((var - 4.0).abs() < 1e-12);
        assert_eq!(sketch.value_rows(), 8);
    }

    #[test]
    fn empty_sketch_conventions() {
        let sketch = MomentSketch::new();
        assert_eq!(sketch.aggregate(AggregateKind::Count), Some(0.0));
        assert_eq!(sketch.aggregate(AggregateKind::Sum), Some(0.0));
        assert_eq!(sketch.aggregate(AggregateKind::Avg), None);
        assert_eq!(sketch.aggregate(AggregateKind::Min), None);
        assert_eq!(sketch.aggregate(AggregateKind::Max), None);
        assert_eq!(sketch.aggregate(AggregateKind::Variance), None);
    }

    #[test]
    fn moment_sink_reads_agg_column() {
        let agg = [10.0f64, 20.0, 30.0];
        let validity = bitmap(&[true, false, true]);
        let mut sink = MomentSink::new(AggSource::F64(&agg, Some(&validity)));
        let pred_values = [1i64, 1, 1];
        scan_cmp_i64(
            &pred_values,
            None,
            ScanDomain::Full(3),
            CompareOp::Eq,
            1,
            &mut sink,
        );
        assert_eq!(sink.sketch.matched, 3);
        assert_eq!(sink.sketch.count, 2);
        assert_eq!(sink.sketch.sum, 40.0);
    }

    #[test]
    fn any_valid_checks() {
        let validity = bitmap(&[false, false, true]);
        assert!(any_valid(Some(&validity), ScanDomain::Full(3)));
        assert!(!any_valid(Some(&validity), ScanDomain::Full(2)));
        let c = [0usize, 1];
        assert!(!any_valid(Some(&validity), ScanDomain::Candidates(&c)));
        assert!(any_valid(None, ScanDomain::Full(1)));
        assert!(!any_valid(None, ScanDomain::Full(0)));
    }

    #[test]
    fn coverage_mask_head_and_tail() {
        let m = MatchMask::coverage(5, 130);
        assert_eq!(m.popcount(), 125);
        assert_eq!(m.to_rows(), (5..130).collect::<Vec<_>>());
        // word 0 covers rows 0..64: bits below 5 must be clear
        assert_eq!(m.words()[0] & 0b11111, 0);
        // word 2 covers rows 128..192: bits at/above 130 must be clear
        assert_eq!(m.words()[2], 0b11);
        assert!(MatchMask::coverage(7, 7).is_empty());
        let aligned = MatchMask::coverage(64, 128);
        assert_eq!(aligned.words(), &[u64::MAX]);
        assert_eq!(aligned.first_word(), 1);
    }

    #[test]
    fn accept_word_emits_ascending_and_count_sink_popcounts() {
        let mut rows = Vec::new();
        rows.accept_word(64, 0b1010_0001);
        assert_eq!(rows, vec![64, 69, 71]);
        let mut count = CountSink::default();
        count.accept_word(0, u64::MAX);
        assert_eq!(count.0, 64);
    }

    /// The chunked kernels must agree with the row-at-a-time kernels on an
    /// unaligned range with scattered NULLs.
    #[test]
    fn mask_cmp_i64_matches_rowwise() {
        let n = 131usize;
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 23).collect();
        let validity = bitmap(&(0..n).map(|i| i % 5 != 0).collect::<Vec<_>>());
        for op in [
            CompareOp::Eq,
            CompareOp::NotEq,
            CompareOp::Lt,
            CompareOp::LtEq,
            CompareOp::Gt,
            CompareOp::GtEq,
        ] {
            let mut mask = MatchMask::coverage(3, 130);
            let scan = mask_cmp_i64(&values, Some(&validity), op, 11, &mut mask);
            let mut expect = Vec::new();
            scan_cmp_i64(
                &values,
                Some(&validity),
                ScanDomain::Range { start: 3, end: 130 },
                op,
                11,
                &mut expect,
            );
            assert_eq!(mask.to_rows(), expect, "op {op:?}");
            assert_eq!(scan.visited, 127);
            assert_eq!(scan.remaining, expect.len());
        }
    }

    #[test]
    fn mask_conjunction_refines_wordwise() {
        let n = 70usize;
        let a: Vec<i64> = (0..n as i64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let mut mask = MatchMask::coverage(0, n);
        let first = mask_cmp_i64(&a, None, CompareOp::GtEq, 10, &mut mask);
        assert_eq!((first.visited, first.remaining), (70, 60));
        let second = mask_cmp_f64(&b, None, CompareOp::Eq, 1.0, &mut mask).unwrap();
        // the second conjunct only tests survivors of the first
        assert_eq!(second.visited, 60);
        assert_eq!(second.remaining, 30);
        assert!(mask.to_rows().iter().all(|&r| r >= 10 && r % 2 == 1));
    }

    #[test]
    fn mask_f64_nan_cell_errors_only_when_candidate_and_valid() {
        let values = [1.0, f64::NAN, 3.0];
        // NaN is a candidate and valid: error
        let mut mask = MatchMask::coverage(0, 3);
        assert!(mask_cmp_f64(&values, None, CompareOp::Lt, 5.0, &mut mask).is_err());
        // NaN is NULL: fine
        let validity = bitmap(&[true, false, true]);
        let mut mask = MatchMask::coverage(0, 3);
        let scan = mask_cmp_f64(&values, Some(&validity), CompareOp::Lt, 5.0, &mut mask).unwrap();
        assert_eq!(mask.to_rows(), vec![0, 2]);
        assert_eq!(scan.remaining, 2);
        // NaN is outside the candidate range: fine
        let mut mask = MatchMask::coverage(2, 3);
        assert!(mask_cmp_f64(&values, None, CompareOp::Lt, 5.0, &mut mask).is_ok());
        // NaN *bound* errors only when a valid candidate exists
        let mut mask = MatchMask::coverage(0, 3);
        assert!(mask_cmp_f64(&values, None, CompareOp::Lt, f64::NAN, &mut mask).is_err());
        let none = bitmap(&[false, false, false]);
        let mut mask = MatchMask::coverage(0, 3);
        let scan = mask_cmp_f64(&values, Some(&none), CompareOp::Lt, f64::NAN, &mut mask).unwrap();
        assert_eq!(scan.remaining, 0);
        assert!(mask.is_empty());
    }

    #[test]
    fn mask_range_and_null_kernels() {
        let ints: Vec<i64> = (0..100).collect();
        let mut mask = MatchMask::coverage(0, 100);
        mask_range_i64(
            &ints,
            None,
            NumBound::I64(10),
            NumBound::F64(12.5),
            &mut mask,
        )
        .unwrap();
        assert_eq!(mask.to_rows(), vec![10, 11, 12]);

        let validity = bitmap(&(0..100).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let mut nulls = MatchMask::coverage(0, 100);
        let scan = mask_is_null(Some(&validity), &mut nulls);
        assert_eq!(scan.remaining, nulls.popcount());
        let mut valid = MatchMask::coverage(0, 100);
        mask_is_not_null(Some(&validity), &mut valid);
        let mut all = MatchMask::coverage(0, 100);
        assert_eq!(mask_all(&all).remaining, 100);
        let survivors = valid.and_not(&nulls);
        assert_eq!(survivors, valid.popcount());
        all.and_with(&valid);
        assert_eq!(
            all.to_rows(),
            (0..100).filter(|i| i % 3 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dict_pred_translation() {
        let dict: Vec<String> = ["GALAXY", "QSO", "STAR"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        use DictPred::*;
        assert_eq!(
            DictPred::compare(&dict, CompareOp::Eq, "QSO"),
            CodeRange { lo: 1, hi: 2 }
        );
        assert_eq!(DictPred::compare(&dict, CompareOp::Eq, "NOVA"), None);
        assert_eq!(
            DictPred::compare(&dict, CompareOp::NotEq, "QSO"),
            CodeNotEq(1)
        );
        assert_eq!(DictPred::compare(&dict, CompareOp::NotEq, "NOVA"), AnyValid);
        assert_eq!(
            DictPred::compare(&dict, CompareOp::Lt, "QSO"),
            CodeRange { lo: 0, hi: 1 }
        );
        assert_eq!(DictPred::compare(&dict, CompareOp::Lt, "GALAXY"), None);
        assert_eq!(
            DictPred::compare(&dict, CompareOp::LtEq, "QSO"),
            CodeRange { lo: 0, hi: 2 }
        );
        assert_eq!(
            DictPred::compare(&dict, CompareOp::Gt, "QSO"),
            CodeRange { lo: 2, hi: 3 }
        );
        assert_eq!(DictPred::compare(&dict, CompareOp::Gt, "STAR"), None);
        assert_eq!(
            DictPred::compare(&dict, CompareOp::GtEq, "QSO"),
            CodeRange { lo: 1, hi: 3 }
        );
        // the bound need not be in the dictionary
        assert_eq!(
            DictPred::compare(&dict, CompareOp::Gt, "NOVA"),
            CodeRange { lo: 1, hi: 3 }
        );
        assert_eq!(DictPred::range(&dict, "H", "R"), CodeRange { lo: 1, hi: 2 });
        assert_eq!(DictPred::range(&dict, "T", "A"), None);
        assert_eq!(
            DictPred::range(&dict, "GALAXY", "STAR"),
            CodeRange { lo: 0, hi: 3 }
        );
    }

    #[test]
    fn dict_kernels_match_decoded_strings() {
        let dict: Vec<String> = ["GALAXY", "QSO", "STAR"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let n = 67usize;
        let codes: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        let strings: Vec<String> = codes.iter().map(|&c| dict[c as usize].clone()).collect();
        let validity = bitmap(&(0..n).map(|i| i % 7 != 0).collect::<Vec<_>>());
        for (op, bound) in [
            (CompareOp::Eq, "QSO"),
            (CompareOp::NotEq, "QSO"),
            (CompareOp::Lt, "STAR"),
            (CompareOp::GtEq, "NOVA"),
        ] {
            let pred = DictPred::compare(&dict, op, bound);
            let mut mask = MatchMask::coverage(0, n);
            mask_dict(&codes, Some(&validity), pred, &mut mask);
            let mut expect = Vec::new();
            scan_cmp_str(
                &strings,
                Some(&validity),
                ScanDomain::Full(n),
                op,
                bound,
                &mut expect,
            );
            assert_eq!(mask.to_rows(), expect, "op {op:?} bound {bound}");
            // and the row-at-a-time dict kernel agrees too
            let mut rowwise = Vec::new();
            scan_dict(
                &codes,
                Some(&validity),
                ScanDomain::Full(n),
                pred,
                &mut rowwise,
            );
            assert_eq!(rowwise, expect, "rowwise op {op:?} bound {bound}");
        }
    }
}
