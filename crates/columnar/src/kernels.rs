//! Typed tight-loop scan kernels.
//!
//! The vectorized execution pipeline compiles a [`crate::Predicate`] into a
//! [`crate::CompiledPredicate`] (column indices bound, constants type-widened
//! once) and then runs the kernels in this module over the raw column
//! vectors: `&[i64]`, `&[f64]`, `&[bool]`, `&[String]` plus their validity
//! bitmaps. No `Value` enum is materialised per row and strings are compared
//! by reference — the two per-row costs that dominate the scalar
//! `Predicate::evaluate` oracle.
//!
//! Every kernel scans a [`ScanDomain`]: either the full column (`0..len`) or
//! a candidate list produced by an earlier predicate of the same conjunction
//! (MonetDB-style candidate-list refinement). Matching row ids are emitted
//! into a [`SelectionSink`], which is where the *fused* execution comes from:
//!
//! * `Vec<usize>` materialises a selection vector (the classic path),
//! * [`CountSink`] just counts matches (fused COUNT),
//! * [`MomentSink`] streams the aggregated column's value of every matching
//!   row straight into a [`MomentSketch`] (fused filter+aggregate) — the
//!   selection is never materialised,
//! * [`WeightedMomentSink`] additionally expands every matching row by a
//!   caller-supplied single-draw selection probability, accumulating the
//!   Hansen–Hurwitz sufficient statistics of a
//!   [`WeightedMomentSketch`] (the streamed estimation path of biased
//!   impressions).
//!
//! ## The fused-aggregate contract
//!
//! A [`MomentSketch`] accumulates, in one pass and in row order:
//!
//! * `matched` — rows satisfying the predicate (COUNT(*) semantics: NULLs in
//!   the aggregated column still count),
//! * `count`, `sum`, `sum_sq` — non-NULL values seen, their running sum and
//!   sum of squares (the sufficient statistics of the SRS expansion
//!   estimators in `sciborq-stats`),
//! * `mean`, `m2` — Welford-style running mean and centred second moment
//!   (variance and t-interval inputs),
//! * `min`, `max` — running extremes.
//!
//! `sum`, `sum_sq`, `min` and `max` are accumulated with exactly the same
//! fold (same order, same operations) as the exact scalar
//! [`crate::compute_aggregate`], so COUNT/SUM/AVG/MIN/MAX results are
//! bit-identical between the fused and the scalar path; VARIANCE uses the
//! same Welford recurrence in both paths. `sciborq-stats` consumes the
//! sketch through `SrsEstimator::estimate_sum_parts` /
//! `estimate_avg_parts`, so estimates are built from the streamed
//! accumulators without re-walking any selection.
//!
//! NaN policy: a NaN *cell* encountered by a comparison kernel is an error
//! (the scalar oracle rejects unordered comparisons the same way); NaN
//! *constants* are detected at compile time and turned into an
//! "error-if-any-valid-row" node by `CompiledPredicate`.

use crate::column::Bitmap;
use crate::expr::CompareOp;
use sciborq_stats::WeightedMomentSketch;

/// Which rows a kernel visits: the whole column, a contiguous row range (one
/// shard of a [`crate::Partitioning`]), or a sorted candidate list produced
/// by an earlier predicate of the same conjunction.
#[derive(Debug, Clone, Copy)]
pub enum ScanDomain<'a> {
    /// Scan rows `0..len`.
    Full(usize),
    /// Scan the contiguous rows `start..end` (absolute positions). This is
    /// the per-shard domain of the partitioned scan path: row ids emitted
    /// from a range are absolute, so per-shard results concatenate without
    /// rebasing.
    Range {
        /// First row (inclusive).
        start: usize,
        /// One past the last row.
        end: usize,
    },
    /// Scan exactly these (sorted, unique) row positions.
    Candidates(&'a [usize]),
}

impl ScanDomain<'_> {
    /// Number of rows the kernel will visit.
    pub fn len(&self) -> usize {
        match self {
            ScanDomain::Full(len) => *len,
            ScanDomain::Range { start, end } => end.saturating_sub(*start),
            ScanDomain::Candidates(rows) => rows.len(),
        }
    }

    /// True when the domain holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Consumer of matching row ids. Implementations decide whether matches are
/// materialised (selection vector), counted, or folded into aggregates.
pub trait SelectionSink {
    /// Accept one matching row. Rows arrive in ascending order.
    fn accept(&mut self, row: usize);
}

impl SelectionSink for Vec<usize> {
    #[inline]
    fn accept(&mut self, row: usize) {
        self.push(row);
    }
}

// A mutable reference to a sink is itself a sink, which is what lets the
// shared multi-query scan drive heterogeneous `&mut dyn SelectionSink`
// slots through the generic kernels.
impl<S: SelectionSink + ?Sized> SelectionSink for &mut S {
    #[inline]
    fn accept(&mut self, row: usize) {
        (**self).accept(row);
    }
}

/// Sink that only counts matches (fused COUNT kernel).
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink(pub usize);

impl SelectionSink for CountSink {
    #[inline]
    fn accept(&mut self, _row: usize) {
        self.0 += 1;
    }
}

/// One-pass moment accumulator produced by the fused filter+aggregate
/// kernels. See the module docs for the exact contract.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct MomentSketch {
    /// Rows that satisfied the predicate (COUNT(*) semantics).
    pub matched: usize,
    /// Non-NULL aggregated values observed.
    pub count: usize,
    /// Running sum of the non-NULL values (same fold as the scalar path).
    pub sum: f64,
    /// Running sum of squares of the non-NULL values.
    pub sum_sq: f64,
    /// Welford running mean of the non-NULL values.
    pub mean: f64,
    /// Welford centred second moment (Σ (v − mean)²).
    pub m2: f64,
    /// Smallest non-NULL value (`+∞` when none).
    pub min: f64,
    /// Largest non-NULL value (`−∞` when none).
    pub max: f64,
}

impl MomentSketch {
    /// A fresh, empty sketch.
    pub fn new() -> Self {
        MomentSketch {
            matched: 0,
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record a matching row whose aggregated value is NULL (or for which no
    /// aggregate column is tracked).
    #[inline]
    pub fn push_null(&mut self) {
        self.matched += 1;
    }

    /// Record a matching row with a non-NULL aggregated value.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.matched += 1;
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The aggregate value this sketch yields for a given kind, following
    /// the same conventions as [`crate::compute_aggregate`]: COUNT counts
    /// matched rows, SUM over no values is 0, AVG/MIN/MAX/VAR over no values
    /// are undefined (`None`).
    pub fn aggregate(&self, kind: crate::aggregate::AggregateKind) -> Option<f64> {
        use crate::aggregate::AggregateKind::*;
        match kind {
            Count => Some(self.matched as f64),
            Sum => Some(self.sum),
            Avg => (self.count > 0).then(|| self.sum / self.count as f64),
            Min => (self.count > 0).then_some(self.min),
            Max => (self.count > 0).then_some(self.max),
            Variance => (self.count > 0).then(|| self.m2 / self.count as f64),
        }
    }

    /// Number of rows that participated in the value aggregates (the
    /// non-NULL count), mirroring `AggregateResult::rows`.
    pub fn value_rows(&self) -> usize {
        self.count
    }
}

/// Typed access to the column a [`MomentSink`] aggregates over.
#[derive(Debug, Clone, Copy)]
pub enum AggSource<'a> {
    /// Int64 column (values widened to `f64` on the fly).
    I64(&'a [i64], Option<&'a Bitmap>),
    /// Float64 column.
    F64(&'a [f64], Option<&'a Bitmap>),
}

impl AggSource<'_> {
    #[inline]
    fn get(&self, row: usize) -> Option<f64> {
        match self {
            AggSource::I64(values, validity) => match validity {
                Some(v) if !v.get(row) => None,
                _ => Some(values[row] as f64),
            },
            AggSource::F64(values, validity) => match validity {
                Some(v) if !v.get(row) => None,
                _ => Some(values[row]),
            },
        }
    }
}

/// Sink that folds matching rows' aggregated values into a
/// [`MomentSketch`] — the terminal stage of a fused filter+aggregate scan.
#[derive(Debug)]
pub struct MomentSink<'a> {
    source: AggSource<'a>,
    /// The accumulated moments.
    pub sketch: MomentSketch,
}

impl<'a> MomentSink<'a> {
    /// Create a sink reading aggregated values from `source`.
    pub fn new(source: AggSource<'a>) -> Self {
        MomentSink {
            source,
            sketch: MomentSketch::new(),
        }
    }
}

impl SelectionSink for MomentSink<'_> {
    #[inline]
    fn accept(&mut self, row: usize) {
        match self.source.get(row) {
            Some(v) => self.sketch.push(v),
            None => self.sketch.push_null(),
        }
    }
}

/// Sink that folds matching rows into a [`WeightedMomentSketch`] — the
/// terminal stage of a fused *weighted* scan, the streamed estimation path
/// of biased (Hansen–Hurwitz) impressions.
///
/// Each matching row `i` contributes its aggregated value (or `1.0` for the
/// counting sink) expanded by the caller-supplied single-draw selection
/// probability `probabilities[i]`, accumulated inside the typed tight loop
/// in row order — the same fold, operation for operation, as the slice-based
/// `WeightedEstimator`, so streamed estimates stay bit-identical to the
/// selection-based oracle. Rows whose aggregated value is NULL only bump the
/// sketch's `matched` count (their zero-extension contributes nothing).
#[derive(Debug)]
pub struct WeightedMomentSink<'a> {
    /// The aggregated column; `None` makes every matching row contribute
    /// `1.0` (the fused weighted COUNT).
    source: Option<AggSource<'a>>,
    /// Per-row single-draw selection probabilities, aligned with the table.
    probabilities: &'a [f64],
    /// The accumulated Hansen–Hurwitz sufficient statistics.
    pub sketch: WeightedMomentSketch,
}

impl<'a> WeightedMomentSink<'a> {
    /// A sink aggregating `source` values weighted by `probabilities`.
    pub fn new(source: AggSource<'a>, probabilities: &'a [f64]) -> Self {
        WeightedMomentSink {
            source: Some(source),
            probabilities,
            sketch: WeightedMomentSketch::new(),
        }
    }

    /// A counting sink: every matching row contributes value `1.0`.
    pub fn counting(probabilities: &'a [f64]) -> Self {
        WeightedMomentSink {
            source: None,
            probabilities,
            sketch: WeightedMomentSketch::new(),
        }
    }
}

impl SelectionSink for WeightedMomentSink<'_> {
    #[inline]
    fn accept(&mut self, row: usize) {
        let p = self.probabilities[row];
        match &self.source {
            None => self.sketch.push(1.0, p),
            Some(source) => match source.get(row) {
                Some(v) => self.sketch.push(v, p),
                None => self.sketch.push_null(),
            },
        }
    }
}

/// Marker error for a kernel pass that hit an unordered (NaN) comparison.
/// The compiled layer maps this onto `ColumnarError::TypeMismatch` with the
/// proper column name, mirroring the scalar oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnorderedComparison;

/// Outcome of a kernel pass that may reject unordered (NaN) comparisons.
pub type KernelResult = Result<(), UnorderedComparison>;

#[inline]
fn is_valid(validity: Option<&Bitmap>, row: usize) -> bool {
    match validity {
        Some(v) => v.get(row),
        None => true,
    }
}

macro_rules! scan_rows {
    ($domain:expr, $row:ident, $body:block) => {
        match $domain {
            ScanDomain::Full(len) => {
                for $row in 0..len {
                    $body
                }
            }
            ScanDomain::Range { start, end } => {
                for $row in start..end {
                    $body
                }
            }
            ScanDomain::Candidates(rows) => {
                for &$row in rows {
                    $body
                }
            }
        }
    };
}

/// Emit every valid (non-NULL) row of the domain — the `TRUE` kernel over a
/// column, also used for `IS NOT NULL`.
pub fn scan_is_not_null<S: SelectionSink>(
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            out.accept(row);
        }
    });
}

/// Emit every NULL row of the domain (`IS NULL`).
pub fn scan_is_null<S: SelectionSink>(validity: Option<&Bitmap>, domain: ScanDomain, out: &mut S) {
    scan_rows!(domain, row, {
        if !is_valid(validity, row) {
            out.accept(row);
        }
    });
}

/// Emit every row of the domain (the unconditional `TRUE` kernel).
pub fn scan_all<S: SelectionSink>(domain: ScanDomain, out: &mut S) {
    scan_rows!(domain, row, {
        out.accept(row);
    });
}

/// True when any row of the domain is valid (non-NULL). Used by the
/// "error on first non-NULL row" nodes that preserve the oracle's lazy
/// type-mismatch semantics.
pub fn any_valid(validity: Option<&Bitmap>, domain: ScanDomain) -> bool {
    match validity {
        None => !domain.is_empty(),
        Some(v) => {
            let mut found = false;
            scan_rows!(domain, row, {
                if v.get(row) {
                    found = true;
                    break;
                }
            });
            found
        }
    }
}

#[inline]
fn cmp_keep<T: PartialOrd>(op: CompareOp, lhs: T, rhs: T) -> bool {
    match op {
        CompareOp::Eq => lhs == rhs,
        CompareOp::NotEq => lhs != rhs,
        CompareOp::Lt => lhs < rhs,
        CompareOp::LtEq => lhs <= rhs,
        CompareOp::Gt => lhs > rhs,
        CompareOp::GtEq => lhs >= rhs,
    }
}

/// Compare an Int64 column against an `i64` constant (exact 64-bit compare,
/// no widening).
pub fn scan_cmp_i64<S: SelectionSink>(
    values: &[i64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: i64,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row], bound) {
            out.accept(row);
        }
    });
}

/// Compare an Int64 column against an `f64` constant: each cell is widened
/// to `f64`, matching the scalar oracle's mixed-type comparison.
///
/// Errors when the constant is NaN (unordered) and any valid row exists.
pub fn scan_cmp_i64_f64<S: SelectionSink>(
    values: &[i64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: f64,
    out: &mut S,
) -> KernelResult {
    if bound.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row] as f64, bound) {
            out.accept(row);
        }
    });
    Ok(())
}

/// Compare a Float64 column against an `f64` constant (integer literals are
/// widened once at compile time).
///
/// A NaN cell is an unordered comparison and therefore an error, exactly as
/// in the scalar oracle; a NaN constant errors if any valid row exists.
pub fn scan_cmp_f64<S: SelectionSink>(
    values: &[f64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: f64,
    out: &mut S,
) -> KernelResult {
    if bound.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    let mut saw_nan = false;
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if v.is_nan() {
                saw_nan = true;
                break;
            }
            if cmp_keep(op, v, bound) {
                out.accept(row);
            }
        }
    });
    if saw_nan {
        Err(UnorderedComparison)
    } else {
        Ok(())
    }
}

/// Compare a Bool column against a boolean constant (`false < true`).
pub fn scan_cmp_bool<S: SelectionSink>(
    values: &[bool],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: bool,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row], bound) {
            out.accept(row);
        }
    });
}

/// Compare a Utf8 column against a string constant **by reference** — no
/// per-row `String` clone, unlike the historical scalar path.
pub fn scan_cmp_str<S: SelectionSink>(
    values: &[String],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    op: CompareOp,
    bound: &str,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) && cmp_keep(op, values[row].as_str(), bound) {
            out.accept(row);
        }
    });
}

/// A compiled numeric range bound: comparisons against an Int64 column stay
/// exact 64-bit compares when the literal is an integer, and widen to `f64`
/// when it is a float (mirroring `Value::partial_cmp_value`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumBound {
    /// Exact integer bound.
    I64(i64),
    /// Floating-point bound.
    F64(f64),
}

impl NumBound {
    /// The bound widened to `f64` (used against Float64 columns).
    pub fn as_f64(&self) -> f64 {
        match self {
            NumBound::I64(v) => *v as f64,
            NumBound::F64(v) => *v,
        }
    }

    /// Whether the bound is a NaN float (unordered against everything).
    pub fn is_nan(&self) -> bool {
        matches!(self, NumBound::F64(v) if v.is_nan())
    }

    #[inline]
    fn le_i64_cell(&self, cell: i64) -> bool {
        // bound <= cell
        match self {
            NumBound::I64(b) => *b <= cell,
            NumBound::F64(b) => *b <= cell as f64,
        }
    }

    #[inline]
    fn ge_i64_cell(&self, cell: i64) -> bool {
        // bound >= cell
        match self {
            NumBound::I64(b) => *b >= cell,
            NumBound::F64(b) => *b >= cell as f64,
        }
    }
}

/// One-pass inclusive range kernel over an Int64 column:
/// `low <= v && v <= high`, with each bound compared exactly (i64 vs i64)
/// or widened (i64 vs f64) according to its literal type.
///
/// This fixes the historical `Between` double scan: one pass, two compares.
pub fn scan_range_i64<S: SelectionSink>(
    values: &[i64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: NumBound,
    high: NumBound,
    out: &mut S,
) -> KernelResult {
    if low.is_nan() || high.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    if let (NumBound::I64(lo), NumBound::I64(hi)) = (low, high) {
        // fast path: pure 64-bit integer range
        scan_rows!(domain, row, {
            if is_valid(validity, row) {
                let v = values[row];
                if lo <= v && v <= hi {
                    out.accept(row);
                }
            }
        });
        return Ok(());
    }
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if low.le_i64_cell(v) && high.ge_i64_cell(v) {
                out.accept(row);
            }
        }
    });
    Ok(())
}

/// One-pass inclusive range kernel over a Float64 column (bounds widened to
/// `f64` at compile time). NaN cells are unordered and error, as in the
/// scalar oracle.
pub fn scan_range_f64<S: SelectionSink>(
    values: &[f64],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: f64,
    high: f64,
    out: &mut S,
) -> KernelResult {
    if low.is_nan() || high.is_nan() {
        return if any_valid(validity, domain) {
            Err(UnorderedComparison)
        } else {
            Ok(())
        };
    }
    let mut saw_nan = false;
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if v.is_nan() {
                saw_nan = true;
                break;
            }
            if low <= v && v <= high {
                out.accept(row);
            }
        }
    });
    if saw_nan {
        Err(UnorderedComparison)
    } else {
        Ok(())
    }
}

/// One-pass inclusive range kernel over a Utf8 column (lexicographic, by
/// reference).
pub fn scan_range_str<S: SelectionSink>(
    values: &[String],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: &str,
    high: &str,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row].as_str();
            if low <= v && v <= high {
                out.accept(row);
            }
        }
    });
}

/// One-pass inclusive range kernel over a Bool column (`false < true`).
pub fn scan_range_bool<S: SelectionSink>(
    values: &[bool],
    validity: Option<&Bitmap>,
    domain: ScanDomain,
    low: bool,
    high: bool,
    out: &mut S,
) {
    scan_rows!(domain, row, {
        if is_valid(validity, row) {
            let v = values[row];
            if low <= v && v <= high {
                out.accept(row);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;

    fn bitmap(bits: &[bool]) -> Bitmap {
        let mut bm = Bitmap::new();
        for &b in bits {
            bm.push(b);
        }
        bm
    }

    #[test]
    fn domain_len() {
        assert_eq!(ScanDomain::Full(5).len(), 5);
        assert!(ScanDomain::Full(0).is_empty());
        let rows = [1usize, 3];
        assert_eq!(ScanDomain::Candidates(&rows).len(), 2);
        assert_eq!(ScanDomain::Range { start: 2, end: 7 }.len(), 5);
        assert!(ScanDomain::Range { start: 3, end: 3 }.is_empty());
    }

    #[test]
    fn range_domain_scans_absolute_positions() {
        let values = [5i64, -2, 9, 0, 7];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Range { start: 1, end: 4 },
            CompareOp::GtEq,
            0,
            &mut out,
        );
        // rows 2 and 3 qualify within the range; row ids stay absolute
        assert_eq!(out, vec![2, 3]);
        let validity = bitmap(&[true, true, false, true, true]);
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            Some(&validity),
            ScanDomain::Range { start: 1, end: 4 },
            CompareOp::GtEq,
            0,
            &mut out,
        );
        assert_eq!(out, vec![3]);
        assert!(!any_valid(
            Some(&validity),
            ScanDomain::Range { start: 2, end: 3 }
        ));
        assert!(!any_valid(None, ScanDomain::Range { start: 2, end: 2 }));
    }

    #[test]
    fn cmp_i64_full_and_candidates() {
        let values = [5i64, -2, 9, 0, 7];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Full(5),
            CompareOp::Gt,
            0,
            &mut out,
        );
        assert_eq!(out, vec![0, 2, 4]);
        let candidates = [2usize, 3, 4];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Candidates(&candidates),
            CompareOp::Gt,
            0,
            &mut out,
        );
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn cmp_respects_validity() {
        let values = [1i64, 2, 3];
        let validity = bitmap(&[true, false, true]);
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            Some(&validity),
            ScanDomain::Full(3),
            CompareOp::GtEq,
            0,
            &mut out,
        );
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn exact_i64_comparison_not_widened() {
        // 2^63 - 1 and 2^63 - 2 collapse to the same f64; the i64 kernel
        // must still tell them apart.
        let values = [i64::MAX, i64::MAX - 1];
        let mut out = Vec::new();
        scan_cmp_i64(
            &values,
            None,
            ScanDomain::Full(2),
            CompareOp::Eq,
            i64::MAX,
            &mut out,
        );
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn f64_nan_cell_errors() {
        let values = [1.0, f64::NAN];
        let mut out = Vec::new();
        let r = scan_cmp_f64(
            &values,
            None,
            ScanDomain::Full(2),
            CompareOp::Lt,
            5.0,
            &mut out,
        );
        assert!(r.is_err());
    }

    #[test]
    fn f64_nan_bound_errors_only_with_valid_rows() {
        let values = [1.0];
        let mut out = Vec::new();
        assert!(scan_cmp_f64(
            &values,
            None,
            ScanDomain::Full(1),
            CompareOp::Lt,
            f64::NAN,
            &mut out
        )
        .is_err());
        let validity = bitmap(&[false]);
        let mut out = Vec::new();
        assert!(scan_cmp_f64(
            &values,
            Some(&validity),
            ScanDomain::Full(1),
            CompareOp::Lt,
            f64::NAN,
            &mut out
        )
        .is_ok());
        assert!(out.is_empty());
    }

    #[test]
    fn one_pass_ranges() {
        let ints = [1i64, 5, 10, -3];
        let mut out = Vec::new();
        scan_range_i64(
            &ints,
            None,
            ScanDomain::Full(4),
            NumBound::I64(0),
            NumBound::I64(5),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, vec![0, 1]);

        let floats = [0.5, 2.5, 7.0];
        let mut out = Vec::new();
        scan_range_f64(&floats, None, ScanDomain::Full(3), 1.0, 3.0, &mut out).unwrap();
        assert_eq!(out, vec![1]);

        let strings: Vec<String> = ["ant", "bee", "cow"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        scan_range_str(&strings, None, ScanDomain::Full(3), "b", "c", &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn mixed_bound_range_keeps_i64_exact() {
        let values = [i64::MAX, 10];
        let mut out = Vec::new();
        // low is an exact integer bound, high widens: i64::MAX must qualify
        scan_range_i64(
            &values,
            None,
            ScanDomain::Full(2),
            NumBound::I64(i64::MAX),
            NumBound::F64(f64::INFINITY),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn str_kernel_compares_by_reference() {
        let values: Vec<String> = ["GALAXY", "STAR", "GALAXY"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut out = Vec::new();
        scan_cmp_str(
            &values,
            None,
            ScanDomain::Full(3),
            CompareOp::Eq,
            "GALAXY",
            &mut out,
        );
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn null_kernels() {
        let validity = bitmap(&[true, false, true, false]);
        let mut nulls = Vec::new();
        scan_is_null(Some(&validity), ScanDomain::Full(4), &mut nulls);
        assert_eq!(nulls, vec![1, 3]);
        let mut valid = Vec::new();
        scan_is_not_null(Some(&validity), ScanDomain::Full(4), &mut valid);
        assert_eq!(valid, vec![0, 2]);
        let mut all = Vec::new();
        scan_is_not_null(None, ScanDomain::Full(3), &mut all);
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn count_sink_counts() {
        let values = [1.0, 2.0, 3.0];
        let mut sink = CountSink::default();
        scan_cmp_f64(
            &values,
            None,
            ScanDomain::Full(3),
            CompareOp::Gt,
            1.5,
            &mut sink,
        )
        .unwrap();
        assert_eq!(sink.0, 2);
    }

    #[test]
    fn moment_sketch_matches_naive_folds() {
        let values = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut sketch = MomentSketch::new();
        for &v in &values {
            sketch.push(v);
        }
        sketch.push_null();
        assert_eq!(sketch.matched, 9);
        assert_eq!(sketch.count, 8);
        assert_eq!(sketch.aggregate(AggregateKind::Count), Some(9.0));
        assert_eq!(sketch.aggregate(AggregateKind::Sum), Some(40.0));
        assert_eq!(sketch.aggregate(AggregateKind::Avg), Some(5.0));
        assert_eq!(sketch.aggregate(AggregateKind::Min), Some(2.0));
        assert_eq!(sketch.aggregate(AggregateKind::Max), Some(9.0));
        let var = sketch.aggregate(AggregateKind::Variance).unwrap();
        assert!((var - 4.0).abs() < 1e-12);
        assert_eq!(sketch.value_rows(), 8);
    }

    #[test]
    fn empty_sketch_conventions() {
        let sketch = MomentSketch::new();
        assert_eq!(sketch.aggregate(AggregateKind::Count), Some(0.0));
        assert_eq!(sketch.aggregate(AggregateKind::Sum), Some(0.0));
        assert_eq!(sketch.aggregate(AggregateKind::Avg), None);
        assert_eq!(sketch.aggregate(AggregateKind::Min), None);
        assert_eq!(sketch.aggregate(AggregateKind::Max), None);
        assert_eq!(sketch.aggregate(AggregateKind::Variance), None);
    }

    #[test]
    fn moment_sink_reads_agg_column() {
        let agg = [10.0f64, 20.0, 30.0];
        let validity = bitmap(&[true, false, true]);
        let mut sink = MomentSink::new(AggSource::F64(&agg, Some(&validity)));
        let pred_values = [1i64, 1, 1];
        scan_cmp_i64(
            &pred_values,
            None,
            ScanDomain::Full(3),
            CompareOp::Eq,
            1,
            &mut sink,
        );
        assert_eq!(sink.sketch.matched, 3);
        assert_eq!(sink.sketch.count, 2);
        assert_eq!(sink.sketch.sum, 40.0);
    }

    #[test]
    fn any_valid_checks() {
        let validity = bitmap(&[false, false, true]);
        assert!(any_valid(Some(&validity), ScanDomain::Full(3)));
        assert!(!any_valid(Some(&validity), ScanDomain::Full(2)));
        let c = [0usize, 1];
        assert!(!any_valid(Some(&validity), ScanDomain::Candidates(&c)));
        assert!(any_valid(None, ScanDomain::Full(1)));
        assert!(!any_valid(None, ScanDomain::Full(0)));
    }
}
