//! Tables: collections of equal-length columns plus a schema.
//!
//! Tables support the access patterns SciBORQ needs from its MonetDB-like
//! substrate: bulk appends (the daily incremental load), row gathers (for
//! materialising impressions), full-column scans, and projections.

use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::schema::SchemaRef;
use crate::selection::SelectionVector;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A batch of rows destined for a table, organised column-wise.
///
/// Batches are the unit of incremental load. The same batches that are
/// appended to a base table are also streamed through the impression
/// builders, mirroring the paper's "construction algorithms reside in the
/// load process".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<Column>,
    rows: usize,
}

impl RecordBatch {
    /// Create a batch from columns that match the schema in order and type.
    pub fn new(schema: SchemaRef, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.len() {
            return Err(ColumnarError::SchemaMismatch(format!(
                "expected {} columns, found {}",
                schema.len(),
                columns.len()
            )));
        }
        for (field, col) in schema.fields().iter().zip(&columns) {
            if field.data_type != col.data_type() {
                return Err(ColumnarError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.data_type.name(),
                    found: col.data_type().name(),
                });
            }
        }
        let rows = columns.first().map_or(0, Column::len);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.len() != rows {
                return Err(ColumnarError::LengthMismatch {
                    expected: rows,
                    found: col.len(),
                });
            }
            if !field.nullable && col.null_count() > 0 {
                return Err(ColumnarError::SchemaMismatch(format!(
                    "column {} is not nullable but contains NULLs",
                    field.name
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// The batch schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows in the batch.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// True if the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Extract a single row as a vector of values in schema order.
    pub fn row(&self, idx: usize) -> Result<Vec<Value>> {
        if idx >= self.rows {
            return Err(ColumnarError::RowOutOfBounds {
                row: idx,
                len: self.rows,
            });
        }
        self.columns.iter().map(|c| c.get(idx)).collect()
    }
}

/// An append-only columnar table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: SchemaRef,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Create an empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Create an empty table with per-column capacity pre-reserved.
    pub fn with_capacity(name: impl Into<String>, schema: SchemaRef, capacity: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, capacity))
            .collect();
        Table {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Create a table that takes ownership of a batch's columns directly —
    /// the zero-copy bulk-load path for loaders and benchmarks that already
    /// build whole columns. The batch has validated column/schema agreement
    /// at construction, so no per-row copying or re-checking is needed.
    pub fn from_batch(name: impl Into<String>, batch: RecordBatch) -> Self {
        Table {
            name: name.into(),
            schema: batch.schema,
            columns: batch.columns,
            rows: batch.rows,
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows currently stored.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Approximate heap footprint of the table in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        Ok(&self.columns[idx])
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a single row given as values in schema order.
    pub fn append_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(ColumnarError::SchemaMismatch(format!(
                "expected {} values, found {}",
                self.schema.len(),
                row.len()
            )));
        }
        for (field, value) in self.schema.fields().iter().zip(row) {
            if value.is_null() && !field.nullable {
                return Err(ColumnarError::SchemaMismatch(format!(
                    "column {} is not nullable",
                    field.name
                )));
            }
        }
        // Validate types before mutating so a failed append leaves the table
        // unchanged.
        for (idx, (field, value)) in self.schema.fields().iter().zip(row).enumerate() {
            if let Some(dt) = value.data_type() {
                let compatible = dt == field.data_type
                    || (dt == crate::value::DataType::Int64
                        && field.data_type == crate::value::DataType::Float64);
                if !compatible {
                    return Err(ColumnarError::TypeMismatch {
                        column: self.schema.fields()[idx].name.clone(),
                        expected: field.data_type.name(),
                        found: value.type_name(),
                    });
                }
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Append a batch of rows (the incremental-load path).
    pub fn append_batch(&mut self, batch: &RecordBatch) -> Result<()> {
        if batch.schema().fields() != self.schema.fields() {
            return Err(ColumnarError::SchemaMismatch(format!(
                "batch schema {} does not match table schema {}",
                batch.schema(),
                self.schema
            )));
        }
        let all_rows: Vec<usize> = (0..batch.row_count()).collect();
        for (col, src) in self.columns.iter_mut().zip(batch.columns()) {
            col.extend_gather(src, &all_rows)?;
        }
        self.rows += batch.row_count();
        Ok(())
    }

    /// Extract a single row as values in schema order.
    pub fn row(&self, idx: usize) -> Result<Vec<Value>> {
        if idx >= self.rows {
            return Err(ColumnarError::RowOutOfBounds {
                row: idx,
                len: self.rows,
            });
        }
        self.columns.iter().map(|c| c.get(idx)).collect()
    }

    /// Materialise the rows of a selection into a new table.
    pub fn gather(&self, selection: &SelectionVector, name: impl Into<String>) -> Result<Table> {
        let rows = selection.rows();
        let columns: Result<Vec<Column>> = self.columns.iter().map(|c| c.gather(rows)).collect();
        Ok(Table {
            name: name.into(),
            schema: Arc::clone(&self.schema),
            columns: columns?,
            rows: rows.len(),
        })
    }

    /// Project the table onto a subset of columns, producing a new table that
    /// shares no data with the original.
    pub fn project(&self, names: &[&str], name: impl Into<String>) -> Result<Table> {
        let schema = Arc::new(self.schema.project(names)?);
        let mut columns = Vec::with_capacity(names.len());
        for &n in names {
            columns.push(self.column(n)?.clone());
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            rows: self.rows,
        })
    }

    /// Iterate the values of a numeric column as `f64`, skipping NULLs,
    /// restricted to a selection.
    pub fn numeric_values(&self, column: &str, selection: &SelectionVector) -> Result<Vec<f64>> {
        let col = self.column(column)?;
        if !col.data_type().is_numeric() {
            return Err(ColumnarError::NotNumeric(column.to_owned()));
        }
        Ok(selection.iter().filter_map(|i| col.get_f64(i)).collect())
    }

    /// Convert the entire table into a single record batch (used when
    /// replaying existing base data through impression builders).
    pub fn to_batch(&self) -> RecordBatch {
        RecordBatch {
            schema: Arc::clone(&self.schema),
            columns: self.columns.clone(),
            rows: self.rows,
        }
    }

    /// Dictionary-encode every plain Utf8 column whose distinct-value count
    /// is at most `max_cardinality` (see [`Column::dict_encoded`]). Returns
    /// the number of columns converted.
    ///
    /// The table stays logically identical — dictionary encoding is a
    /// physical representation — but string predicates over the converted
    /// columns become integer-code compares in the compiled scan pipeline.
    /// Impressions apply this at materialisation time; base tables can opt
    /// in explicitly.
    pub fn dict_encode_strings(&mut self, max_cardinality: usize) -> usize {
        let mut converted = 0;
        for col in &mut self.columns {
            if let Some(encoded) = col.dict_encoded(max_cardinality) {
                *col = encoded;
                converted += 1;
            }
        }
        converted
    }
}

/// Builder that assembles a [`RecordBatch`] row by row.
///
/// Useful for synthetic data generators that produce tuples in a stream.
#[derive(Debug, Clone)]
pub struct RecordBatchBuilder {
    schema: SchemaRef,
    columns: Vec<Column>,
    rows: usize,
}

impl RecordBatchBuilder {
    /// Create a builder for the given schema.
    pub fn new(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::new(f.data_type))
            .collect();
        RecordBatchBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Create a builder with pre-reserved capacity.
    pub fn with_capacity(schema: SchemaRef, capacity: usize) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::with_capacity(f.data_type, capacity))
            .collect();
        RecordBatchBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Append one row in schema order.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(ColumnarError::SchemaMismatch(format!(
                "expected {} values, found {}",
                self.schema.len(),
                row.len()
            )));
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows accumulated so far.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Finish the builder, producing a batch.
    pub fn finish(self) -> Result<RecordBatch> {
        RecordBatch::new(self.schema, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::nullable("r_mag", DataType::Float64),
        ])
        .unwrap()
    }

    fn sample_batch(n: usize) -> RecordBatch {
        let mut b = RecordBatchBuilder::with_capacity(schema(), n);
        for i in 0..n {
            b.push_row(&[
                Value::Int64(i as i64),
                Value::Float64(100.0 + i as f64),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(15.0 + (i % 7) as f64)
                },
            ])
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn batch_construction_validates_lengths() {
        let s = schema();
        let err = RecordBatch::new(
            Arc::clone(&s),
            vec![
                Column::from_i64(vec![1, 2]),
                Column::from_f64(vec![1.0]),
                Column::from_f64(vec![1.0, 2.0]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::LengthMismatch { .. }));
    }

    #[test]
    fn batch_construction_validates_types_and_arity() {
        let s = schema();
        let err = RecordBatch::new(Arc::clone(&s), vec![Column::from_i64(vec![1])]).unwrap_err();
        assert!(matches!(err, ColumnarError::SchemaMismatch(_)));

        let err = RecordBatch::new(
            s,
            vec![
                Column::from_f64(vec![1.0]),
                Column::from_f64(vec![1.0]),
                Column::from_f64(vec![1.0]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::TypeMismatch { .. }));
    }

    #[test]
    fn batch_rejects_null_in_non_nullable_column() {
        let s = schema();
        let mut objid = Column::new(DataType::Int64);
        objid.push(&Value::Null).unwrap();
        let err = RecordBatch::new(
            s,
            vec![
                objid,
                Column::from_f64(vec![1.0]),
                Column::from_f64(vec![1.0]),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ColumnarError::SchemaMismatch(_)));
    }

    #[test]
    fn batch_row_access() {
        let b = sample_batch(5);
        assert_eq!(b.row_count(), 5);
        assert!(!b.is_empty());
        let row = b.row(1).unwrap();
        assert_eq!(row[0], Value::Int64(1));
        assert_eq!(row[1], Value::Float64(101.0));
        assert!(b.row(10).is_err());
        assert_eq!(b.column("ra").unwrap().len(), 5);
        assert!(b.column_at(0).is_some());
        assert!(b.column_at(9).is_none());
    }

    #[test]
    fn table_append_row_and_get() {
        let mut t = Table::new("photoobj", schema());
        assert!(t.is_empty());
        t.append_row(&[1.into(), 180.0.into(), Value::Null])
            .unwrap();
        t.append_row(&[2.into(), 190.0.into(), 17.0.into()])
            .unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.name(), "photoobj");
        let row = t.row(0).unwrap();
        assert_eq!(row[1], Value::Float64(180.0));
        assert!(t.row(5).is_err());
    }

    #[test]
    fn table_append_row_rejects_bad_rows_atomically() {
        let mut t = Table::new("photoobj", schema());
        // wrong arity
        assert!(t.append_row(&[1.into()]).is_err());
        // null in non-nullable column
        assert!(t
            .append_row(&[Value::Null, 1.0.into(), 1.0.into()])
            .is_err());
        // wrong type
        assert!(t.append_row(&["x".into(), 1.0.into(), 1.0.into()]).is_err());
        assert_eq!(t.row_count(), 0);
        // none of the columns should have grown
        for c in t.columns() {
            assert_eq!(c.len(), 0);
        }
    }

    #[test]
    fn table_append_batch() {
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&sample_batch(10)).unwrap();
        t.append_batch(&sample_batch(7)).unwrap();
        assert_eq!(t.row_count(), 17);
        assert_eq!(t.column("objid").unwrap().len(), 17);
    }

    #[test]
    fn table_append_batch_schema_mismatch() {
        let other = Schema::shared(vec![Field::new("x", DataType::Int64)]).unwrap();
        let batch = RecordBatch::new(other, vec![Column::from_i64(vec![1])]).unwrap();
        let mut t = Table::new("photoobj", schema());
        assert!(matches!(
            t.append_batch(&batch),
            Err(ColumnarError::SchemaMismatch(_))
        ));
    }

    #[test]
    fn table_gather_selection() {
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&sample_batch(10)).unwrap();
        let sel = SelectionVector::from_rows(vec![0, 3, 9]);
        let g = t.gather(&sel, "sample").unwrap();
        assert_eq!(g.row_count(), 3);
        assert_eq!(g.name(), "sample");
        assert_eq!(g.row(2).unwrap()[0], Value::Int64(9));
        // schema is shared
        assert!(Arc::ptr_eq(t.schema(), g.schema()));
    }

    #[test]
    fn table_project() {
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&sample_batch(4)).unwrap();
        let p = t.project(&["ra"], "ra_only").unwrap();
        assert_eq!(p.schema().names(), vec!["ra"]);
        assert_eq!(p.row_count(), 4);
        assert!(t.project(&["nope"], "x").is_err());
    }

    #[test]
    fn table_numeric_values_skips_nulls() {
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&sample_batch(8)).unwrap();
        let sel = SelectionVector::all(8);
        let vals = t.numeric_values("r_mag", &sel).unwrap();
        // rows 0 and 4 are NULL
        assert_eq!(vals.len(), 6);
        assert!(matches!(
            t.numeric_values("missing", &sel),
            Err(ColumnarError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn table_numeric_values_rejects_strings() {
        let s = Schema::shared(vec![Field::new("class", DataType::Utf8)]).unwrap();
        let mut t = Table::new("t", s);
        t.append_row(&["GALAXY".into()]).unwrap();
        assert!(matches!(
            t.numeric_values("class", &SelectionVector::all(1)),
            Err(ColumnarError::NotNumeric(_))
        ));
    }

    #[test]
    fn table_to_batch_roundtrip() {
        let mut t = Table::new("photoobj", schema());
        t.append_batch(&sample_batch(6)).unwrap();
        let b = t.to_batch();
        assert_eq!(b.row_count(), 6);
        let mut t2 = Table::new("copy", Arc::clone(t.schema()));
        t2.append_batch(&b).unwrap();
        assert_eq!(t2.row_count(), t.row_count());
        assert_eq!(t2.row(3).unwrap(), t.row(3).unwrap());
    }

    #[test]
    fn table_byte_size_tracks_growth() {
        let mut t = Table::new("photoobj", schema());
        let before = t.byte_size();
        t.append_batch(&sample_batch(1000)).unwrap();
        assert!(t.byte_size() > before);
    }

    #[test]
    fn builder_rejects_wrong_arity() {
        let mut b = RecordBatchBuilder::new(schema());
        assert!(b.push_row(&[1.into()]).is_err());
        assert_eq!(b.row_count(), 0);
    }
}
