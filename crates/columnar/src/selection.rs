//! Selection vectors: ordered lists of qualifying row positions.
//!
//! Column-at-a-time execution in the style of MonetDB materialises the result
//! of each predicate as a list of row ids (a "candidate list"). Subsequent
//! operators (further predicates, aggregates, projections) consume the list.
//! This is the intermediate representation the SciBORQ bounded-query engine
//! re-optimises over when it escalates to a more detailed impression.

use serde::{Deserialize, Serialize};

/// An ordered set of selected row positions within a table or impression.
///
/// Positions are kept sorted and unique, which makes intersection/union
/// linear and keeps scans cache-friendly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionVector {
    rows: Vec<usize>,
}

impl SelectionVector {
    /// An empty selection.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A selection covering all rows `0..len`.
    pub fn all(len: usize) -> Self {
        SelectionVector {
            rows: (0..len).collect(),
        }
    }

    /// Build a selection from arbitrary row ids; the ids are sorted and
    /// deduplicated.
    pub fn from_rows(mut rows: Vec<usize>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        SelectionVector { rows }
    }

    /// Build a selection from row ids already known to be sorted and unique.
    ///
    /// Debug builds verify the invariant.
    pub fn from_sorted_rows(rows: Vec<usize>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "rows must be sorted+unique"
        );
        SelectionVector { rows }
    }

    /// The selected row ids, ascending.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether the given row is in the selection.
    pub fn contains(&self, row: usize) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Append a row id that is larger than every id currently present.
    ///
    /// Panics in debug builds if ordering would be violated.
    pub fn push(&mut self, row: usize) {
        debug_assert!(self.rows.last().is_none_or(|&last| last < row));
        self.rows.push(row);
    }

    /// Intersect with another selection (logical AND of predicates).
    pub fn intersect(&self, other: &SelectionVector) -> SelectionVector {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        SelectionVector { rows: out }
    }

    /// Union with another selection (logical OR of predicates).
    pub fn union(&self, other: &SelectionVector) -> SelectionVector {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.rows.len() && j < other.rows.len() {
            match self.rows[i].cmp(&other.rows[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.rows[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.rows[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.rows[i..]);
        out.extend_from_slice(&other.rows[j..]);
        SelectionVector { rows: out }
    }

    /// Complement with respect to a table of `len` rows (logical NOT).
    pub fn complement(&self, len: usize) -> SelectionVector {
        let mut out = Vec::with_capacity(len.saturating_sub(self.len()));
        let mut iter = self.rows.iter().peekable();
        for row in 0..len {
            match iter.peek() {
                Some(&&next) if next == row => {
                    iter.next();
                }
                _ => out.push(row),
            }
        }
        SelectionVector { rows: out }
    }

    /// Keep at most the first `n` selected rows (LIMIT applied to a
    /// selection; §3.2 "Execution time" discusses how SciBORQ reinterprets
    /// LIMIT as "the first n rows *of the impression*").
    pub fn truncate(&mut self, n: usize) {
        self.rows.truncate(n);
    }

    /// Selectivity of this selection relative to a table of `len` rows.
    ///
    /// Returns 0 for an empty table.
    pub fn selectivity(&self, len: usize) -> f64 {
        if len == 0 {
            0.0
        } else {
            self.rows.len() as f64 / len as f64
        }
    }

    /// Iterate over the selected rows.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.rows.iter().copied()
    }
}

impl FromIterator<usize> for SelectionVector {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        SelectionVector::from_rows(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_empty() {
        let all = SelectionVector::all(5);
        assert_eq!(all.rows(), &[0, 1, 2, 3, 4]);
        assert_eq!(all.len(), 5);
        let empty = SelectionVector::empty();
        assert!(empty.is_empty());
        assert_eq!(empty.selectivity(10), 0.0);
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let sv = SelectionVector::from_rows(vec![5, 1, 3, 1, 5]);
        assert_eq!(sv.rows(), &[1, 3, 5]);
    }

    #[test]
    fn contains_uses_binary_search() {
        let sv = SelectionVector::from_rows(vec![2, 4, 8]);
        assert!(sv.contains(4));
        assert!(!sv.contains(5));
    }

    #[test]
    fn intersect_basic() {
        let a = SelectionVector::from_rows(vec![1, 2, 3, 5, 8]);
        let b = SelectionVector::from_rows(vec![2, 3, 4, 8, 9]);
        assert_eq!(a.intersect(&b).rows(), &[2, 3, 8]);
        assert_eq!(b.intersect(&a).rows(), &[2, 3, 8]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = SelectionVector::from_rows(vec![1, 2]);
        assert!(a.intersect(&SelectionVector::empty()).is_empty());
    }

    #[test]
    fn union_basic() {
        let a = SelectionVector::from_rows(vec![1, 3, 5]);
        let b = SelectionVector::from_rows(vec![2, 3, 6]);
        assert_eq!(a.union(&b).rows(), &[1, 2, 3, 5, 6]);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = SelectionVector::from_rows(vec![1, 3]);
        assert_eq!(a.union(&SelectionVector::empty()).rows(), a.rows());
    }

    #[test]
    fn complement_covers_remaining_rows() {
        let a = SelectionVector::from_rows(vec![0, 2, 4]);
        assert_eq!(a.complement(6).rows(), &[1, 3, 5]);
        assert_eq!(SelectionVector::empty().complement(3).rows(), &[0, 1, 2]);
        assert!(SelectionVector::all(3).complement(3).is_empty());
    }

    #[test]
    fn intersection_distributes_over_union() {
        // (A ∪ B) ∩ C == (A ∩ C) ∪ (B ∩ C)
        let a = SelectionVector::from_rows(vec![1, 2, 3]);
        let b = SelectionVector::from_rows(vec![3, 4, 5]);
        let c = SelectionVector::from_rows(vec![2, 3, 4]);
        assert_eq!(
            a.union(&b).intersect(&c),
            a.intersect(&c).union(&b.intersect(&c))
        );
    }

    #[test]
    fn truncate_limits_rows() {
        let mut a = SelectionVector::from_rows(vec![1, 2, 3, 4]);
        a.truncate(2);
        assert_eq!(a.rows(), &[1, 2]);
        a.truncate(10);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn selectivity() {
        let a = SelectionVector::from_rows(vec![0, 1]);
        assert!((a.selectivity(8) - 0.25).abs() < 1e-12);
        assert_eq!(a.selectivity(0), 0.0);
    }

    #[test]
    fn push_in_order_and_iter() {
        let mut sv = SelectionVector::empty();
        sv.push(1);
        sv.push(4);
        assert_eq!(sv.iter().collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn from_iterator() {
        let sv: SelectionVector = [4usize, 2, 2, 0].into_iter().collect();
        assert_eq!(sv.rows(), &[0, 2, 4]);
    }
}
