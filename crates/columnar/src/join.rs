//! Foreign-key hash joins between tables.
//!
//! The SkyServer schema joins the `PhotoObjAll` fact table against dimension
//! tables via integer foreign keys (Figure 1 of the paper). Impressions must
//! preserve these join relationships ("Correlations", §3.1), so the substrate
//! provides an equi-join on integer key columns that the impression builders
//! and the workload generator use.

use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::schema::{Field, Schema};
use crate::selection::SelectionVector;
use crate::table::Table;
use std::collections::HashMap;
use std::sync::Arc;

/// The join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching pairs.
    Inner,
    /// Keep every left row; unmatched right columns become NULL.
    LeftOuter,
}

/// Result of matching two tables on an integer key: pairs of row indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinIndex {
    /// Matched (left_row, Some(right_row)) pairs, or (left_row, None) for
    /// unmatched left rows under a left-outer join.
    pub pairs: Vec<(usize, Option<usize>)>,
}

impl JoinIndex {
    /// Number of output rows.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the join produced no rows.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The set of distinct left rows that found at least one match.
    pub fn matched_left_rows(&self) -> SelectionVector {
        SelectionVector::from_rows(
            self.pairs
                .iter()
                .filter(|(_, r)| r.is_some())
                .map(|(l, _)| *l)
                .collect(),
        )
    }

    /// The set of distinct right rows that were matched.
    pub fn matched_right_rows(&self) -> SelectionVector {
        SelectionVector::from_rows(self.pairs.iter().filter_map(|(_, r)| *r).collect())
    }
}

/// Compute the join index between `left.left_key` and `right.right_key`.
///
/// Both key columns must be `Int64`. NULL keys never match. The right side is
/// hashed (it is typically the smaller dimension table).
pub fn hash_join_index(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
    join_type: JoinType,
    left_selection: &SelectionVector,
) -> Result<JoinIndex> {
    let lk = left.column(left_key)?;
    let rk = right.column(right_key)?;
    if lk.data_type() != crate::value::DataType::Int64 {
        return Err(ColumnarError::NotNumeric(format!(
            "join key {left_key} must be Int64"
        )));
    }
    if rk.data_type() != crate::value::DataType::Int64 {
        return Err(ColumnarError::NotNumeric(format!(
            "join key {right_key} must be Int64"
        )));
    }

    // Build phase over the right table.
    let mut build: HashMap<i64, Vec<usize>> = HashMap::with_capacity(right.row_count());
    for row in 0..right.row_count() {
        if let Some(key) = rk.get_i64(row) {
            build.entry(key).or_default().push(row);
        }
    }

    // Probe phase over the (selected) left rows.
    let mut pairs = Vec::new();
    for lrow in left_selection.iter() {
        match lk.get_i64(lrow) {
            Some(key) => match build.get(&key) {
                Some(rrows) => {
                    for &rrow in rrows {
                        pairs.push((lrow, Some(rrow)));
                    }
                }
                None => {
                    if join_type == JoinType::LeftOuter {
                        pairs.push((lrow, None));
                    }
                }
            },
            None => {
                if join_type == JoinType::LeftOuter {
                    pairs.push((lrow, None));
                }
            }
        }
    }
    Ok(JoinIndex { pairs })
}

/// Materialise a join result into a new table.
///
/// The output schema is the left schema followed by the right schema with
/// right column names prefixed by `<right_table_name>_`. All right columns in
/// the output are nullable because of potential outer-join padding.
pub fn materialize_join(
    left: &Table,
    right: &Table,
    index: &JoinIndex,
    name: impl Into<String>,
) -> Result<Table> {
    let mut fields: Vec<Field> = left.schema().fields().to_vec();
    for f in right.schema().fields() {
        fields.push(Field::nullable(
            format!("{}_{}", right.name(), f.name),
            f.data_type,
        ));
    }
    let schema = Arc::new(Schema::new(fields)?);
    let mut table = Table::with_capacity(name, schema, index.len());

    let mut row_values = Vec::with_capacity(left.schema().len() + right.schema().len());
    for &(lrow, rrow) in &index.pairs {
        row_values.clear();
        row_values.extend(left.row(lrow)?);
        match rrow {
            Some(rrow) => row_values.extend(right.row(rrow)?),
            None => row_values.extend(std::iter::repeat_n(
                crate::value::Value::Null,
                right.schema().len(),
            )),
        }
        table.append_row(&row_values)?;
    }
    Ok(table)
}

/// Estimate join-key containment: the fraction of (selected) left keys that
/// find a partner in the right table. Used by impression maintenance to check
/// that FK correlations survive sampling.
pub fn key_containment(
    left: &Table,
    left_key: &str,
    right: &Table,
    right_key: &str,
    left_selection: &SelectionVector,
) -> Result<f64> {
    if left_selection.is_empty() {
        return Ok(1.0);
    }
    let index = hash_join_index(
        left,
        left_key,
        right,
        right_key,
        JoinType::Inner,
        left_selection,
    )?;
    Ok(index.matched_left_rows().len() as f64 / left_selection.len() as f64)
}

/// Build an Int64 key column helper used by tests and generators.
pub fn int_key_column(keys: &[i64]) -> Column {
    Column::from_i64(keys.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn fact() -> Table {
        let schema = Schema::shared(vec![
            Field::new("objid", DataType::Int64),
            Field::new("field_id", DataType::Int64),
            Field::new("ra", DataType::Float64),
        ])
        .unwrap();
        let mut t = Table::new("photoobj", schema);
        for (objid, field_id, ra) in [
            (1i64, 10i64, 180.0),
            (2, 11, 181.0),
            (3, 10, 182.0),
            (4, 99, 183.0), // dangling FK
            (5, 12, 184.0),
        ] {
            t.append_row(&[objid.into(), field_id.into(), ra.into()])
                .unwrap();
        }
        t
    }

    fn dim() -> Table {
        let schema = Schema::shared(vec![
            Field::new("field_id", DataType::Int64),
            Field::new("run", DataType::Int64),
        ])
        .unwrap();
        let mut t = Table::new("field", schema);
        for (field_id, run) in [(10i64, 1000i64), (11, 1001), (12, 1002)] {
            t.append_row(&[field_id.into(), run.into()]).unwrap();
        }
        t
    }

    #[test]
    fn inner_join_matches_only_existing_keys() {
        let f = fact();
        let d = dim();
        let idx = hash_join_index(
            &f,
            "field_id",
            &d,
            "field_id",
            JoinType::Inner,
            &SelectionVector::all(f.row_count()),
        )
        .unwrap();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.matched_left_rows().rows(), &[0, 1, 2, 4]);
        assert_eq!(idx.matched_right_rows().rows(), &[0, 1, 2]);
    }

    #[test]
    fn left_outer_join_pads_unmatched() {
        let f = fact();
        let d = dim();
        let idx = hash_join_index(
            &f,
            "field_id",
            &d,
            "field_id",
            JoinType::LeftOuter,
            &SelectionVector::all(f.row_count()),
        )
        .unwrap();
        assert_eq!(idx.len(), 5);
        assert!(idx.pairs.iter().any(|(l, r)| *l == 3 && r.is_none()));
    }

    #[test]
    fn join_respects_left_selection() {
        let f = fact();
        let d = dim();
        let sel = SelectionVector::from_rows(vec![0, 3]);
        let idx = hash_join_index(&f, "field_id", &d, "field_id", JoinType::Inner, &sel).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.pairs[0], (0, Some(0)));
    }

    #[test]
    fn join_on_non_integer_key_is_an_error() {
        let f = fact();
        let d = dim();
        assert!(matches!(
            hash_join_index(
                &f,
                "ra",
                &d,
                "field_id",
                JoinType::Inner,
                &SelectionVector::all(f.row_count())
            ),
            Err(ColumnarError::NotNumeric(_))
        ));
    }

    #[test]
    fn join_on_missing_column_is_an_error() {
        let f = fact();
        let d = dim();
        assert!(hash_join_index(
            &f,
            "nope",
            &d,
            "field_id",
            JoinType::Inner,
            &SelectionVector::all(f.row_count())
        )
        .is_err());
    }

    #[test]
    fn materialize_inner_join() {
        let f = fact();
        let d = dim();
        let idx = hash_join_index(
            &f,
            "field_id",
            &d,
            "field_id",
            JoinType::Inner,
            &SelectionVector::all(f.row_count()),
        )
        .unwrap();
        let joined = materialize_join(&f, &d, &idx, "joined").unwrap();
        assert_eq!(joined.row_count(), 4);
        assert!(joined.schema().contains("field_run"));
        // row joining objid 1 (field 10) must carry run 1000
        let row = joined.row(0).unwrap();
        assert_eq!(row[0], Value::Int64(1));
        assert_eq!(row[4], Value::Int64(1000));
    }

    #[test]
    fn materialize_outer_join_pads_nulls() {
        let f = fact();
        let d = dim();
        let idx = hash_join_index(
            &f,
            "field_id",
            &d,
            "field_id",
            JoinType::LeftOuter,
            &SelectionVector::all(f.row_count()),
        )
        .unwrap();
        let joined = materialize_join(&f, &d, &idx, "joined").unwrap();
        assert_eq!(joined.row_count(), 5);
        let dangling = joined.row(3).unwrap();
        assert_eq!(dangling[0], Value::Int64(4));
        assert_eq!(dangling[3], Value::Null);
        assert_eq!(dangling[4], Value::Null);
    }

    #[test]
    fn duplicate_right_keys_multiply_rows() {
        let f = fact();
        let schema = Schema::shared(vec![
            Field::new("field_id", DataType::Int64),
            Field::new("tag", DataType::Utf8),
        ])
        .unwrap();
        let mut d = Table::new("tags", schema);
        d.append_row(&[10.into(), "a".into()]).unwrap();
        d.append_row(&[10.into(), "b".into()]).unwrap();
        let idx = hash_join_index(
            &f,
            "field_id",
            &d,
            "field_id",
            JoinType::Inner,
            &SelectionVector::all(f.row_count()),
        )
        .unwrap();
        // fact rows 0 and 2 reference field 10, each matching twice
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn key_containment_fraction() {
        let f = fact();
        let d = dim();
        let c = key_containment(
            &f,
            "field_id",
            &d,
            "field_id",
            &SelectionVector::all(f.row_count()),
        )
        .unwrap();
        assert!((c - 0.8).abs() < 1e-12);
        // empty selection is trivially contained
        assert_eq!(
            key_containment(&f, "field_id", &d, "field_id", &SelectionVector::empty()).unwrap(),
            1.0
        );
    }

    #[test]
    fn null_keys_do_not_match() {
        let schema = Schema::shared(vec![Field::nullable("k", DataType::Int64)]).unwrap();
        let mut l = Table::new("l", Arc::clone(&schema));
        l.append_row(&[Value::Null]).unwrap();
        l.append_row(&[1.into()]).unwrap();
        let mut r = Table::new("r", schema);
        r.append_row(&[1.into()]).unwrap();
        let idx =
            hash_join_index(&l, "k", &r, "k", JoinType::Inner, &SelectionVector::all(2)).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.pairs[0], (1, Some(0)));
    }
}
