//! Horizontal partitionings of a table into contiguous row-range shards.
//!
//! The sharded scan path splits a table into contiguous, non-overlapping row
//! ranges that together cover `0..row_count`. Each shard is scanned by its
//! own worker through the same compiled-predicate kernels (restricted via
//! [`crate::ScanDomain::Range`]), and the per-shard results are merged in
//! ascending shard order. Because the shards are contiguous and merged in a
//! fixed order, the merged candidate lists arrive in global row order and the
//! sharded pipeline reproduces the single-threaded pipeline **bit for bit**
//! — see [`crate::CompiledPredicate::filter_moments_partitioned`].
//!
//! Row indices stay *absolute* throughout: a shard scans `values[start..end]`
//! positions of the shared column vectors and tests the shared validity
//! bitmap at the same absolute positions, so no per-shard copies or bitmap
//! re-slicing is needed and the emitted row ids can be concatenated without
//! rebasing.

use std::ops::Range;

/// A partitioning of `0..row_count` into contiguous row ranges.
///
/// Invariants (enforced by the constructors): ranges are ascending, adjacent
/// and cover the row count exactly. [`Partitioning::even`] additionally
/// guarantees every shard of a non-empty table holds at least one row;
/// [`Partitioning::from_bounds`] may contain empty shards (they scan zero
/// rows, which is harmless). An empty table yields a single empty shard so
/// callers can always iterate at least once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Shard boundaries: shard `i` covers `bounds[i]..bounds[i + 1]`.
    bounds: Vec<usize>,
}

impl Partitioning {
    /// Split `row_count` rows into (up to) `shards` near-equal contiguous
    /// ranges. The first `row_count % shards` shards hold one extra row, so
    /// shard sizes differ by at most one. Requesting more shards than rows
    /// clamps to one row per shard; `shards == 0` is treated as 1.
    pub fn even(row_count: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(row_count.max(1));
        let base = row_count / shards;
        let extra = row_count % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0;
        bounds.push(at);
        for i in 0..shards {
            at += base + usize::from(i < extra);
            bounds.push(at);
        }
        Partitioning { bounds }
    }

    /// A single shard covering the whole table (the trivial partitioning).
    pub fn single(row_count: usize) -> Self {
        Partitioning {
            bounds: vec![0, row_count],
        }
    }

    /// Build from explicit shard boundaries starting at 0; each consecutive
    /// pair must be non-decreasing. Mostly useful for tests and for aligning
    /// shards with externally meaningful boundaries (e.g. load batches).
    ///
    /// Returns `None` when the boundaries are not ascending-from-zero.
    pub fn from_bounds(bounds: Vec<usize>) -> Option<Self> {
        if bounds.first() != Some(&0) || bounds.len() < 2 {
            return None;
        }
        if bounds.windows(2).any(|w| w[1] < w[0]) {
            return None;
        }
        Some(Partitioning { bounds })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total rows covered by the partitioning.
    pub fn row_count(&self) -> usize {
        *self.bounds.last().expect("bounds never empty")
    }

    /// The half-open row range of shard `i`.
    ///
    /// Panics when `i >= shard_count()`.
    pub fn range(&self, i: usize) -> Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// Iterate the shard ranges in ascending order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.bounds.windows(2).map(|w| w[0]..w[1])
    }

    /// Whether this partitioning is a single shard (no fan-out).
    pub fn is_single(&self) -> bool {
        self.shard_count() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_all_rows_contiguously() {
        for rows in [0usize, 1, 7, 64, 100_001] {
            for shards in [1usize, 2, 3, 4, 8, 200] {
                let p = Partitioning::even(rows, shards);
                assert_eq!(p.row_count(), rows, "{rows} rows / {shards} shards");
                let mut expect_start = 0;
                for r in p.ranges() {
                    assert_eq!(r.start, expect_start);
                    assert!(r.end >= r.start);
                    expect_start = r.end;
                }
                assert_eq!(expect_start, rows);
                // near-equal: sizes differ by at most one
                let sizes: Vec<usize> = p.ranges().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn more_shards_than_rows_clamps() {
        let p = Partitioning::even(3, 8);
        assert_eq!(p.shard_count(), 3);
        assert!(p.ranges().all(|r| r.len() == 1));
    }

    #[test]
    fn zero_rows_and_zero_shards_are_safe() {
        let p = Partitioning::even(0, 0);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.row_count(), 0);
        assert!(p.is_single());
        let p = Partitioning::even(10, 0);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.range(0), 0..10);
    }

    #[test]
    fn single_is_one_full_range() {
        let p = Partitioning::single(42);
        assert!(p.is_single());
        assert_eq!(p.range(0), 0..42);
    }

    #[test]
    fn from_bounds_validates() {
        assert!(Partitioning::from_bounds(vec![0, 5, 10]).is_some());
        assert!(Partitioning::from_bounds(vec![0, 5, 3]).is_none());
        assert!(Partitioning::from_bounds(vec![1, 5]).is_none());
        assert!(Partitioning::from_bounds(vec![0]).is_none());
        let p = Partitioning::from_bounds(vec![0, 0, 4]).unwrap();
        assert_eq!(p.range(0), 0..0);
        assert_eq!(p.range(1), 0..4);
    }
}
