//! # sciborq-columnar
//!
//! An in-memory, append-optimised column store: the storage substrate of the
//! SciBORQ reproduction.
//!
//! The SciBORQ paper (CIDR 2011) assumes a read-optimised column store
//! (MonetDB) underneath its impression framework. This crate provides the
//! minimal but faithful equivalent of the pieces SciBORQ relies on:
//!
//! * typed columns with null bitmaps ([`Column`]),
//! * schemas and append-only tables with batch-wise incremental loads
//!   ([`Schema`], [`Table`], [`RecordBatch`]),
//! * candidate-list (selection-vector) execution of predicates
//!   ([`SelectionVector`], [`Predicate`]),
//! * a compile-once vectorized execution pipeline: predicates bound to
//!   column indices with constants pre-widened ([`CompiledPredicate`]),
//!   running typed tight-loop kernels over the raw column vectors
//!   ([`kernels`]), including fused filter+aggregate scans that stream
//!   matching rows into moment accumulators ([`MomentSketch`]) without
//!   materialising a selection,
//! * chunked bitmask execution: predicates evaluate 64-row chunks into
//!   `u64` match masks ([`MatchMask`]) ANDed word-at-a-time against the
//!   validity bitmaps, with conjunction refinement as wordwise
//!   intersection, plus dictionary-encoded Utf8 columns
//!   ([`Column::Utf8Dict`]) whose string predicates collapse into integer
//!   code ranges ([`DictPred`]),
//! * a sharded parallel scan path: contiguous row-range partitionings
//!   ([`Partitioning`]) fanned out over `std::thread::scope` workers, with
//!   per-shard results merged in fixed shard order so sharded execution is
//!   bit-identical to the single-threaded kernels
//!   ([`CompiledPredicate::filter_moments_partitioned`]),
//! * a shared multi-query scan that evaluates N compiled predicates per row
//!   batch and routes matches into N independent sinks ([`multi_scan`]) —
//!   the serving layer's one-sweep-many-queries path, with the same
//!   bit-identity guarantee per query,
//! * exact aggregates and grouped aggregates ([`compute_aggregate`]),
//! * FK hash joins between fact and dimension tables ([`hash_join_index`]),
//! * a concurrent catalog of named tables ([`Catalog`]).
//!
//! All higher layers — sampling, impressions, bounded query processing — are
//! built on these primitives.
//!
//! ## Example
//!
//! ```
//! use sciborq_columnar::{Schema, Field, DataType, Table, Predicate, SelectionVector};
//!
//! let schema = Schema::shared(vec![
//!     Field::new("objid", DataType::Int64),
//!     Field::new("ra", DataType::Float64),
//! ]).unwrap();
//! let mut table = Table::new("photoobj", schema);
//! table.append_row(&[1i64.into(), 185.2f64.into()]).unwrap();
//! table.append_row(&[2i64.into(), 190.7f64.into()]).unwrap();
//!
//! let sel = Predicate::between("ra", 184.0, 186.0).evaluate(&table).unwrap();
//! assert_eq!(sel.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod catalog;
pub mod column;
pub mod compiled;
pub mod error;
pub mod expr;
pub mod join;
pub mod kernels;
pub mod partition;
pub mod schema;
pub mod selection;
pub mod table;
pub mod value;

pub use aggregate::{compute_aggregate, compute_grouped_aggregate, AggregateKind, AggregateResult};
pub use catalog::Catalog;
pub use column::{Bitmap, Column};
pub use compiled::{
    multi_scan, numeric_source, CompiledPredicate, MultiScanItem, ScanStats, MULTI_SCAN_BATCH_ROWS,
};
pub use error::{ColumnarError, Result};
pub use expr::{CompareOp, Predicate};
pub use join::{hash_join_index, key_containment, materialize_join, JoinIndex, JoinType};
pub use kernels::{
    AggSource, CountSink, DictPred, MaskScan, MatchMask, MomentSink, MomentSketch, NumBound,
    ScanDomain, SelectionSink, WeightedMomentSink,
};
// Re-exported so the weighted scan kernels' accumulator can be consumed
// without a direct sciborq-stats dependency.
pub use partition::Partitioning;
pub use schema::{Field, Schema, SchemaRef};
pub use sciborq_stats::WeightedMomentSketch;
pub use selection::SelectionVector;
pub use table::{RecordBatch, RecordBatchBuilder, Table};
pub use value::{DataType, Value};
