//! Table schemas and column descriptors.

use crate::error::{ColumnarError, Result};
use crate::value::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Description of a single column in a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column data type.
    pub data_type: DataType,
    /// Whether NULL values are allowed.
    pub nullable: bool,
}

impl Field {
    /// Create a non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// Create a nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}{}",
            self.name,
            self.data_type,
            if self.nullable { " NULL" } else { "" }
        )
    }
}

/// An ordered collection of fields describing a table's columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared reference to a schema; tables and impressions built from the same
/// base table share a single allocation.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Create a schema from a list of fields.
    ///
    /// Duplicate column names are rejected.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|other| other.name == f.name) {
                return Err(ColumnarError::SchemaMismatch(format!(
                    "duplicate column name: {}",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Create a shared schema reference.
    pub fn shared(fields: Vec<Field>) -> Result<SchemaRef> {
        Ok(Arc::new(Self::new(fields)?))
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| ColumnarError::ColumnNotFound(name.to_owned()))
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        let idx = self.index_of(name)?;
        Ok(&self.fields[idx])
    }

    /// The field at position `idx`.
    pub fn field_at(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Column names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Whether the schema contains a column with the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }

    /// Build a new schema containing only the given columns, in the order
    /// requested (projection).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for &name in names {
            fields.push(self.field(name)?.clone());
        }
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sky_schema() -> Schema {
        Schema::new(vec![
            Field::new("objid", DataType::Int64),
            Field::new("ra", DataType::Float64),
            Field::new("dec", DataType::Float64),
            Field::nullable("r_mag", DataType::Float64),
            Field::new("class", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn schema_basic_lookup() {
        let s = sky_schema();
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.index_of("ra").unwrap(), 1);
        assert_eq!(s.field("dec").unwrap().data_type, DataType::Float64);
        assert!(s.contains("class"));
        assert!(!s.contains("missing"));
        assert_eq!(s.names(), vec!["objid", "ra", "dec", "r_mag", "class"]);
    }

    #[test]
    fn schema_missing_column() {
        let s = sky_schema();
        assert!(matches!(
            s.index_of("nope"),
            Err(ColumnarError::ColumnNotFound(_))
        ));
    }

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Float64),
        ])
        .unwrap_err();
        assert!(matches!(err, ColumnarError::SchemaMismatch(_)));
    }

    #[test]
    fn schema_projection_preserves_order() {
        let s = sky_schema();
        let p = s.project(&["dec", "ra"]).unwrap();
        assert_eq!(p.names(), vec!["dec", "ra"]);
        assert!(s.project(&["ra", "unknown"]).is_err());
    }

    #[test]
    fn field_display() {
        let f = Field::nullable("r_mag", DataType::Float64);
        assert_eq!(f.to_string(), "r_mag Float64 NULL");
        let f = Field::new("ra", DataType::Float64);
        assert_eq!(f.to_string(), "ra Float64");
    }

    #[test]
    fn schema_display() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Bool),
        ])
        .unwrap();
        assert_eq!(s.to_string(), "(a Int64, b Bool)");
    }

    #[test]
    fn schema_field_at() {
        let s = sky_schema();
        assert_eq!(s.field_at(0).unwrap().name, "objid");
        assert!(s.field_at(10).is_none());
    }

    #[test]
    fn shared_schema() {
        let s = Schema::shared(vec![Field::new("a", DataType::Int64)]).unwrap();
        let s2 = Arc::clone(&s);
        assert_eq!(s.names(), s2.names());
    }

    #[test]
    fn empty_schema_allowed() {
        let s = Schema::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
